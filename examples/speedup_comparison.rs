//! MPDE vs single-time shooting: the paper's computational-speedup claim
//! on a live example.
//!
//! The sheared-MPDE grid has `N1·N2` points regardless of how closely the
//! tones are spaced; single-time shooting needs ~10 steps per LO period
//! across one *difference* period, i.e. cost ∝ f_LO/fd. This example runs
//! both on the same circuit at a modest disparity and prints the
//! wall-clock ratio. (The full sweep is `cargo run -p rfsim-bench --bin
//! speedup_table`.)
//!
//! Run with: `cargo run --release --example speedup_comparison`

use rfsim::circuits::{BalancedMixer, BalancedMixerParams};
use rfsim::mpde::solver::{solve_mpde, MpdeOptions};
use rfsim::shooting::{difference_period_steps, shooting_pss, ShootingOptions};
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    // Disparity f_LO/fd = 500 keeps the shooting baseline affordable here.
    let params = BalancedMixerParams {
        f_lo: 10e6,
        fd: 20e3,
        rf_bits: vec![],
        ..Default::default()
    };
    let mixer = BalancedMixer::build(params)?;
    let disparity = mixer.params.f_lo / mixer.params.fd;
    println!("disparity f_LO/fd = {disparity}");

    // --- Sheared MPDE: 40×30 grid, independent of disparity. ---
    let t0 = Instant::now();
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions::default(),
    )?;
    let t_mpde = t0.elapsed();
    let mpde_h1 = rfsim::rf::measure::differential_baseband_harmonic(
        &sol.solution,
        mixer.out_p,
        Some(mixer.out_n),
        1,
    );
    println!(
        "MPDE     : {:>10.2?}  ({} unknowns, {} Newton iters, baseband {:.4} V)",
        t_mpde, sol.stats.system_size, sol.stats.total_newton_iterations, mpde_h1
    );

    // --- Single-time shooting across the difference period. ---
    // 20 steps per doubled-LO period (= 10 per the 2·f_LO content).
    let steps = difference_period_steps(2.0 * mixer.params.f_lo, mixer.params.fd, 10);
    let t0 = Instant::now();
    let shot = shooting_pss(
        &mixer.circuit,
        mixer.params.t2_period(),
        None,
        ShootingOptions {
            steps_per_period: steps,
            max_outer: 10,
            ..Default::default()
        },
    )?;
    let t_shoot = t0.elapsed();
    println!(
        "shooting : {:>10.2?}  ({} time steps × {} outer iterations)",
        t_shoot, steps, shot.outer_iterations
    );

    println!(
        "\nspeedup: {:.2}× (grows ~linearly with disparity; the paper reports >100×\n\
         at disparity 30000 and an implementation-dependent break-even ≈ 200)",
        t_shoot.as_secs_f64() / t_mpde.as_secs_f64()
    );
    Ok(())
}
