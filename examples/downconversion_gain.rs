//! Down-conversion gain and distortion versus RF drive level — the paper's
//! pure-tone measurement (§1: "we are also able to obtain down-conversion
//! gain and distortion figures"), traced with warm-started MPDE solves.
//!
//! Run with: `cargo run --release --example downconversion_gain`

use rfsim::circuits::{BalancedMixer, BalancedMixerParams};
use rfsim::mpde::solver::MpdeOptions;
use rfsim::rf::measure::{conversion_gain_db, hd_dbc, ratio_to_db};
use rfsim::rf::sweep::amplitude_sweep;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Scaled mixer (45 MHz LO) so the sweep runs in seconds.
    let base = BalancedMixerParams {
        f_lo: 45e6,
        fd: 15e3,
        rf_bits: vec![],
        ..Default::default()
    };
    let t1 = 1.0 / base.f_lo;
    let t2 = 1.0 / base.fd;
    let amps: Vec<f64> = (0..8).map(|k| 0.01 * 1.7f64.powi(k)).collect();

    // Probe indices are identical across the family (same topology).
    let probe = BalancedMixer::build(base.clone())?;
    let base_for_sweep = base.clone();
    let points = amplitude_sweep(
        &amps,
        t1,
        t2,
        MpdeOptions {
            n1: 40,
            n2: 20,
            ..Default::default()
        },
        move |a| {
            let params = BalancedMixerParams {
                rf_amplitude: a,
                ..base_for_sweep.clone()
            };
            Ok(BalancedMixer::build(params)?.circuit)
        },
    )?;

    println!("RF amp (V) | gain (dB) | HD2 (dBc) | HD3 (dBc)");
    println!("-----------+-----------+-----------+----------");
    let mut small_signal_gain = None;
    for p in &points {
        let g = conversion_gain_db(
            &p.solution.solution,
            probe.out_p,
            Some(probe.out_n),
            p.value,
        );
        let hd2 = hd_dbc(&p.solution.solution, probe.out_p, Some(probe.out_n), 2);
        let hd3 = hd_dbc(&p.solution.solution, probe.out_p, Some(probe.out_n), 3);
        if small_signal_gain.is_none() {
            small_signal_gain = Some(g);
        }
        println!("{:10.4} | {:9.2} | {:9.1} | {:9.1}", p.value, g, hd2, hd3);
    }
    // 1 dB compression estimate.
    let g0 = small_signal_gain.expect("at least one point");
    let p1db = points.iter().find(|p| {
        conversion_gain_db(
            &p.solution.solution,
            probe.out_p,
            Some(probe.out_n),
            p.value,
        ) < g0 - 1.0
    });
    match p1db {
        Some(p) => println!(
            "\n≈1 dB compression at RF amplitude {:.3} V ({:.1} dBV)",
            p.value,
            ratio_to_db(p.value)
        ),
        None => println!("\nno compression within the swept range"),
    }
    Ok(())
}
