//! The paper's §3 headline experiment: recover a baseband bit stream from
//! the balanced LO-doubling mixer with a single 40×30 MPDE solve.
//!
//! Run with: `cargo run --release --example balanced_mixer_bitstream`

use rfsim::circuits::{BalancedMixer, BalancedMixerParams};
use rfsim::mpde::solver::{solve_mpde, MpdeOptions};
use rfsim::rf::bits::decode_bpsk_envelope;
use std::error::Error;
use std::time::Instant;

fn main() -> Result<(), Box<dyn Error>> {
    let sent = vec![true, false, true, true];
    let params = BalancedMixerParams {
        rf_bits: sent.clone(),
        ..Default::default()
    };
    println!(
        "balanced mixer: LO {} MHz (doubled internally), RF {} MHz, baseband {} kHz",
        params.f_lo / 1e6,
        params.f_rf() / 1e6,
        params.fd / 1e3
    );
    let mixer = BalancedMixer::build(params)?;

    let t0 = Instant::now();
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions::default(), // the paper's 40×30 grid
    )?;
    println!(
        "MPDE solve: {} unknowns, {} Newton iterations, {:.2?} wall clock ({:?})",
        sol.stats.system_size,
        sol.stats.total_newton_iterations,
        t0.elapsed(),
        sol.stats.strategy
    );

    // Differential baseband envelope: the bit stream on the 15 kHz carrier.
    let env: Vec<f64> = sol
        .solution
        .envelope(mixer.out_p)
        .iter()
        .zip(sol.solution.envelope(mixer.out_n))
        .map(|(p, n)| p - n)
        .collect();
    println!("\nbaseband differential output (one 66.7 µs difference period):");
    for (j, v) in env.iter().enumerate() {
        let bar = (((v + 0.15) / 0.3 * 60.0).clamp(0.0, 60.0)) as usize;
        println!(
            "  {:>5.1} µs {:+8.4} V |{}",
            66.67 * j as f64 / env.len() as f64,
            v,
            "·".repeat(bar)
        );
    }

    let decoded = decode_bpsk_envelope(&env, sent.len());
    let inverted: Vec<bool> = decoded.iter().map(|b| !b).collect();
    println!("\nsent bits:    {sent:?}");
    println!("decoded bits: {decoded:?}");
    if decoded == sent || inverted == sent {
        println!("bit stream recovered (up to BPSK polarity) ✓");
    } else {
        println!("bit stream NOT recovered ✗");
    }

    // The sharp doubler waveform at the MOSFET common-source node (Fig. 5).
    let common = sol.solution.t1_slice(mixer.common, 0);
    let hi = common.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let lo = common.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\ncommon-source node over one LO period: swing [{lo:.3}, {hi:.3}] V");
    println!("(two peaks per LO period — the frequency doubler at work)");
    Ok(())
}
