//! Daemon + client round trip in one process: start the memoising
//! simulation service on a loopback port, drive an amplitude ×
//! tone-spacing grid through the wire protocol twice, and show the
//! second pass served bit-identically from the solution store.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use rfsim_serve::service::{ServeConfig, SimService};
use rfsim_serve::spec::JobSpec;
use rfsim_serve::wire::WireServer;
use rfsim_serve::ServeClient;

fn main() {
    // The daemon side: a service on an ephemeral loopback port.
    let service = SimService::start(ServeConfig::default());
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    println!(
        "daemon listening on {addr} (families: {})",
        service.family_names().join(", ")
    );

    // The client side: a 3 × 2 amplitude × tone-spacing MPDE grid.
    let mut client = ServeClient::connect(addr).expect("connect");
    let spec = JobSpec::mpde("diode_clipper", 1e6, vec![0.1, 0.2, 0.4], vec![10e3, 20e3]);

    let t0 = Instant::now();
    let (id, cold) = client
        .run(&spec, Duration::from_secs(300))
        .expect("cold run");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_result = cold.result.as_ref().expect("result");
    println!(
        "cold  solve: job {id}: {} points / {} samples in {cold_ms:.1} ms (memo_hit={})",
        cold_result.points.len(),
        cold_result.num_samples(),
        cold.memo_hit,
    );

    let t1 = Instant::now();
    let (id2, warm) = client
        .run(&spec, Duration::from_secs(300))
        .expect("memo run");
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    println!(
        "memo  hit:   job {id2}: served in {warm_ms:.2} ms (memo_hit={}) — {:.0}x faster",
        warm.memo_hit,
        cold_ms / warm_ms.max(1e-6),
    );
    assert!(warm.memo_hit, "second identical request must hit the store");
    assert_eq!(
        cold.digest, warm.digest,
        "replay must be bit-identical (digest {:?})",
        cold.digest
    );
    println!(
        "replay bit-identical: digest {}",
        cold.digest.expect("digest")
    );

    let stats = client.stats().expect("stats");
    println!(
        "store: {} entries, {} hits / {} misses (hit rate {:.0}%)",
        stats.number_at("store.len").unwrap_or(0.0),
        stats.number_at("store.hits").unwrap_or(0.0),
        stats.number_at("store.misses").unwrap_or(0.0),
        100.0 * stats.number_at("store.hit_rate").unwrap_or(0.0),
    );

    let evicted = client.evict(None).expect("evict");
    println!("evicted {evicted} stored solution(s)");
    client.shutdown().expect("shutdown");
    server.join();
    println!("daemon stopped");
}
