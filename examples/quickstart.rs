//! Quickstart: solve a two-tone problem with the sheared-MPDE method and
//! read the difference-frequency envelope straight off the slow axis.
//!
//! Run with: `cargo run --release --example quickstart`

use rfsim::circuit::{BiWaveform, CircuitBuilder, Envelope, Waveform, GROUND};
use rfsim::mpde::solver::{solve_mpde, MpdeOptions};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // Two tones 10 kHz apart at 1 MHz, mixed by an ideal multiplier: the
    // paper's eq. (5) as an actual circuit.
    let (f1, fd) = (1e6, 10e3);

    let mut b = CircuitBuilder::new();
    let lo = b.node("lo");
    let rf = b.node("rf");
    let out = b.node("out");
    // LO lives on the fast axis t1.
    b.vsource(
        "VLO",
        lo,
        GROUND,
        BiWaveform::Axis1(Waveform::cosine(1.0, f1)),
    )?;
    // RF at f2 = f1 − fd, written in sheared form so the slow axis is the
    // difference-frequency time scale.
    b.vsource(
        "VRF",
        rf,
        GROUND,
        BiWaveform::ShearedCarrier {
            amplitude: 1.0,
            k: 1,
            f1,
            fd,
            phase: 0.0,
            envelope: Envelope::Unit,
        },
    )?;
    b.multiplier("MIX", out, GROUND, lo, GROUND, rf, GROUND, 1e-3)?;
    b.resistor("RL", out, GROUND, 1e3)?;
    let circuit = b.build()?;

    let sol = solve_mpde(
        &circuit,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 32,
            n2: 16,
            ..Default::default()
        },
    )?;
    println!(
        "solved {} unknowns in {} Newton iterations",
        sol.stats.system_size, sol.stats.total_newton_iterations
    );

    // The down-converted 10 kHz tone, directly on the slow axis — no
    // Fourier analysis, no 100-period transient.
    let out_idx = circuit
        .unknown_index_of_node(circuit.node_by_name("out").expect("out"))
        .expect("out is not ground");
    let envelope = sol.solution.envelope(out_idx);
    println!(
        "\nbaseband envelope over one difference period (Td = {} µs):",
        1e6 / fd
    );
    for (j, v) in envelope.iter().enumerate() {
        let bar_len = ((v + 0.55) * 40.0).clamp(0.0, 79.0) as usize;
        println!(
            "t2 = {:5.1} µs  {:+.4} V  {}",
            1e6 / fd * j as f64 / 16.0,
            v,
            "▃".repeat(bar_len)
        );
    }
    let h1 = sol.solution.baseband_harmonic(out_idx, 1).abs();
    println!("\ndifference-tone amplitude: {h1:.4} V (ideal: 0.5·K·R·A² = 0.5 V)");
    Ok(())
}
