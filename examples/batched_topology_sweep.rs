//! Batched multi-topology sweeps through the [`SweepEngine`]: four circuit
//! families (two Jacobian structures) traced over amplitude in one batch,
//! with the fingerprint-keyed workspace cache and warm-start chaining
//! doing the heavy lifting, plus an amplitude × tone-spacing grid.
//!
//! Run with: `cargo run --release --example batched_topology_sweep`
//!
//! [`SweepEngine`]: rfsim::rf::sweep::SweepEngine

use rfsim::circuit::{BiWaveform, Circuit, CircuitBuilder, CircuitError, Envelope, GROUND};
use rfsim::mpde::solver::MpdeOptions;
use rfsim::rf::measure::ratio_to_db;
use rfsim::rf::pool::WorkerPool;
use rfsim::rf::sweep::{MpdeGridSweep, MpdeSweepJob, SweepEngine};
use std::error::Error;

const F1: f64 = 1e6;
const FD: f64 = 10e3;

/// Linear RC output stage (topology A), parameterised by load resistance.
fn rc_stage(r_load: f64) -> impl Fn(f64) -> Result<Circuit, CircuitError> + Send + Sync {
    move |amplitude: f64| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude,
                k: 1,
                f1: F1,
                fd: FD,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )?;
        b.resistor("R1", inp, out, r_load)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    }
}

/// Diode limiter stage (topology B — an extra internal node, so a
/// different Jacobian structure): compresses at high drive.
fn limiter_stage(r_series: f64) -> impl Fn(f64) -> Result<Circuit, CircuitError> + Send + Sync {
    move |amplitude: f64| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let mid = b.node("mid");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude,
                k: 1,
                f1: F1,
                fd: FD,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )?;
        b.resistor("R1", inp, mid, r_series)?;
        b.diode("D1", mid, GROUND, Default::default())?;
        b.resistor("R2", mid, out, r_series)?;
        b.resistor("RL", out, GROUND, 2e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let amps: Vec<f64> = vec![0.2, 0.5, 1.0, 2.0];
    let opts = MpdeOptions {
        n1: 24,
        n2: 8,
        ..Default::default()
    };
    let jobs = vec![
        MpdeSweepJob::new("rc/1k", amps.clone(), 1.0 / F1, 1.0 / FD, opts.clone(), {
            rc_stage(1e3)
        }),
        MpdeSweepJob::new("rc/2k", amps.clone(), 1.0 / F1, 1.0 / FD, opts.clone(), {
            rc_stage(2e3)
        }),
        MpdeSweepJob::new(
            "limiter/500",
            amps.clone(),
            1.0 / F1,
            1.0 / FD,
            opts.clone(),
            limiter_stage(500.0),
        ),
        MpdeSweepJob::new(
            "limiter/1k",
            amps.clone(),
            1.0 / F1,
            1.0 / FD,
            opts.clone(),
            limiter_stage(1e3),
        ),
    ];

    let engine = SweepEngine::with_pool(WorkerPool::from_available_parallelism());
    println!(
        "running {} jobs on {} worker thread(s)…\n",
        jobs.len(),
        engine.pool().threads()
    );
    let results = engine.run_mpde_batch(&jobs);

    // Output-node unknown index per family (the limiter has one extra
    // internal node ahead of its output).
    let out_idx = [1usize, 1, 2, 2];
    println!("gain vs drive (fast-axis fundamental, dB re drive):");
    for ((job, result), &out) in jobs.iter().zip(&results).zip(&out_idx) {
        let points = result.as_ref().map_err(|e| e.to_string())?;
        print!("  {:<12}", job.label);
        for p in points {
            let a1 = p.solution.solution.fast_harmonic_magnitude(out, 1);
            print!("  {:>7.2} dB", ratio_to_db(a1 / p.value));
        }
        println!();
    }

    let stats = engine.cache_stats();
    println!(
        "\nworkspace cache: {} distinct Jacobian structures, {} hits / {} misses",
        stats.patterns, stats.hits, stats.misses
    );

    // The same engine (and cache) drives a multi-parameter grid: amplitude
    // sweep per tone spacing, rows in parallel, one structure for all rows.
    let grid = MpdeGridSweep::new(
        "rc grid",
        vec![0.1, 0.4],
        vec![5e3, 10e3, 20e3],
        1.0 / F1,
        opts,
        |a, fd| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource(
                "VRF",
                inp,
                GROUND,
                BiWaveform::ShearedCarrier {
                    amplitude: a,
                    k: 1,
                    f1: F1,
                    fd,
                    phase: 0.0,
                    envelope: Envelope::Unit,
                },
            )?;
            b.resistor("R1", inp, out, 1e3)?;
            b.capacitor("C1", out, GROUND, 160e-12)?;
            b.build()
        },
    );
    println!("\namplitude × tone-spacing grid (|H| at f1 − fd):");
    for p in engine.run_mpde_grid(&grid)? {
        let a1 = p.solution.solution.fast_harmonic_magnitude(1, 1);
        println!(
            "  a = {:>4.2} V, fd = {:>5.0} Hz  →  {:.4}",
            p.amplitude,
            p.spacing,
            a1 / p.amplitude
        );
    }
    Ok(())
}
