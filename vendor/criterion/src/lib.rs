//! Offline, API-compatible subset of [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this workspace vendors a
//! small wall-clock benchmarking harness exposing the criterion API surface
//! used by `rfsim-bench`: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], `BenchmarkGroup::{bench_function,
//! bench_with_input, sample_size, finish}`, [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: per benchmark it runs a warm-up
//! call, sizes an inner iteration batch so one sample takes a few
//! milliseconds, collects `sample_size` samples, and reports
//! min/median/mean per-iteration times. When the `CRITERION_LITE_OUT`
//! environment variable names a file, one JSON object per benchmark is
//! appended to it (used to produce the committed `BENCH_*.json` records).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendering only the parameter (criterion's
    /// `from_parameter`).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Creates a `function_name/parameter` id.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Top-level benchmark driver (subset of criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            records: Vec::new(),
        }
    }
}

const TARGET_SAMPLE: Duration = Duration::from_millis(5);

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) -> BenchRecord {
    // Warm-up: one single-iteration sample to size the batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters_per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

    let samples = sample_size.max(2);
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min_ns = per_iter_ns[0];
    let median_ns = per_iter_ns[samples / 2];
    let mean_ns = per_iter_ns.iter().sum::<f64>() / samples as f64;
    let rec = BenchRecord {
        name: name.to_string(),
        mean_ns,
        median_ns,
        min_ns,
        samples,
        iters_per_sample,
    };
    println!(
        "{:<48} time: [min {} median {} mean {}]",
        rec.name,
        fmt_ns(min_ns),
        fmt_ns(median_ns),
        fmt_ns(mean_ns)
    );
    rec
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let rec = run_benchmark(&id.into_id(), self.sample_size, f);
        self.records.push(rec);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Writes the JSON-lines export if `CRITERION_LITE_OUT` is set.
    /// Called by `criterion_group!` after all targets have run.
    pub fn final_summary(&self) {
        let Ok(path) = std::env::var("CRITERION_LITE_OUT") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        use std::io::Write;
        let mut out = match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(f) => f,
            Err(e) => {
                eprintln!("criterion-lite: cannot open {path}: {e}");
                return;
            }
        };
        for r in &self.records {
            let _ = writeln!(
                out,
                "{{\"name\":\"{}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
                r.name.replace('"', "'"),
                r.mean_ns,
                r.median_ns,
                r.min_ns,
                r.samples,
                r.iters_per_sample
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        let rec = run_benchmark(&name, n, f);
        self.criterion.records.push(rec);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_groups_run() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
                b.iter(|| n * n)
            });
            g.finish();
        }
        assert_eq!(c.records.len(), 3);
        assert!(c.records.iter().all(|r| r.mean_ns >= 0.0));
        assert_eq!(c.records[1].name, "grp/inner");
        assert_eq!(c.records[2].name, "grp/7");
    }
}
