//! Offline, API-compatible subset of [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal property-testing harness exposing the slice of the proptest API
//! that the `rfsim` test suites use: the [`proptest!`] macro, range and
//! tuple strategies, [`collection::vec`], `prop_assert!`/`prop_assert_eq!`
//! and [`prelude::ProptestConfig`].
//!
//! Differences from upstream: sampling is a deterministic splitmix64 stream
//! seeded from the test name (fully reproducible, no `PROPTEST_*` env
//! handling), and failing cases are reported by panic without shrinking.

/// Deterministic xorshift64* generator used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed (0 is remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seeds a [`TestRng`] from a test name (FNV-1a) and case index.
pub fn rng_for(name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    TestRng::new(h ^ case.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1))
}

pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type produced.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    if span == 0 {
                        return self.start;
                    }
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, i32, i64);

    /// A strategy producing one fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Number-of-elements specification for [`vec()`]: an exact length or
    /// a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// The `proptest::collection::vec` entry point.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Run-count configuration (the only knob this subset honours).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Property-test entry macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        #[test]
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg: $crate::prelude::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut __rng = $crate::rng_for(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The body uses prop_assert!, which panics with case context.
                $body
            }
        }
    )*};
}

/// `assert!` with proptest's name (no shrinking; panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` with proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::rng_for("x", 0);
        let mut b = crate::rng_for("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..10,
                                 v in collection::vec(0u64..5, 0..4)) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(v.len() < 4);
            for e in v {
                prop_assert!(e < 5);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn tuples_sample(t in (0usize..3, -1.0f64..1.0)) {
            prop_assert!(t.0 < 3);
            prop_assert!(t.1.abs() <= 1.0);
        }
    }
}
