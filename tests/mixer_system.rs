//! End-to-end system tests on the paper's mixers: bit-stream recovery,
//! conversion gain plausibility, ISI metrics, and solver robustness.

use rfsim::circuits::{BalancedMixer, BalancedMixerParams, UnbalancedMixer, UnbalancedMixerParams};
use rfsim::mpde::solver::{solve_mpde, InitialGuess, MpdeOptions};
use rfsim::rf::bits::{decode_bpsk_envelope, Prbs};

use rfsim::rf::measure::{conversion_gain_db, hd_dbc};

/// Scaled balanced mixer for fast tests (10 MHz LO, disparity 500).
fn scaled(bits: Vec<bool>) -> BalancedMixer {
    BalancedMixer::build(BalancedMixerParams {
        f_lo: 10e6,
        fd: 20e3,
        rf_bits: bits,
        ..Default::default()
    })
    .expect("build")
}

fn diff_envelope(mixer: &BalancedMixer, sol: &rfsim::mpde::MpdeSolution) -> Vec<f64> {
    sol.solution
        .envelope(mixer.out_p)
        .iter()
        .zip(sol.solution.envelope(mixer.out_n))
        .map(|(p, n)| p - n)
        .collect()
}

#[test]
fn balanced_mixer_recovers_bit_stream() {
    let sent = vec![true, false, true, true];
    let mixer = scaled(sent.clone());
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions::default(),
    )
    .expect("solve");
    let env = diff_envelope(&mixer, &sol);
    let decoded = decode_bpsk_envelope(&env, sent.len());
    let inverted: Vec<bool> = decoded.iter().map(|b| !b).collect();
    assert!(
        decoded == sent || inverted == sent,
        "decoded {decoded:?}, sent {sent:?}"
    );
}

#[test]
fn balanced_mixer_recovers_prbs_bits() {
    // A longer pseudo-random pattern with a finer slow grid. Like a real
    // PRBS receiver, we frame-synchronise: the decode is accepted at the
    // best cyclic alignment (and either BPSK polarity) within one slot —
    // raised-cosine bit edges sitting exactly on slot boundaries leave a
    // one-slot alignment ambiguity in the demodulator.
    let sent = Prbs::new(7, 5).take_bits(8);
    let mixer = scaled(sent.clone());
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions {
            n1: 40,
            n2: 64,
            ..Default::default()
        },
    )
    .expect("solve");
    let env = diff_envelope(&mixer, &sol);
    let decoded = decode_bpsk_envelope(&env, sent.len());
    let nb = sent.len();
    let synced = [0usize, 1, nb - 1].iter().any(|&shift| {
        let direct = (0..nb).all(|k| decoded[(k + shift) % nb] == sent[k]);
        let inverted = (0..nb).all(|k| decoded[(k + shift) % nb] != sent[k]);
        direct || inverted
    });
    assert!(
        synced,
        "decoded {decoded:?} not within 1 slot of sent {sent:?}"
    );
}

#[test]
fn conversion_gain_in_plausible_band() {
    let mixer = scaled(vec![]);
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions::default(),
    )
    .expect("solve");
    let g = conversion_gain_db(
        &sol.solution,
        mixer.out_p,
        Some(mixer.out_n),
        mixer.params.rf_amplitude,
    );
    assert!(
        (0.0..20.0).contains(&g),
        "active CMOS mixer gain should be a few dB, got {g}"
    );
    // Balanced topology: even-order distortion deeply suppressed.
    let hd2 = hd_dbc(&sol.solution, mixer.out_p, Some(mixer.out_n), 2);
    let hd3 = hd_dbc(&sol.solution, mixer.out_p, Some(mixer.out_n), 3);
    assert!(hd2 < -60.0, "HD2 {hd2} dBc should be very low (balanced)");
    assert!(hd3 < -20.0, "HD3 {hd3} dBc");
}

#[test]
fn matched_filter_margins_stay_open_through_the_mixer() {
    // Per-bit matched-filter correlations (the decision statistic behind
    // the BPSK decoder) must separate cleanly from zero — the ISI question
    // the paper's conclusion raises, in decision-statistic form. (The
    // trace-minimum eye of `EyeDiagram` is exercised on true baseband
    // envelopes in its unit tests; here the envelope still carries the
    // 20 kHz residual carrier whose nulls would close a naive eye.)
    let sent = vec![true, false, true, false, true, true];
    let mixer = scaled(sent.clone());
    let sol = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions {
            n1: 40,
            n2: 48,
            ..Default::default()
        },
    )
    .expect("solve");
    let env = diff_envelope(&mixer, &sol);
    let c1 = rfsim::numerics::fft::goertzel(&env, 1);
    let phi = c1.arg();
    let n = env.len();
    let nb = sent.len();
    let mut margins = Vec::new();
    for k in 0..nb {
        let (lo, hi) = (k * n / nb, (k + 1) * n / nb);
        let mut acc = 0.0;
        let mut weight = 0.0;
        for j in lo..hi {
            let u = j as f64 / n as f64;
            let carrier = (2.0 * std::f64::consts::PI * u + phi).cos();
            acc += env[j] * carrier;
            weight += carrier * carrier;
        }
        margins.push(acc / weight.max(1e-12));
    }
    let peak = margins.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    // Consistent polarity with the sent pattern (up to global inversion).
    let direct_ok = margins
        .iter()
        .zip(&sent)
        .all(|(m, &b)| (*m >= 0.0) == b && m.abs() > 0.1 * peak);
    let inverted_ok = margins
        .iter()
        .zip(&sent)
        .all(|(m, &b)| (*m < 0.0) == b && m.abs() > 0.1 * peak);
    assert!(
        direct_ok || inverted_ok,
        "matched-filter margins {margins:?} vs sent {sent:?}"
    );
}

#[test]
fn unbalanced_mixer_downconverts() {
    let mixer = UnbalancedMixer::build(UnbalancedMixerParams {
        f_lo: 10e6,
        fd: 20e3,
        ..Default::default()
    })
    .expect("build");
    let sol = solve_mpde(
        &mixer.circuit,
        1.0 / mixer.params.f_lo,
        1.0 / mixer.params.fd,
        MpdeOptions {
            n1: 40,
            n2: 20,
            ..Default::default()
        },
    )
    .expect("solve");
    let h1 = sol.solution.baseband_harmonic(mixer.out, 1).abs();
    assert!(
        h1 > 0.002,
        "single-device passive mixer should show a baseband tone, got {h1}"
    );
    // Unbalanced topology: no HD2 cancellation — distortion higher than
    // the balanced mixer's (structural contrast from the paper's §1).
    let hd2 = hd_dbc(&sol.solution, mixer.out, None, 2);
    assert!(
        hd2 > -60.0,
        "unbalanced HD2 {hd2} dBc should NOT be deeply suppressed"
    );
}

#[test]
fn warm_started_resweep_is_cheap() {
    let mixer = scaled(vec![]);
    let opts = MpdeOptions {
        n1: 24,
        n2: 12,
        ..Default::default()
    };
    let first = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        opts.clone(),
    )
    .expect("cold");
    let warm = solve_mpde(
        &mixer.circuit,
        mixer.params.t1_period(),
        mixer.params.t2_period(),
        MpdeOptions {
            initial_guess: InitialGuess::Samples(first.solution.data.clone()),
            ..opts
        },
    )
    .expect("warm");
    assert!(
        warm.stats.total_newton_iterations <= 2,
        "warm start: {} iterations",
        warm.stats.total_newton_iterations
    );
}
