//! Cross-method validation: the same physical problem solved by transient,
//! shooting, periodic FD collocation, harmonic balance and the sheared
//! MPDE must agree. These are the strongest correctness checks in the
//! repository — every engine is hand-rolled, so agreement is meaningful.

use rfsim::circuit::transient::{transient, Integrator, TransientOptions};
use rfsim::circuit::{
    BiWaveform, Circuit, CircuitBuilder, CircuitError, Envelope, Waveform, GROUND,
};
use rfsim::circuits::fixtures::{multiplier_mixer, rc_sheared};
use rfsim::hb::hb2::{hb2_solve, Hb2Options};
use rfsim::mpde::solver::{solve_mpde, MpdeOptions};
use rfsim::numerics::diff::DiffScheme;
use rfsim::rf::pool::WorkerPool;
use rfsim::rf::sweep::{amplitude_sweep, MpdeGridSweep, MpdeSweepJob, SweepEngine};
use rfsim::shooting::{periodic_fd_pss, shooting_pss, PeriodicFdOptions, ShootingOptions};
use std::f64::consts::PI;

/// RC low-pass response magnitude at frequency `f`.
fn rc_mag(r: f64, c: f64, f: f64) -> f64 {
    let w = 2.0 * PI * f * r * c;
    1.0 / (1.0 + w * w).sqrt()
}

#[test]
fn mpde_matches_analytic_and_hb_on_linear_circuit() {
    let (f1, fd) = (1e6, 10e3);
    let (r, c) = (1e3, 160e-12);
    let (ckt, out) = rc_sheared(r, c, f1, fd, 1.0).expect("build");
    let mag = rc_mag(r, c, f1 - fd);

    let mpde = solve_mpde(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 64,
            n2: 16,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
    )
    .expect("mpde");
    let a_mpde = mpde.solution.fast_harmonic_magnitude(out, 1);
    assert!(
        (a_mpde - mag).abs() < 0.02,
        "MPDE amplitude {a_mpde} vs analytic {mag}"
    );

    // HB on the same grid sizes is spectrally exact for this linear problem.
    let hb = hb2_solve(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        None,
        Hb2Options {
            n1: 8,
            n2: 8,
            ..Default::default()
        },
    )
    .expect("hb2");
    let row: Vec<f64> = (0..8).map(|i| hb.state(i, 0)[out]).collect();
    let a_hb = rfsim::numerics::fft::harmonic_amplitude(&row, 1);
    assert!(
        (a_hb - mag).abs() < 1e-4,
        "HB amplitude {a_hb} vs analytic {mag}"
    );
}

#[test]
fn shooting_and_periodic_fd_agree_on_nonlinear_circuit() {
    let (ckt, out) = rfsim::circuits::fixtures::diode_rectifier(1e6, 2.0).expect("build");
    let shoot = shooting_pss(
        &ckt,
        1e-6,
        None,
        ShootingOptions {
            steps_per_period: 512,
            ..Default::default()
        },
    )
    .expect("shooting");
    let fd_pss = periodic_fd_pss(
        &ckt,
        1e-6,
        None,
        PeriodicFdOptions {
            n_samples: 256,
            scheme: DiffScheme::Bdf2,
            ..Default::default()
        },
    )
    .expect("periodic fd");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let m1 = mean(&shoot.signal(out));
    let m2 = mean(&fd_pss.signal(out));
    assert!((m1 - m2).abs() < 0.02, "shooting {m1} vs collocation {m2}");
}

#[test]
fn mpde_diagonal_matches_transient_steady_state() {
    // Ideal multiplier mixer at small disparity: a full transient to steady
    // state is affordable, and the MPDE diagonal must match it.
    let (f1, fd) = (1e5, 1e4);
    let (ckt, out) = multiplier_mixer(f1, fd, vec![]).expect("build");
    let sol = solve_mpde(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 64,
            n2: 32,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
    )
    .expect("mpde");
    let tr = transient(
        &ckt,
        TransientOptions {
            t_stop: 2.0 / fd,
            dt_init: 0.01 / f1,
            dt_max: 0.02 / f1,
            integrator: Integrator::Trapezoidal,
            ..Default::default()
        },
    )
    .expect("transient");
    // The mixer is memoryless + resistive load: steady state is immediate.
    let mut worst = 0.0f64;
    for k in 0..150 {
        let t = 1.0 / fd + (1.0 / fd) * k as f64 / 150.0;
        let v_mpde = sol.solution.interpolate(out, t, t);
        let v_tr = tr.sample(out, t);
        worst = worst.max((v_mpde - v_tr).abs());
    }
    assert!(worst < 0.02, "diagonal vs transient: worst {worst}");
}

/// Amplitude-parameterised sheared-RC family (one topology per `(r, c)`).
fn rc_family(
    f1: f64,
    fd: f64,
    r: f64,
    c: f64,
) -> impl Fn(f64) -> Result<Circuit, CircuitError> + Send + Sync + 'static {
    move |a: f64| Ok(rc_sheared(r, c, f1, fd, a)?.0)
}

/// Amplitude-parameterised multiplier-mixer family (distinct topology from
/// the RC filters: extra nodes, a nonlinear element, two sources).
fn mixer_family(
    f1: f64,
    fd: f64,
) -> impl Fn(f64) -> Result<Circuit, CircuitError> + Send + Sync + 'static {
    move |a: f64| {
        let mut b = CircuitBuilder::new();
        let lo = b.node("lo");
        let rf = b.node("rf");
        let out = b.node("out");
        b.vsource(
            "VLO",
            lo,
            GROUND,
            BiWaveform::Axis1(Waveform::cosine(1.0, f1)),
        )?;
        b.vsource(
            "VRF",
            rf,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: a,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )?;
        b.multiplier("MIX", out, GROUND, lo, GROUND, rf, GROUND, 1e-3)?;
        b.resistor("RL", out, GROUND, 1e3)?;
        b.build()
    }
}

#[test]
fn batched_engine_bit_identical_to_sequential_per_topology_sweeps() {
    // The engine's contract: a batch over distinct topologies is exactly a
    // set of per-topology `amplitude_sweep` runs — same workspaces state
    // sequence, same warm-start chain, bit-identical solutions — just
    // routed through the fingerprint cache and the worker pool.
    let (f1, fd) = (1e6, 10e3);
    let opts = MpdeOptions {
        n1: 16,
        n2: 8,
        ..Default::default()
    };
    let amps = vec![0.1, 0.25, 0.5];
    let jobs = vec![
        MpdeSweepJob::new(
            "rc-fast",
            amps.clone(),
            1.0 / f1,
            1.0 / fd,
            opts.clone(),
            rc_family(f1, fd, 1e3, 160e-12),
        ),
        MpdeSweepJob::new(
            "rc-slow",
            amps.clone(),
            1.0 / f1,
            1.0 / fd,
            opts.clone(),
            rc_family(f1, fd, 4.7e3, 330e-12),
        ),
        MpdeSweepJob::new(
            "mixer",
            amps.clone(),
            1.0 / f1,
            1.0 / fd,
            opts.clone(),
            mixer_family(f1, fd),
        ),
    ];
    let engine = SweepEngine::with_pool(WorkerPool::new(3));
    let batch = engine.run_mpde_batch(&jobs);

    // Note: rc-fast and rc-slow share one topology, so they form one
    // group; bit-identity for the *second* group member additionally
    // relies on group chaining being semantics-preserving only within
    // tolerance. Compare the group leaders bit-for-bit and the follower
    // against a chained sequential baseline.
    let sequential: Vec<Vec<rfsim::rf::sweep::SweepPoint>> = vec![
        amplitude_sweep(
            &amps,
            1.0 / f1,
            1.0 / fd,
            opts.clone(),
            rc_family(f1, fd, 1e3, 160e-12),
        )
        .expect("rc-fast sequential"),
        amplitude_sweep(
            &amps,
            1.0 / f1,
            1.0 / fd,
            opts.clone(),
            rc_family(f1, fd, 4.7e3, 330e-12),
        )
        .expect("rc-slow sequential"),
        amplitude_sweep(&amps, 1.0 / f1, 1.0 / fd, opts, mixer_family(f1, fd))
            .expect("mixer sequential"),
    ];
    // Group leaders (first job of each fingerprint group) are bit-identical.
    for (label, job_idx) in [("rc-fast", 0), ("mixer", 2)] {
        let b = batch[job_idx].as_ref().expect("batch job");
        for (bp, sp) in b.iter().zip(&sequential[job_idx]) {
            assert_eq!(
                bp.solution.solution.data, sp.solution.solution.data,
                "{label}: batched and sequential solutions must be bit-identical"
            );
        }
    }
    // The chained group follower agrees to solver tolerance.
    let b = batch[1].as_ref().expect("rc-slow batch");
    for (bp, sp) in b.iter().zip(&sequential[1]) {
        let d: f64 = bp
            .solution
            .solution
            .data
            .iter()
            .zip(&sp.solution.solution.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max);
        assert!(d < 1e-4, "rc-slow: chained vs sequential differ by {d}");
    }

    // With chaining disabled every job is independent: the whole batch is
    // bit-identical to the sequential runs, followers included.
    let strict = SweepEngine::with_pool(WorkerPool::new(2)).chain_topology_groups(false);
    let strict_batch = strict.run_mpde_batch(&jobs);
    for (job_idx, seq) in sequential.iter().enumerate() {
        let b = strict_batch[job_idx].as_ref().expect("strict batch job");
        assert_eq!(b.len(), seq.len());
        for (bp, sp) in b.iter().zip(seq) {
            assert_eq!(
                bp.solution.solution.data, sp.solution.solution.data,
                "job {job_idx}: unchained batch must be bit-identical"
            );
        }
    }
}

#[test]
fn hb2_matches_mpde_across_amplitude_spacing_grid() {
    // Multi-parameter cross-validation: at every (amplitude × tone
    // spacing) grid point, the sheared-MPDE fast-axis response must match
    // two-tone HB (spectrally exact on this linear circuit) and the
    // analytic RC response at the diagonal frequency f1 − fd.
    let f1 = 1e6;
    let (r, c) = (1e3, 160e-12);
    let amplitudes = vec![0.5, 1.0];
    let spacings = vec![10e3, 25e3];
    let sweep = MpdeGridSweep::new(
        "rc-grid",
        amplitudes.clone(),
        spacings.clone(),
        1.0 / f1,
        MpdeOptions {
            n1: 64,
            n2: 16,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
        move |a, fd| Ok(rc_sheared(r, c, f1, fd, a)?.0),
    );
    let engine = SweepEngine::with_pool(WorkerPool::new(2));
    let points = engine.run_mpde_grid(&sweep).expect("grid");
    assert_eq!(points.len(), amplitudes.len() * spacings.len());
    // One Jacobian structure serves the whole grid.
    assert_eq!(engine.cache_stats().patterns, 1);
    for p in &points {
        let fd = p.spacing;
        let (ckt, out) = rc_sheared(r, c, f1, fd, p.amplitude).expect("build");
        let a_mpde = p.solution.solution.fast_harmonic_magnitude(out, 1);
        let a_ana = p.amplitude * rc_mag(r, c, f1 - fd);
        assert!(
            (a_mpde - a_ana).abs() < 0.02 * p.amplitude,
            "({}, {fd}): MPDE {a_mpde} vs analytic {a_ana}",
            p.amplitude
        );
        let hb = hb2_solve(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            None,
            Hb2Options {
                n1: 8,
                n2: 8,
                ..Default::default()
            },
        )
        .expect("hb2");
        let row: Vec<f64> = (0..8).map(|i| hb.state(i, 0)[out]).collect();
        let a_hb = rfsim::numerics::fft::harmonic_amplitude(&row, 1);
        assert!(
            (a_mpde - a_hb).abs() < 0.02 * p.amplitude,
            "({}, {fd}): MPDE {a_mpde} vs HB {a_hb}",
            p.amplitude
        );
    }
}

#[test]
fn mpde_envelope_matches_shooting_over_difference_period() {
    // The paper's central quantitative claim, in miniature: MPDE baseband
    // content equals what single-time shooting over the (expensive)
    // difference period produces.
    let (f1, fd) = (1e6, 2e4); // disparity 50: shooting affordable in tests
    let (ckt, out) = multiplier_mixer(f1, fd, vec![]).expect("build");
    let sol = solve_mpde(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 32,
            n2: 16,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
    )
    .expect("mpde");
    let h_mpde = sol.solution.baseband_harmonic(out, 1).abs();

    let steps = rfsim::shooting::difference_period_steps(f1, fd, 20);
    let shot = shooting_pss(
        &ckt,
        1.0 / fd,
        None,
        ShootingOptions {
            steps_per_period: steps,
            ..Default::default()
        },
    )
    .expect("shooting");
    // Baseband fundamental of the shooting waveform: average fast content
    // out by decimating to one sample per LO period, then take harmonic 1.
    let sig = shot.signal(out);
    let per_lo = 20;
    let slow: Vec<f64> = sig
        .chunks(per_lo)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let h_shoot = rfsim::numerics::fft::harmonic_amplitude(&slow[..50], 1);
    assert!(
        (h_mpde - h_shoot).abs() < 0.05 * h_mpde.max(h_shoot),
        "MPDE baseband {h_mpde} vs shooting baseband {h_shoot}"
    );
}
