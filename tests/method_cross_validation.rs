//! Cross-method validation: the same physical problem solved by transient,
//! shooting, periodic FD collocation, harmonic balance and the sheared
//! MPDE must agree. These are the strongest correctness checks in the
//! repository — every engine is hand-rolled, so agreement is meaningful.

use rfsim::circuit::transient::{transient, Integrator, TransientOptions};
use rfsim::circuits::fixtures::{multiplier_mixer, rc_sheared};
use rfsim::hb::hb2::{hb2_solve, Hb2Options};
use rfsim::mpde::solver::{solve_mpde, MpdeOptions};
use rfsim::numerics::diff::DiffScheme;
use rfsim::shooting::{periodic_fd_pss, shooting_pss, PeriodicFdOptions, ShootingOptions};
use std::f64::consts::PI;

/// RC low-pass response magnitude at frequency `f`.
fn rc_mag(r: f64, c: f64, f: f64) -> f64 {
    let w = 2.0 * PI * f * r * c;
    1.0 / (1.0 + w * w).sqrt()
}

#[test]
fn mpde_matches_analytic_and_hb_on_linear_circuit() {
    let (f1, fd) = (1e6, 10e3);
    let (r, c) = (1e3, 160e-12);
    let (ckt, out) = rc_sheared(r, c, f1, fd, 1.0).expect("build");
    let mag = rc_mag(r, c, f1 - fd);

    let mpde = solve_mpde(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 64,
            n2: 16,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
    )
    .expect("mpde");
    let a_mpde = mpde.solution.fast_harmonic_magnitude(out, 1);
    assert!(
        (a_mpde - mag).abs() < 0.02,
        "MPDE amplitude {a_mpde} vs analytic {mag}"
    );

    // HB on the same grid sizes is spectrally exact for this linear problem.
    let hb = hb2_solve(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        None,
        Hb2Options {
            n1: 8,
            n2: 8,
            ..Default::default()
        },
    )
    .expect("hb2");
    let row: Vec<f64> = (0..8).map(|i| hb.state(i, 0)[out]).collect();
    let a_hb = rfsim::numerics::fft::harmonic_amplitude(&row, 1);
    assert!(
        (a_hb - mag).abs() < 1e-4,
        "HB amplitude {a_hb} vs analytic {mag}"
    );
}

#[test]
fn shooting_and_periodic_fd_agree_on_nonlinear_circuit() {
    let (ckt, out) = rfsim::circuits::fixtures::diode_rectifier(1e6, 2.0).expect("build");
    let shoot = shooting_pss(
        &ckt,
        1e-6,
        None,
        ShootingOptions {
            steps_per_period: 512,
            ..Default::default()
        },
    )
    .expect("shooting");
    let fd_pss = periodic_fd_pss(
        &ckt,
        1e-6,
        None,
        PeriodicFdOptions {
            n_samples: 256,
            scheme: DiffScheme::Bdf2,
            ..Default::default()
        },
    )
    .expect("periodic fd");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let m1 = mean(&shoot.signal(out));
    let m2 = mean(&fd_pss.signal(out));
    assert!((m1 - m2).abs() < 0.02, "shooting {m1} vs collocation {m2}");
}

#[test]
fn mpde_diagonal_matches_transient_steady_state() {
    // Ideal multiplier mixer at small disparity: a full transient to steady
    // state is affordable, and the MPDE diagonal must match it.
    let (f1, fd) = (1e5, 1e4);
    let (ckt, out) = multiplier_mixer(f1, fd, vec![]).expect("build");
    let sol = solve_mpde(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 64,
            n2: 32,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
    )
    .expect("mpde");
    let tr = transient(
        &ckt,
        TransientOptions {
            t_stop: 2.0 / fd,
            dt_init: 0.01 / f1,
            dt_max: 0.02 / f1,
            integrator: Integrator::Trapezoidal,
            ..Default::default()
        },
    )
    .expect("transient");
    // The mixer is memoryless + resistive load: steady state is immediate.
    let mut worst = 0.0f64;
    for k in 0..150 {
        let t = 1.0 / fd + (1.0 / fd) * k as f64 / 150.0;
        let v_mpde = sol.solution.interpolate(out, t, t);
        let v_tr = tr.sample(out, t);
        worst = worst.max((v_mpde - v_tr).abs());
    }
    assert!(worst < 0.02, "diagonal vs transient: worst {worst}");
}

#[test]
fn mpde_envelope_matches_shooting_over_difference_period() {
    // The paper's central quantitative claim, in miniature: MPDE baseband
    // content equals what single-time shooting over the (expensive)
    // difference period produces.
    let (f1, fd) = (1e6, 2e4); // disparity 50: shooting affordable in tests
    let (ckt, out) = multiplier_mixer(f1, fd, vec![]).expect("build");
    let sol = solve_mpde(
        &ckt,
        1.0 / f1,
        1.0 / fd,
        MpdeOptions {
            n1: 32,
            n2: 16,
            scheme1: DiffScheme::Central2,
            scheme2: DiffScheme::Central2,
            ..Default::default()
        },
    )
    .expect("mpde");
    let h_mpde = sol.solution.baseband_harmonic(out, 1).abs();

    let steps = rfsim::shooting::difference_period_steps(f1, fd, 20);
    let shot = shooting_pss(
        &ckt,
        1.0 / fd,
        None,
        ShootingOptions {
            steps_per_period: steps,
            ..Default::default()
        },
    )
    .expect("shooting");
    // Baseband fundamental of the shooting waveform: average fast content
    // out by decimating to one sample per LO period, then take harmonic 1.
    let sig = shot.signal(out);
    let per_lo = 20;
    let slow: Vec<f64> = sig
        .chunks(per_lo)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let h_shoot = rfsim::numerics::fft::harmonic_amplitude(&slow[..50], 1);
    assert!(
        (h_mpde - h_shoot).abs() < 0.05 * h_mpde.max(h_shoot),
        "MPDE baseband {h_mpde} vs shooting baseband {h_shoot}"
    );
}
