//! Golden-corpus regression: every `.rfn` under `test_cases/` must
//! parse, canonicalise to a fixed point, solve, and reproduce the bit
//! digest pinned in `test_cases/GOLDENS.json`.
//!
//! The digests witness end-to-end determinism — netlist → circuit →
//! solver → samples — across refactors. If a change legitimately moves
//! the bits (a solver reordering, a new default), regenerate with
//!
//! ```sh
//! RFSIM_REGEN_GOLDENS=1 cargo test --test golden_corpus
//! ```
//!
//! and review the diff like any other contract change.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use rfsim::netlist::Netlist;
use rfsim::runner::run_netlist;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("test_cases")
}

fn goldens_path() -> PathBuf {
    corpus_dir().join("GOLDENS.json")
}

fn corpus_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("test_cases/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rfn"))
        .collect();
    files.sort();
    files
}

/// `{"name": "0123456789abcdef", ...}` — written sorted, parsed by hand
/// (two-token grammar, no dependency needed).
fn read_goldens() -> BTreeMap<String, String> {
    let text = std::fs::read_to_string(goldens_path())
        .expect("test_cases/GOLDENS.json exists (regenerate with RFSIM_REGEN_GOLDENS=1)");
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let clean = |s: &str| s.trim().trim_matches('"').to_string();
        let (key, value) = (clean(key), clean(value));
        if !key.is_empty() && !value.is_empty() {
            map.insert(key, value);
        }
    }
    map
}

fn write_goldens(map: &BTreeMap<String, String>) {
    let mut text = String::from("{\n");
    let body: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("  \"{k}\": \"{v}\""))
        .collect();
    text.push_str(&body.join(",\n"));
    text.push_str("\n}\n");
    std::fs::write(goldens_path(), text).expect("write GOLDENS.json");
}

#[test]
fn corpus_files_are_canonical_and_span_every_directive() {
    let files = corpus_files();
    assert!(
        files.len() >= 10,
        "the corpus must hold at least 10 netlists, found {}",
        files.len()
    );
    let mut directives = std::collections::BTreeSet::new();
    for path in &files {
        let text = std::fs::read_to_string(path).expect("read corpus file");
        let netlist =
            Netlist::parse(&text).unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        // Corpus files are stored in canonical form: the formatter is a
        // fixed point over them, so `git diff` noise can't hide drift.
        assert_eq!(
            netlist.canonical(),
            text,
            "{} is not canonical — rewrite it with `rfsim fmt`",
            path.display()
        );
        directives.insert(netlist.analysis.keyword());
    }
    for directive in ["dcop", "transient", "mpde", "hb2", "periodic_fd"] {
        assert!(
            directives.contains(directive),
            "corpus must exercise the '{directive}' analysis"
        );
    }
}

#[test]
fn corpus_digests_match_the_goldens() {
    let regen = std::env::var("RFSIM_REGEN_GOLDENS").is_ok_and(|v| !v.is_empty() && v != "0");
    let mut fresh = BTreeMap::new();
    for path in corpus_files() {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf-8 name")
            .to_string();
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let netlist = Netlist::parse(&text).expect("corpus parses (previous test)");
        let report =
            run_netlist(&netlist).unwrap_or_else(|e| panic!("{name} must solve, got: {e}"));
        assert!(report.solves >= 1, "{name} reports its solve count");
        fresh.insert(name, format!("{:016x}", report.digest));
    }
    if regen {
        write_goldens(&fresh);
        eprintln!(
            "regenerated {} with {} entries",
            goldens_path().display(),
            fresh.len()
        );
        return;
    }
    let pinned = read_goldens();
    let fresh_names: Vec<&String> = fresh.keys().collect();
    let pinned_names: Vec<&String> = pinned.keys().collect();
    assert_eq!(
        fresh_names, pinned_names,
        "corpus membership changed — regenerate GOLDENS.json"
    );
    for (name, digest) in &fresh {
        assert_eq!(
            digest, &pinned[name],
            "{name}: digest drifted from the pinned golden — if intentional, \
             regenerate with RFSIM_REGEN_GOLDENS=1 and review the diff"
        );
    }
}
