//! Substrate-stack integration: numerics → circuit → analyses, exercised
//! through public APIs only (what a downstream user of the workspace sees).

use rfsim::circuit::dcop::{dc_operating_point, DcOptions};
use rfsim::circuit::devices::BjtParams;
use rfsim::circuit::newton::{LinearSolver, NewtonOptions};
use rfsim::circuit::transient::{transient, Integrator, TransientOptions};
use rfsim::circuit::{CircuitBuilder, DiodeParams, MosfetParams, Waveform, GROUND};
use rfsim::circuits::fixtures::{rc_lowpass, rlc_series};
use rfsim::numerics::sparse::Triplets;
use rfsim::numerics::sparse_lu::{LuOptions, SparseLu};

#[test]
fn sparse_lu_handles_mna_structure() {
    // MNA matrices have zero diagonals on source rows: the LU must pivot.
    let mut b = CircuitBuilder::new();
    let n1 = b.node("a");
    let n2 = b.node("b");
    b.vsource("V1", n1, GROUND, Waveform::Dc(1.0)).expect("v");
    b.resistor("R1", n1, n2, 1e3).expect("r1");
    b.resistor("R2", n2, GROUND, 1e3).expect("r2");
    let ckt = b.build().expect("build");
    let n = ckt.num_unknowns();
    let x = vec![0.0; n];
    let mut f = vec![0.0; n];
    let mut jac = Triplets::new(n, n);
    ckt.eval_f(&x, &mut f, Some(&mut jac));
    let lu = SparseLu::factor(&jac.to_csc(), LuOptions::default()).expect("factor");
    let mut bvec = vec![0.0; n];
    ckt.eval_b(0.0, &mut bvec);
    let rhs: Vec<f64> = bvec.iter().map(|v| -v).collect();
    let sol = lu.solve(&rhs);
    // Linear circuit: one solve IS the DC solution. v(b) = 0.5 V.
    assert!((sol[1] - 0.5).abs() < 1e-12, "divider: {sol:?}");
}

#[test]
fn gmres_newton_matches_direct_newton_through_dc() {
    let mut b = CircuitBuilder::new();
    let inp = b.node("in");
    let a = b.node("a");
    b.vsource("V1", inp, GROUND, Waveform::Dc(3.0)).expect("v");
    b.resistor("R1", inp, a, 2e3).expect("r");
    b.diode("D1", a, GROUND, DiodeParams::default()).expect("d");
    let ckt = b.build().expect("build");
    let direct = dc_operating_point(&ckt, DcOptions::default()).expect("direct");
    let gmres = dc_operating_point(
        &ckt,
        DcOptions {
            newton: NewtonOptions {
                linear: LinearSolver::gmres_default(),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("gmres");
    for (d, g) in direct.solution.iter().zip(&gmres.solution) {
        assert!((d - g).abs() < 1e-6, "direct {d} vs gmres {g}");
    }
}

#[test]
fn all_transient_integrators_agree_on_rc() {
    let (ckt, out) = rc_lowpass(1e3, 1e-6, Waveform::sine(1.0, 200.0)).expect("build");
    let run = |integ: Integrator| {
        transient(
            &ckt,
            TransientOptions {
                t_stop: 10e-3,
                dt_init: 10e-6,
                dt_max: 20e-6,
                integrator: integ,
                adaptive: false,
                ..Default::default()
            },
        )
        .expect("transient")
        .sample(out, 9e-3)
    };
    let be = run(Integrator::BackwardEuler);
    let tr = run(Integrator::Trapezoidal);
    let bdf2 = run(Integrator::Bdf2);
    assert!((be - tr).abs() < 0.01, "BE {be} vs TR {tr}");
    assert!((bdf2 - tr).abs() < 0.005, "BDF2 {bdf2} vs TR {tr}");
}

#[test]
fn rlc_energy_decays_monotonically() {
    // Passivity sanity: the RLC step response's envelope decays.
    let (ckt, cap_idx) = rlc_series(50.0, 1e-3, 1e-9).expect("build");
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3f64 * 1e-9).sqrt());
    let res = transient(
        &ckt,
        TransientOptions {
            t_stop: 10.0 / f0,
            dt_init: 0.005 / f0,
            dt_max: 0.01 / f0,
            integrator: Integrator::Trapezoidal,
            ..Default::default()
        },
    )
    .expect("transient");
    // Peak deviation from the final value in each ring period must shrink.
    let sig = res.signal(cap_idx);
    let period_samples = res.len() / 10;
    let mut peaks = Vec::new();
    for chunk in sig.chunks(period_samples.max(1)) {
        let p = chunk.iter().map(|v| (v - 1.0).abs()).fold(0.0f64, f64::max);
        peaks.push(p);
    }
    for w in peaks.windows(2).take(6) {
        assert!(
            w[1] <= w[0] * 1.05,
            "ringing envelope must decay: {peaks:?}"
        );
    }
}

#[test]
fn bjt_common_emitter_amplifier_bias() {
    // Classic CE stage: base divider, emitter degeneration, collector load.
    let mut b = CircuitBuilder::new();
    let vcc = b.node("vcc");
    let base = b.node("base");
    let coll = b.node("coll");
    let emit = b.node("emit");
    // 5 V supply: deep-exponential DC at higher rails needs per-junction
    // limiting (pnjlim), which this Newton does not implement — the global
    // voltage clamp converges one thermal voltage per iteration instead
    // (documented limitation, DESIGN.md §6).
    b.vsource("VCC", vcc, GROUND, Waveform::Dc(5.0))
        .expect("vcc");
    b.resistor("RB1", vcc, base, 27e3).expect("rb1");
    b.resistor("RB2", base, GROUND, 10e3).expect("rb2");
    b.resistor("RC", vcc, coll, 4.7e3).expect("rc");
    b.resistor("RE", emit, GROUND, 1e3).expect("re");
    b.bjt("Q1", coll, base, emit, BjtParams::default())
        .expect("q1");
    let ckt = b.build().expect("build");
    let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
    let idx = |n: &str| {
        op.solution[ckt
            .unknown_index_of_node(ckt.node_by_name(n).expect("node"))
            .expect("idx")]
    };
    let (vb, vc, ve) = (idx("base"), idx("coll"), idx("emit"));
    // Textbook estimates: vb ≈ 5·10/37 ≈ 1.35 V, ve ≈ vb − 0.7 ≈ 0.65 V,
    // ic ≈ 0.65 mA, vc ≈ 5 − 0.65m·4.7k ≈ 1.9 V.
    assert!((vb - 1.3).abs() < 0.25, "base bias {vb}");
    assert!((vb - ve - 0.72).abs() < 0.12, "vbe drop {}", vb - ve);
    assert!((vc - 1.9).abs() < 0.8, "collector bias {vc}");
    assert!(vc > ve, "forward active");
}

#[test]
fn mosfet_inverter_transfer_curve() {
    // Sweep a resistor-loaded NMOS inverter through DC: output must fall
    // monotonically as the input rises.
    let mut prev = f64::INFINITY;
    for k in 0..8 {
        let vin = 0.3 + 0.2 * k as f64;
        let mut b = CircuitBuilder::new();
        let vdd = b.node("vdd");
        let g = b.node("g");
        let d = b.node("d");
        b.vsource("VDD", vdd, GROUND, Waveform::Dc(3.0))
            .expect("vdd");
        b.vsource("VIN", g, GROUND, Waveform::Dc(vin)).expect("vin");
        b.resistor("RD", vdd, d, 10e3).expect("rd");
        b.mosfet("M1", d, g, GROUND, MosfetParams::default())
            .expect("m");
        let ckt = b.build().expect("build");
        let op = dc_operating_point(&ckt, DcOptions::default()).expect("dc");
        let vd = op.solution[ckt
            .unknown_index_of_node(ckt.node_by_name("d").expect("d"))
            .expect("idx")];
        assert!(
            vd <= prev + 1e-9,
            "inverter must be monotone: {vd} after {prev}"
        );
        assert!(vd > -0.1 && vd < 3.1, "output within rails: {vd}");
        prev = vd;
    }
    assert!(prev < 0.5, "fully-on inverter output should be low: {prev}");
}
