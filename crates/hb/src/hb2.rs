//! Two-tone harmonic balance: spectral collocation on the multitime grid.
//!
//! Solves the same MPDE as `rfsim-mpde` —
//! `∂q/∂t1 + ∂q/∂t2 + f(x̂) = b̂(t1,t2)` on the periodic grid
//! `[0,T1)×[0,T2)` — but with *spectral* differentiation matrices along
//! both axes. This is mathematically equivalent to classical two-tone HB
//! with a box truncation of `(k1·f1 + k2·f2)` mixes. Smooth problems
//! converge spectrally; switching waveforms suffer Gibbs oscillation and
//! slow coefficient decay (the paper's §1 argument against HB).

use rfsim_circuit::driver::{NewtonDriver, NewtonProfile};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions, NewtonStats, NewtonSystem};
use rfsim_circuit::{Circuit, Result, UnknownKind};
use rfsim_numerics::diff::spectral_weights;
use rfsim_numerics::sparse::Triplets;

/// Options for [`hb2_solve`].
#[derive(Debug, Clone, Copy)]
pub struct Hb2Options {
    /// Samples along the fast (`t1`) axis.
    pub n1: usize,
    /// Samples along the slow (`t2`) axis.
    pub n2: usize,
    /// Newton options for the global solve.
    pub newton: NewtonOptions,
}

impl Default for Hb2Options {
    fn default() -> Self {
        Hb2Options {
            n1: 16,
            n2: 8,
            // Global two-axis collocation solve — the steady-state profile.
            newton: NewtonProfile::SteadyState.options(),
        }
    }
}

/// Result of a two-tone HB solve: samples on the multitime grid.
#[derive(Debug, Clone)]
pub struct Hb2Result {
    /// Fast-axis period `T1`.
    pub period1: f64,
    /// Slow-axis period `T2`.
    pub period2: f64,
    /// Grid dimensions `(n1, n2)`.
    pub shape: (usize, usize),
    /// Flattened samples: `samples[((j*n1)+i)*n + u]` for grid `(i, j)`.
    pub samples: Vec<f64>,
    /// Unknowns per grid point.
    pub num_unknowns: usize,
    /// Newton statistics.
    pub stats: NewtonStats,
}

impl Hb2Result {
    /// State at grid point `(i, j)`.
    pub fn state(&self, i: usize, j: usize) -> &[f64] {
        let n = self.num_unknowns;
        let base = (j * self.shape.0 + i) * n;
        &self.samples[base..base + n]
    }

    /// Bivariate surface of one unknown, row-major `[j][i]` flattened.
    pub fn surface(&self, unknown: usize) -> Vec<f64> {
        let (n1, n2) = self.shape;
        let mut out = Vec::with_capacity(n1 * n2);
        for j in 0..n2 {
            for i in 0..n1 {
                out.push(self.state(i, j)[unknown]);
            }
        }
        out
    }
}

struct Hb2System<'a> {
    circuit: &'a Circuit,
    n1: usize,
    n2: usize,
    w1: Vec<f64>,
    w2: Vec<f64>,
    b_cache: Vec<f64>,
}

impl Hb2System<'_> {
    fn n(&self) -> usize {
        self.circuit.num_unknowns()
    }

    #[inline]
    fn gp(&self, i: usize, j: usize) -> usize {
        j * self.n1 + i
    }
}

impl NewtonSystem for Hb2System<'_> {
    fn dim(&self) -> usize {
        self.n() * self.n1 * self.n2
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n();
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for j in 0..self.n2 {
            for i in 0..self.n1 {
                let src = self.gp(i, j) * n;
                let xj = &x[src..src + n];
                self.circuit.eval_q(xj, &mut q, None);
                // ∂/∂t1: scatter along the row (same j).
                for i2 in 0..self.n1 {
                    let d =
                        self.w1[(i2 as isize - i as isize).rem_euclid(self.n1 as isize) as usize];
                    if d != 0.0 {
                        let dst = self.gp(i2, j) * n;
                        for u in 0..n {
                            out[dst + u] += d * q[u];
                        }
                    }
                }
                // ∂/∂t2: scatter along the column (same i).
                for j2 in 0..self.n2 {
                    let d =
                        self.w2[(j2 as isize - j as isize).rem_euclid(self.n2 as isize) as usize];
                    if d != 0.0 {
                        let dst = self.gp(i, j2) * n;
                        for u in 0..n {
                            out[dst + u] += d * q[u];
                        }
                    }
                }
                self.circuit.eval_f(xj, &mut f, None);
                for u in 0..n {
                    out[src + u] += f[u] + self.b_cache[src + u];
                }
            }
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = self.n();
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for j in 0..self.n2 {
            for i in 0..self.n1 {
                let src = self.gp(i, j) * n;
                let xj = &x[src..src + n];
                let mut c_trip = Triplets::with_capacity(n, n, 8 * n);
                let mut g_trip = Triplets::with_capacity(n, n, 8 * n);
                self.circuit.eval_q(xj, &mut q, Some(&mut c_trip));
                self.circuit.eval_f(xj, &mut f, Some(&mut g_trip));
                let c = c_trip.to_csr();
                let scatter = |dst_gp: usize, d: f64, out: &mut [f64], jac: &mut Triplets| {
                    let dst = dst_gp * n;
                    for u in 0..n {
                        out[dst + u] += d * q[u];
                    }
                    for r in 0..n {
                        let (cols, vals) = c.row(r);
                        for (cc, v) in cols.iter().zip(vals) {
                            jac.push(dst + r, src + cc, d * v);
                        }
                    }
                };
                for i2 in 0..self.n1 {
                    let d =
                        self.w1[(i2 as isize - i as isize).rem_euclid(self.n1 as isize) as usize];
                    if d != 0.0 {
                        scatter(self.gp(i2, j), d, out, jac);
                    }
                }
                for j2 in 0..self.n2 {
                    let d =
                        self.w2[(j2 as isize - j as isize).rem_euclid(self.n2 as isize) as usize];
                    if d != 0.0 {
                        scatter(self.gp(i, j2), d, out, jac);
                    }
                }
                let g = g_trip.to_csr();
                for r in 0..n {
                    let (cols, vals) = g.row(r);
                    for (cc, v) in cols.iter().zip(vals) {
                        jac.push(src + r, src + cc, *v);
                    }
                }
                for u in 0..n {
                    out[src + u] += f[u] + self.b_cache[src + u];
                }
            }
        }
    }
}

/// Fingerprint of the two-tone HB Jacobian's CSC structure for `circuit`
/// under `options` — the pattern every Newton iteration of [`hb2_solve`]
/// assembles. Depends on element connectivity and the (clamped) grid shape
/// only, not on element values, amplitudes or periods, so warm-started HB
/// sweeps route workspaces by it.
///
/// The spectral differentiation matrices are dense along each axis, which
/// makes this pattern much denser than the finite-difference MPDE one —
/// and all the more worth caching. Costs one Jacobian assembly at the zero
/// state; pay it once per topology group.
pub fn hb2_jacobian_fingerprint(
    circuit: &Circuit,
    period1: f64,
    period2: f64,
    options: &Hb2Options,
) -> rfsim_numerics::sparse::PatternFingerprint {
    let n = circuit.num_unknowns();
    let (n1, n2) = (options.n1.max(4), options.n2.max(4));
    let sys = Hb2System {
        circuit,
        n1,
        n2,
        w1: spectral_weights(n1, period1),
        w2: spectral_weights(n2, period2),
        // The excitation does not shape the Jacobian; zeros avoid
        // requiring bivariate sources just to compute a routing key.
        b_cache: vec![0.0; n1 * n2 * n],
    };
    let dim = sys.dim();
    let x0 = vec![0.0; dim];
    let mut residual = vec![0.0; dim];
    let mut jac = Triplets::with_capacity(dim, dim, 16 * dim);
    sys.residual_and_jacobian(&x0, &mut residual, &mut jac);
    jac.pattern_fingerprint()
}

/// Solves the two-tone HB (spectral MPDE) system on a `n1 × n2` grid with
/// periods `(period1, period2)`.
///
/// All time-varying sources must carry bivariate waveforms.
///
/// # Errors
///
/// Propagates missing-bivariate-source, DC and Newton failures.
pub fn hb2_solve(
    circuit: &Circuit,
    period1: f64,
    period2: f64,
    initial_guess: Option<&[f64]>,
    options: Hb2Options,
) -> Result<Hb2Result> {
    let mut workspace = LinearSolverWorkspace::new();
    hb2_solve_with_workspace(
        circuit,
        period1,
        period2,
        initial_guess,
        options,
        &mut workspace,
    )
}

/// [`hb2_solve`] with caller-owned linear-solver state: the dense spectral
/// coupling makes the HB Jacobian expensive to analyse, so warm-started
/// re-solves on the same grid shape should share one workspace.
///
/// # Errors
///
/// See [`hb2_solve`].
pub fn hb2_solve_with_workspace(
    circuit: &Circuit,
    period1: f64,
    period2: f64,
    initial_guess: Option<&[f64]>,
    options: Hb2Options,
    workspace: &mut LinearSolverWorkspace,
) -> Result<Hb2Result> {
    hb2_solve_budgeted(
        circuit,
        period1,
        period2,
        initial_guess,
        options,
        workspace,
        &rfsim_numerics::SolveBudget::unlimited(),
    )
}

/// [`hb2_solve_with_workspace`] under a
/// [`SolveBudget`](rfsim_numerics::SolveBudget): the budget covers the DC
/// seed and the two-tone spectral Newton solve.
///
/// # Errors
///
/// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops a
/// solve, plus everything [`hb2_solve`] returns.
pub fn hb2_solve_budgeted(
    circuit: &Circuit,
    period1: f64,
    period2: f64,
    initial_guess: Option<&[f64]>,
    options: Hb2Options,
    workspace: &mut LinearSolverWorkspace,
    budget: &rfsim_numerics::SolveBudget,
) -> Result<Hb2Result> {
    let n = circuit.num_unknowns();
    let (n1, n2) = (options.n1.max(4), options.n2.max(4));
    let mut b_cache = vec![0.0; n1 * n2 * n];
    let mut b = vec![0.0; n];
    for j in 0..n2 {
        for i in 0..n1 {
            let t1 = period1 * i as f64 / n1 as f64;
            let t2 = period2 * j as f64 / n2 as f64;
            circuit.eval_b_bi(t1, t2, &mut b)?;
            let base = (j * n1 + i) * n;
            b_cache[base..base + n].copy_from_slice(&b);
        }
    }
    let sys = Hb2System {
        circuit,
        n1,
        n2,
        w1: spectral_weights(n1, period1),
        w2: spectral_weights(n2, period2),
        b_cache,
    };
    let x0: Vec<f64> = match initial_guess {
        Some(g) => g.to_vec(),
        None => {
            let op = rfsim_circuit::dcop::dc_operating_point_budgeted(
                circuit,
                Default::default(),
                budget,
            )?;
            let mut v = Vec::with_capacity(n1 * n2 * n);
            for _ in 0..n1 * n2 {
                v.extend_from_slice(&op.solution);
            }
            v
        }
    };
    let mut kinds: Vec<UnknownKind> = Vec::with_capacity(n1 * n2 * n);
    for _ in 0..n1 * n2 {
        kinds.extend_from_slice(circuit.unknown_kinds());
    }
    let (samples, stats) =
        NewtonDriver::new(options.newton).solve(&sys, &x0, &kinds, workspace, budget)?;
    Ok(Hb2Result {
        period1,
        period2,
        shape: (n1, n2),
        samples,
        num_unknowns: n,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, Waveform, GROUND};
    use std::f64::consts::PI;

    /// RC filter driven by the sum of two bivariate tones (one per axis).
    fn two_tone_rc() -> (Circuit, usize, f64, f64) {
        let (f1, f2) = (1e6, 1.1e6);
        let mut b = CircuitBuilder::new();
        let in1 = b.node("in1");
        let mid = b.node("mid");
        let out = b.node("out");
        b.vsource(
            "V1",
            in1,
            GROUND,
            BiWaveform::Axis1(Waveform::sine(1.0, f1)),
        )
        .expect("v1");
        // Second tone on the t2 axis, injected via a separate source & summing R.
        b.vsource(
            "V2",
            mid,
            GROUND,
            BiWaveform::Axis2(Waveform::sine(0.5, f2)),
        )
        .expect("v2");
        b.resistor("R1", in1, out, 1e3).expect("r1");
        b.resistor("R2", mid, out, 1e3).expect("r2");
        b.capacitor("C1", out, GROUND, 100e-12).expect("c");
        let ckt = b.build().expect("build");
        let idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        (ckt, idx, f1, f2)
    }

    #[test]
    fn linear_two_tone_superposition() {
        // For a linear circuit the bivariate solution is the superposition
        // of the two single-tone responses; check amplitudes on each axis.
        let (ckt, out, f1, f2) = two_tone_rc();
        let res = hb2_solve(
            &ckt,
            1.0 / f1,
            1.0 / f2,
            None,
            Hb2Options {
                n1: 8,
                n2: 8,
                ..Default::default()
            },
        )
        .expect("hb2");
        // Analytic: each tone sees a divider (R into R‖C network).
        // Check via harmonics along each axis at the other axis's origin.
        let (n1, n2) = res.shape;
        // amplitude along t1 (average over j of per-row first harmonic)
        let mut row: Vec<f64> = Vec::with_capacity(n1);
        for i in 0..n1 {
            row.push(res.state(i, 0)[out]);
        }
        let a1 = rfsim_numerics::fft::harmonic_amplitude(&row, 1);
        let mut col: Vec<f64> = Vec::with_capacity(n2);
        for j in 0..n2 {
            col.push(res.state(0, j)[out]);
        }
        let a2 = rfsim_numerics::fft::harmonic_amplitude(&col, 1);
        // Thevenin: source through 1k, loaded by 1k + 100p.
        // At 1 MHz: Z_C = 1/(jωC) ≈ −j·1592 Ω.
        // |H| = |Z_p/(R1 + Z_p)| with Z_p = R2‖Z_C… compute numerically:
        let h = |f: f64| {
            let w = 2.0 * PI * f;
            let (rc_re, rc_im) = {
                // Z_p = R2·Z_C/(R2 + Z_C) with Z_C = 1/(jwC)
                let r2 = 1e3;
                let c = 100e-12;
                // Z_C = -j/(wC)
                let zc_im = -1.0 / (w * c);
                // numerator r2 * zc = r2*zc_im j; denominator r2 + j zc_im
                let den_re = r2;
                let den_im = zc_im;
                let num_re = 0.0;
                let num_im = r2 * zc_im;
                let d2 = den_re * den_re + den_im * den_im;
                (
                    (num_re * den_re + num_im * den_im) / d2,
                    (num_im * den_re - num_re * den_im) / d2,
                )
            };
            let den_re = 1e3 + rc_re;
            let den_im = rc_im;
            let d2 = den_re * den_re + den_im * den_im;
            ((rc_re * den_re + rc_im * den_im) / d2).hypot((rc_im * den_re - rc_re * den_im) / d2)
        };
        let expect1 = 1.0 * h(f1);
        let expect2 = 0.5 * h(f2);
        assert!(
            (a1 - expect1).abs() < 0.02,
            "axis-1 amplitude {a1} vs {expect1}"
        );
        assert!(
            (a2 - expect2).abs() < 0.02,
            "axis-2 amplitude {a2} vs {expect2}"
        );
    }

    #[test]
    fn ideal_mixer_difference_tone() {
        // Multiplier mixer: product of axis-1 and axis-2 tones terminated in
        // a resistor: v_out = K·R·cos(2πf1t1)·cos(2πf2t2). The t2 axis of
        // the solution carries the slow tone directly.
        let mut b = CircuitBuilder::new();
        let x = b.node("x");
        let y = b.node("y");
        let out = b.node("out");
        b.vsource(
            "VX",
            x,
            GROUND,
            BiWaveform::Axis1(Waveform::cosine(1.0, 1e6)),
        )
        .expect("vx");
        b.vsource(
            "VY",
            y,
            GROUND,
            BiWaveform::Axis2(Waveform::cosine(1.0, 0.9e6)),
        )
        .expect("vy");
        b.multiplier("MUL", out, GROUND, x, GROUND, y, GROUND, 1e-3)
            .expect("mul");
        b.resistor("RL", out, GROUND, 1e3).expect("rl");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let res = hb2_solve(
            &ckt,
            1.0 / 1e6,
            1.0 / 0.9e6,
            None,
            Hb2Options {
                n1: 8,
                n2: 8,
                ..Default::default()
            },
        )
        .expect("hb2");
        // Multiplier drives current K·vx·vy INTO out? Current flows p→n, so
        // v_out = −K·R·vx·vy; surface should equal ∓cos·cos product.
        for (i, j) in [(0, 0), (2, 3), (5, 7)] {
            let t1 = 1e-6 * i as f64 / 8.0;
            let t2 = (1.0 / 0.9e6) * j as f64 / 8.0;
            let expect = -1e-3 * 1e3 * (2.0 * PI * 1e6 * t1).cos() * (2.0 * PI * 0.9e6 * t2).cos();
            let got = res.state(i, j)[out_idx];
            assert!(
                (got - expect).abs() < 1e-6,
                "({i},{j}): got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn sheared_source_drives_grid() {
        // A sheared carrier with k=1: b̂(t1,t2) = cos(2π(f1·t1 − fd·t2)).
        // Feeding an RC filter, solution must stay bounded & periodic.
        let f1 = 1e6;
        let fd = 1e3;
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )
        .expect("v");
        b.resistor("R1", inp, out, 1e3).expect("r");
        b.capacitor("C1", out, GROUND, 1e-9).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let res = hb2_solve(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            None,
            Hb2Options {
                n1: 8,
                n2: 8,
                ..Default::default()
            },
        )
        .expect("hb2");
        let surf = res.surface(out_idx);
        let peak = surf.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            peak > 0.1 && peak < 1.0,
            "plausible filtered amplitude: {peak}"
        );
    }

    #[test]
    fn workspace_symbolic_survives_sharp_drive_jump() {
        // Two-tone drive into a diode detector: the HB Jacobian's values
        // swing exponentially with the tone amplitude. A 40× jump on one
        // workspace must stay on the numeric-refresh path — one full
        // factorisation total and no restricted-pivoting fallback.
        let detector = |amp: f64| {
            let (f1, f2) = (1e6, 1.1e6);
            let mut b = CircuitBuilder::new();
            let in1 = b.node("in1");
            let in2 = b.node("in2");
            let sum = b.node("sum");
            let out = b.node("out");
            b.vsource(
                "V1",
                in1,
                GROUND,
                BiWaveform::Axis1(Waveform::sine(amp, f1)),
            )
            .expect("v1");
            b.vsource(
                "V2",
                in2,
                GROUND,
                BiWaveform::Axis2(Waveform::sine(0.5 * amp, f2)),
            )
            .expect("v2");
            b.resistor("R1", in1, sum, 1e3).expect("r1");
            b.resistor("R2", in2, sum, 1e3).expect("r2");
            b.diode("D1", sum, out, Default::default()).expect("d");
            b.resistor("RL", out, GROUND, 10e3).expect("rl");
            b.capacitor("CL", out, GROUND, 100e-12).expect("cl");
            (b.build().expect("build"), 1.0 / f1, 1.0 / f2)
        };
        let opts = Hb2Options {
            n1: 8,
            n2: 4,
            ..Default::default()
        };
        let mut ws = LinearSolverWorkspace::new();
        let (low_ckt, p1, p2) = detector(0.05);
        let low = hb2_solve_with_workspace(&low_ckt, p1, p2, None, opts, &mut ws).expect("low");
        let (high_ckt, p1, p2) = detector(2.0);
        hb2_solve_with_workspace(&high_ckt, p1, p2, Some(&low.samples), opts, &mut ws)
            .expect("high");
        assert_eq!(
            ws.stats.full_factorizations, 1,
            "the jump must not discard the symbolic analysis: {:?}",
            ws.stats
        );
        assert_eq!(ws.stats.full_fallbacks, 0, "{:?}", ws.stats);
        assert!(ws.stats.refactorizations >= 2, "{:?}", ws.stats);
    }
}
