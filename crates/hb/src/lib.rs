//! Harmonic balance baselines.
//!
//! Harmonic balance (HB) expands all circuit waveforms in Fourier series
//! and collocates the circuit equations spectrally. It handles closely and
//! widely spaced tones equally well **as long as waveforms are smooth** —
//! the paper's motivation is precisely that switching RF circuits produce
//! sharp waveforms whose Fourier representations converge slowly (Gibbs),
//! which is where the time-domain MPDE method wins.
//!
//! * [`hb1`] — single-tone HB: spectral collocation over one period.
//! * [`hb2`] — two-tone HB: spectral collocation on the multitime grid
//!   (the frequency-domain counterpart of the sheared-MPDE solver).
//! * [`spectrum`] — Fourier-coefficient diagnostics (decay rates, Gibbs
//!   overshoot) used by the E9 comparison experiment.

pub mod hb1;
pub mod hb2;
pub mod spectrum;

pub use hb1::{hb1_pss, hb1_pss_budgeted, Hb1Options, Hb1Result};
pub use hb2::{
    hb2_jacobian_fingerprint, hb2_solve, hb2_solve_budgeted, hb2_solve_with_workspace, Hb2Options,
    Hb2Result,
};
