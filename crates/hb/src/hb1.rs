//! Single-tone harmonic balance by spectral collocation.
//!
//! Unknowns are the time samples on a uniform grid over one period; the
//! time derivative is applied with the *dense spectral differentiation
//! matrix* (exact for band-limited signals), which makes this precisely the
//! harmonic-balance solution expressed in collocated form. The Jacobian is
//! block-dense in the time index — the classic HB trait.

use rfsim_circuit::driver::{NewtonDriver, NewtonProfile};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions, NewtonStats, NewtonSystem};
use rfsim_circuit::{Circuit, Result, UnknownKind};
use rfsim_numerics::diff::spectral_weights;
use rfsim_numerics::sparse::Triplets;

/// Options for [`hb1_pss`].
#[derive(Debug, Clone, Copy)]
pub struct Hb1Options {
    /// Collocation points over one period (`harmonics = n_samples/2`).
    pub n_samples: usize,
    /// Newton options for the global solve.
    pub newton: NewtonOptions,
}

impl Default for Hb1Options {
    fn default() -> Self {
        Hb1Options {
            n_samples: 32,
            // Global spectral-collocation solve — the steady-state profile.
            newton: NewtonProfile::SteadyState.options(),
        }
    }
}

/// Result of a single-tone HB solve.
#[derive(Debug, Clone)]
pub struct Hb1Result {
    /// Collocation times.
    pub times: Vec<f64>,
    /// Flattened solution samples.
    pub samples: Vec<f64>,
    /// Unknowns per time point.
    pub num_unknowns: usize,
    /// Newton statistics.
    pub stats: NewtonStats,
}

impl Hb1Result {
    /// State at collocation index `i`.
    pub fn state(&self, i: usize) -> &[f64] {
        &self.samples[i * self.num_unknowns..(i + 1) * self.num_unknowns]
    }

    /// Waveform of one unknown over the period.
    pub fn signal(&self, unknown: usize) -> Vec<f64> {
        (0..self.times.len())
            .map(|i| self.state(i)[unknown])
            .collect()
    }
}

struct Hb1System<'a> {
    circuit: &'a Circuit,
    n_samples: usize,
    /// Circulant spectral-derivative weights: `D_ij = w[(i−j) mod N]`.
    weights: Vec<f64>,
    b_cache: Vec<f64>,
}

impl Hb1System<'_> {
    fn n(&self) -> usize {
        self.circuit.num_unknowns()
    }
}

impl NewtonSystem for Hb1System<'_> {
    fn dim(&self) -> usize {
        self.n() * self.n_samples
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n();
        let ns = self.n_samples;
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for j in 0..ns {
            let xj = &x[j * n..(j + 1) * n];
            self.circuit.eval_q(xj, &mut q, None);
            // Scatter q(x_j) through the dense derivative column.
            for i in 0..ns {
                let d = self.weights[(i as isize - j as isize).rem_euclid(ns as isize) as usize];
                if d != 0.0 {
                    for u in 0..n {
                        out[i * n + u] += d * q[u];
                    }
                }
            }
            self.circuit.eval_f(xj, &mut f, None);
            for u in 0..n {
                out[j * n + u] += f[u] + self.b_cache[j * n + u];
            }
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = self.n();
        let ns = self.n_samples;
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for j in 0..ns {
            let xj = &x[j * n..(j + 1) * n];
            let mut c_trip = Triplets::with_capacity(n, n, 8 * n);
            let mut g_trip = Triplets::with_capacity(n, n, 8 * n);
            self.circuit.eval_q(xj, &mut q, Some(&mut c_trip));
            self.circuit.eval_f(xj, &mut f, Some(&mut g_trip));
            let c = c_trip.to_csr();
            for i in 0..ns {
                let d = self.weights[(i as isize - j as isize).rem_euclid(ns as isize) as usize];
                if d == 0.0 {
                    continue;
                }
                for u in 0..n {
                    out[i * n + u] += d * q[u];
                }
                for r in 0..n {
                    let (cols, vals) = c.row(r);
                    for (cc, v) in cols.iter().zip(vals) {
                        jac.push(i * n + r, j * n + cc, d * v);
                    }
                }
            }
            let g = g_trip.to_csr();
            for r in 0..n {
                let (cols, vals) = g.row(r);
                for (cc, v) in cols.iter().zip(vals) {
                    jac.push(j * n + r, j * n + cc, *v);
                }
            }
            for u in 0..n {
                out[j * n + u] += f[u] + self.b_cache[j * n + u];
            }
        }
    }
}

/// Solves for the periodic steady state by single-tone harmonic balance.
///
/// # Errors
///
/// Propagates DC and Newton convergence failures.
pub fn hb1_pss(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: Hb1Options,
) -> Result<Hb1Result> {
    hb1_pss_budgeted(
        circuit,
        period,
        initial_guess,
        options,
        &rfsim_numerics::SolveBudget::unlimited(),
    )
}

/// [`hb1_pss`] under a [`SolveBudget`](rfsim_numerics::SolveBudget): the
/// budget covers the DC seed and the spectral Newton solve.
///
/// # Errors
///
/// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops a
/// solve, plus everything [`hb1_pss`] returns.
pub fn hb1_pss_budgeted(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: Hb1Options,
    budget: &rfsim_numerics::SolveBudget,
) -> Result<Hb1Result> {
    let n = circuit.num_unknowns();
    let ns = options.n_samples.max(4);
    let times: Vec<f64> = (0..ns).map(|i| period * i as f64 / ns as f64).collect();
    let mut b_cache = vec![0.0; ns * n];
    let mut b = vec![0.0; n];
    for (i, &t) in times.iter().enumerate() {
        circuit.eval_b(t, &mut b);
        b_cache[i * n..(i + 1) * n].copy_from_slice(&b);
    }
    let sys = Hb1System {
        circuit,
        n_samples: ns,
        weights: spectral_weights(ns, period),
        b_cache,
    };
    let x0: Vec<f64> = match initial_guess {
        Some(g) => g.to_vec(),
        None => {
            let op = rfsim_circuit::dcop::dc_operating_point_budgeted(
                circuit,
                Default::default(),
                budget,
            )?;
            let mut v = Vec::with_capacity(ns * n);
            for _ in 0..ns {
                v.extend_from_slice(&op.solution);
            }
            v
        }
    };
    let mut kinds: Vec<UnknownKind> = Vec::with_capacity(ns * n);
    for _ in 0..ns {
        kinds.extend_from_slice(circuit.unknown_kinds());
    }
    let (samples, stats) = NewtonDriver::new(options.newton).solve(
        &sys,
        &x0,
        &kinds,
        &mut LinearSolverWorkspace::new(),
        budget,
    )?;
    Ok(Hb1Result {
        times,
        samples,
        num_unknowns: n,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{CircuitBuilder, Waveform, GROUND};
    use std::f64::consts::PI;

    #[test]
    fn rc_hb_is_spectrally_exact_for_linear_circuit() {
        // A linear RC circuit driven by a single tone has a band-limited
        // solution: HB with a handful of samples is exact to rounding.
        let (r, c, f) = (1e3, 1e-9, 100e3);
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(1.0, f))
            .expect("v");
        b.resistor("R1", inp, out, r).expect("r");
        b.capacitor("C1", out, GROUND, c).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let res = hb1_pss(
            &ckt,
            1.0 / f,
            None,
            Hb1Options {
                n_samples: 8,
                ..Default::default()
            },
        )
        .expect("hb");
        let w = 2.0 * PI * f * r * c;
        let mag = 1.0 / (1.0 + w * w).sqrt();
        let ph = -w.atan();
        for (i, &t) in res.times.iter().enumerate() {
            let expect = mag * (2.0 * PI * f * t + ph).sin();
            let got = res.state(i)[out_idx];
            assert!(
                (got - expect).abs() < 1e-6,
                "HB should be exact here: t={t} got {got} expect {expect}"
            );
        }
    }

    #[test]
    fn diode_clipper_converges_and_rectifies() {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(1.5, 1e6))
            .expect("v");
        b.resistor("R1", inp, out, 1e3).expect("r");
        b.diode("D1", out, GROUND, Default::default()).expect("d");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let res = hb1_pss(
            &ckt,
            1e-6,
            None,
            Hb1Options {
                n_samples: 64,
                ..Default::default()
            },
        )
        .expect("hb");
        let sig = res.signal(out_idx);
        let max = sig.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = sig.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max < 0.85, "positive swing clipped by the diode: {max}");
        assert!(min < -1.2, "negative swing mostly intact: {min}");
    }
}
