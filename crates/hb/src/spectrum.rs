//! Fourier-coefficient diagnostics.
//!
//! Quantifies the paper's §1 argument: sharp (switching) waveforms have
//! slowly decaying Fourier coefficients, so truncated Fourier bases ring
//! (Gibbs). These helpers measure decay rates and overshoot for the E9
//! comparison experiment.

use rfsim_numerics::fft::{fft_real, Complex};

/// Magnitudes of the one-sided harmonic spectrum of a sampled periodic
/// signal (`result[k]` = amplitude of harmonic `k`).
pub fn harmonic_magnitudes(samples: &[f64]) -> Vec<f64> {
    let n = samples.len();
    if n == 0 {
        return Vec::new();
    }
    let spec = fft_real(samples);
    let half = n / 2 + 1;
    (0..half)
        .map(|k| {
            let scale = if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
                1.0 / n as f64
            } else {
                2.0 / n as f64
            };
            spec[k].abs() * scale
        })
        .collect()
}

/// Index of the smallest harmonic count capturing `fraction` of the total
/// AC energy — a measure of how compact the Fourier representation is.
/// Smooth signals need few harmonics; square-ish switching waveforms
/// need many.
pub fn harmonics_for_energy_fraction(samples: &[f64], fraction: f64) -> usize {
    let mags = harmonic_magnitudes(samples);
    if mags.len() <= 1 {
        return 0;
    }
    let energies: Vec<f64> = mags[1..].iter().map(|m| m * m).collect();
    let total: f64 = energies.iter().sum();
    if total == 0.0 {
        return 0;
    }
    let mut acc = 0.0;
    for (k, e) in energies.iter().enumerate() {
        acc += e;
        if acc >= fraction * total {
            return k + 1;
        }
    }
    energies.len()
}

/// Reconstructs the signal from its first `k_max` harmonics and returns the
/// maximum overshoot beyond the original signal's range (the Gibbs
/// artefact of a truncated Fourier basis).
pub fn truncation_overshoot(samples: &[f64], k_max: usize) -> f64 {
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    let mut spec = fft_real(samples);
    for (k, z) in spec.iter_mut().enumerate() {
        let kk = if k <= n / 2 { k } else { n - k };
        if kk > k_max {
            *z = Complex::ZERO;
        }
    }
    let rec = rfsim_numerics::fft::ifft(&spec);
    let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    rec.iter()
        .map(|z| {
            if z.re > hi {
                z.re - hi
            } else if z.re < lo {
                lo - z.re
            } else {
                0.0
            }
        })
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn sine(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * i as f64 / n as f64).sin())
            .collect()
    }

    fn square(n: usize) -> Vec<f64> {
        (0..n).map(|i| if i < n / 2 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn sine_has_single_harmonic() {
        let mags = harmonic_magnitudes(&sine(64));
        assert!((mags[1] - 1.0).abs() < 1e-9);
        for (k, m) in mags.iter().enumerate() {
            if k != 1 {
                assert!(*m < 1e-9, "leakage at {k}: {m}");
            }
        }
        assert_eq!(harmonics_for_energy_fraction(&sine(64), 0.999), 1);
    }

    #[test]
    fn square_wave_needs_many_harmonics() {
        let k_sine = harmonics_for_energy_fraction(&sine(256), 0.999);
        let k_square = harmonics_for_energy_fraction(&square(256), 0.999);
        assert!(
            k_square > 10 * k_sine,
            "square {k_square} vs sine {k_sine}: switching waveforms decay slowly"
        );
    }

    #[test]
    fn gibbs_overshoot_near_nine_percent() {
        // Classic result: truncated Fourier series of a square wave
        // overshoots by ≈ 8.95% of the jump (jump = 2 here).
        let over = truncation_overshoot(&square(512), 32);
        assert!(
            over > 0.12 && over < 0.25,
            "expected ~0.18 Gibbs overshoot, got {over}"
        );
    }

    #[test]
    fn smooth_signal_no_overshoot() {
        let over = truncation_overshoot(&sine(128), 8);
        assert!(
            over < 1e-9,
            "band-limited signal reconstructs exactly: {over}"
        );
    }

    #[test]
    fn empty_input_handled() {
        assert!(harmonic_magnitudes(&[]).is_empty());
        assert_eq!(harmonics_for_energy_fraction(&[], 0.9), 0);
        assert_eq!(truncation_overshoot(&[], 4), 0.0);
    }
}
