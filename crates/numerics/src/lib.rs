//! Hand-rolled numerical kernels for the `rfsim` workspace.
//!
//! This crate supplies every numerical primitive the RF steady-state engine
//! needs, built from scratch (no external linear-algebra or FFT crates):
//!
//! * [`budget`] — the solve control plane: [`budget::SolveBudget`]
//!   bundles a cooperative [`budget::CancelToken`], a wall-clock
//!   deadline, a stagnation guard and a progress callback, polled by
//!   every iterative solver below.
//! * [`dense`] — dense matrices with LU (partial pivoting) solves.
//! * [`sparse`] — triplet/CSR/CSC sparse matrices, plus the
//!   [`sparse::CscAssembly`]/[`sparse::CsrAssembly`] pattern caches that
//!   map triplet slots to compressed value slots so fixed-structure
//!   Jacobians re-assemble by in-place scatter (no sort/dedup/alloc).
//! * [`sparse_lu`] — left-looking sparse LU (Gilbert–Peierls) with partial
//!   pivoting and fill-reducing ordering (reverse Cuthill–McKee), split
//!   KLU-style into a one-time symbolic analysis
//!   ([`sparse_lu::SymbolicLu`]: permutations, pivot order, elimination
//!   patterns) and numeric-only refactorisation
//!   ([`sparse_lu::SparseLu::refactor_in_place`]) for the
//!   pattern-invariant matrices of Newton hot paths.
//! * [`krylov`] — restarted GMRES and BiCGStab with pluggable
//!   preconditioners (identity, Jacobi, ILU(0), block-Jacobi), all of
//!   which support in-place numeric refresh over their cached patterns.
//! * [`pool`] — the fixed-thread [`pool::WorkerPool`] shared by the sweep
//!   engine and the parallel numeric refactorisation.
//! * [`telemetry`] — fixed-allocation observability primitives: the
//!   log-bucketed [`telemetry::LatencyHistogram`] and the bounded
//!   per-job lifecycle [`telemetry::Timeline`], fed by the budget's
//!   progress-callback chain.
//! * [`json`] — dependency-free strict JSON reader/writer shared by the
//!   bench-regression gate and the `rfsim-serve` wire protocol.
//! * [`fft`] — complex arithmetic, radix-2 and Bluestein FFTs, single-bin
//!   DFT for harmonic extraction.
//! * [`diff`] — periodic differentiation stencils (backward Euler, central,
//!   BDF2) and spectral differentiation: the discrete `∂/∂t1`, `∂/∂t2`
//!   operators of the MPDE method.
//! * [`interp`] — periodic 1-D and 2-D interpolation.
//!
//! # Example
//!
//! ```
//! use rfsim_numerics::sparse::Triplets;
//! use rfsim_numerics::sparse_lu::SparseLu;
//!
//! # fn main() -> Result<(), rfsim_numerics::NumericsError> {
//! let mut t = Triplets::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let a = t.to_csc();
//! let lu = SparseLu::factor(&a, Default::default())?;
//! let x = lu.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod dense;
pub mod diff;
pub mod fft;
pub mod interp;
pub mod json;
pub mod krylov;
pub mod pool;
pub mod sparse;
pub mod sparse_lu;
pub mod telemetry;
pub mod vector;

mod error;

pub use budget::{
    BudgetMeter, CancelToken, InterruptReason, SolveBudget, SolveInterrupted, SolveProgress,
};
pub use error::NumericsError;
pub use telemetry::{
    HistogramSummary, LatencyHistogram, Timeline, TimelineEvent, TimelineEventKind,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;
