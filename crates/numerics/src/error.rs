use std::fmt;

use crate::budget::SolveInterrupted;

/// Errors produced by the numerical kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// The solve was interrupted by its [`crate::budget::SolveBudget`]
    /// (cancellation, deadline, or stagnation guard) — a control-plane
    /// outcome, not a numerical failure.
    Interrupted(SolveInterrupted),
    /// A (near-)zero pivot was encountered during factorisation.
    SingularMatrix {
        /// Index of the offending pivot column/row.
        index: usize,
        /// Magnitude of the best available pivot.
        pivot: f64,
    },
    /// An iterative method exhausted its iteration budget.
    NotConverged {
        /// Iterations actually performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// Convergence target that was not met.
        tolerance: f64,
    },
    /// Operand shapes are incompatible.
    DimensionMismatch {
        /// Description of the mismatch (e.g. `"matvec: 3x4 * len 5"`).
        context: String,
    },
    /// An argument was outside its valid domain.
    InvalidArgument {
        /// Description of the invalid argument.
        context: String,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::Interrupted(i) => write!(f, "{i}"),
            NumericsError::SingularMatrix { index, pivot } => {
                write!(f, "singular matrix: pivot {pivot:.3e} at index {index}")
            }
            NumericsError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iteration did not converge: residual {residual:.3e} > tol {tolerance:.3e} \
                 after {iterations} iterations"
            ),
            NumericsError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            NumericsError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
        }
    }
}

impl NumericsError {
    /// The interruption payload, when this error is a budget outcome.
    pub fn interrupted(&self) -> Option<&SolveInterrupted> {
        match self {
            NumericsError::Interrupted(i) => Some(i),
            _ => None,
        }
    }
}

impl From<SolveInterrupted> for NumericsError {
    fn from(i: SolveInterrupted) -> Self {
        NumericsError::Interrupted(i)
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_numbers() {
        let e = NumericsError::SingularMatrix {
            index: 7,
            pivot: 1e-30,
        };
        let s = e.to_string();
        assert!(s.contains("7"));
        assert!(s.contains("singular"));
    }

    #[test]
    fn not_converged_display() {
        let e = NumericsError::NotConverged {
            iterations: 100,
            residual: 1.0,
            tolerance: 1e-9,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
