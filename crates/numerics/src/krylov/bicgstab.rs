//! BiCGStab: a short-recurrence alternative to GMRES for nonsymmetric
//! systems, useful when restart memory is a concern.

use std::time::Instant;

use super::{LinearOperator, Preconditioner};
use crate::budget::SolveBudget;
use crate::vector::{dot, norm2};
use crate::{NumericsError, Result};

/// Options for [`bicgstab`].
#[derive(Debug, Clone, Copy)]
pub struct BiCgStabOptions {
    /// Relative residual tolerance: converged when `‖r‖ ≤ rtol·‖b‖ + atol`.
    pub rtol: f64,
    /// Absolute residual tolerance.
    pub atol: f64,
    /// Maximum iterations (each uses two matvecs).
    pub max_iters: usize,
}

impl Default for BiCgStabOptions {
    fn default() -> Self {
        BiCgStabOptions {
            rtol: 1e-10,
            atol: 1e-300,
            max_iters: 2000,
        }
    }
}

/// Solves `A·x = b` with right-preconditioned BiCGStab starting from `x0`.
///
/// # Errors
///
/// * [`NumericsError::NotConverged`] on stagnation/budget exhaustion.
/// * [`NumericsError::DimensionMismatch`] on shape mismatch.
pub fn bicgstab<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x0: &[f64],
    options: BiCgStabOptions,
) -> Result<(Vec<f64>, usize)> {
    bicgstab_budgeted(a, m, b, x0, options, &SolveBudget::unlimited())
}

/// [`bicgstab`] under a [`SolveBudget`]: the cancel token and deadline
/// are polled at the top of every iteration (each iteration is two
/// matvecs), so a batch cancel stops the inner loop promptly.
///
/// # Errors
///
/// [`NumericsError::Interrupted`] on cancellation or deadline expiry,
/// plus everything [`bicgstab`] returns.
pub fn bicgstab_budgeted<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x0: &[f64],
    options: BiCgStabOptions,
    budget: &SolveBudget,
) -> Result<(Vec<f64>, usize)> {
    let n = a.dim();
    let limited = !budget.is_unlimited();
    let start = Instant::now();
    if b.len() != n || x0.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: format!("bicgstab: dim {} vs b {} / x0 {}", n, b.len(), x0.len()),
        });
    }
    let bnorm = norm2(b);
    let target = options.rtol * bnorm + options.atol;

    let mut x = x0.to_vec();
    let mut r = vec![0.0; n];
    a.apply(&x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = vec![0.0; n];
    let mut shat = vec![0.0; n];
    let mut t = vec![0.0; n];

    let mut rnorm = norm2(&r);
    if rnorm <= target {
        return Ok((x, 0));
    }

    for iter in 1..=options.max_iters {
        if limited {
            if let Some(i) = budget.interruption(start, iter - 1, rnorm) {
                return Err(NumericsError::Interrupted(i));
            }
        }
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return Err(NumericsError::NotConverged {
                iterations: iter,
                residual: rnorm,
                tolerance: target,
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        m.apply(&p, &mut phat);
        a.apply(&phat, &mut v);
        alpha = rho / dot(&r_hat, &v);
        // s = r − alpha·v (reuse r)
        for i in 0..n {
            r[i] -= alpha * v[i];
        }
        if norm2(&r) <= target {
            for i in 0..n {
                x[i] += alpha * phat[i];
            }
            return Ok((x, iter));
        }
        m.apply(&r, &mut shat);
        a.apply(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt == 0.0 {
            return Err(NumericsError::NotConverged {
                iterations: iter,
                residual: norm2(&r),
                tolerance: target,
            });
        }
        omega = dot(&t, &r) / tt;
        for i in 0..n {
            x[i] += alpha * phat[i] + omega * shat[i];
            r[i] -= omega * t[i];
        }
        rnorm = norm2(&r);
        if rnorm <= target {
            return Ok((x, iter));
        }
        if omega == 0.0 {
            break;
        }
    }
    Err(NumericsError::NotConverged {
        iterations: options.max_iters,
        residual: rnorm,
        tolerance: target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{IdentityPrecond, Ilu0, JacobiPrecond};
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};

    fn band_matrix(n: usize) -> crate::sparse::CsrMatrix {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.2);
            }
            if i + 1 < n {
                t.push(i, i + 1, -0.8);
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_banded_system() {
        let a = band_matrix(30);
        let b: Vec<f64> = (0..30).map(|i| (i as f64 * 0.4).sin()).collect();
        let (x, _) = bicgstab(
            &a,
            &IdentityPrecond,
            &b,
            &vec![0.0; 30],
            BiCgStabOptions::default(),
        )
        .expect("bicgstab");
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-8, "residual {}", norm_inf(&r));
    }

    #[test]
    fn preconditioned_variants_agree() {
        let a = band_matrix(25);
        let b = vec![1.0; 25];
        let x0 = vec![0.0; 25];
        let (x1, _) =
            bicgstab(&a, &IdentityPrecond, &b, &x0, BiCgStabOptions::default()).expect("identity");
        let (x2, _) = bicgstab(
            &a,
            &JacobiPrecond::new(&a),
            &b,
            &x0,
            BiCgStabOptions::default(),
        )
        .expect("jacobi");
        let ilu = Ilu0::new(&a).expect("ilu");
        let (x3, it3) = bicgstab(&a, &ilu, &b, &x0, BiCgStabOptions::default()).expect("ilu");
        assert!(norm_inf(&sub(&x1, &x2)) < 1e-6);
        assert!(norm_inf(&sub(&x1, &x3)) < 1e-6);
        assert!(it3 <= 3, "ILU(0) on tridiagonal should be ~exact");
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = band_matrix(5);
        let (x, iters) = bicgstab(
            &a,
            &IdentityPrecond,
            &[0.0; 5],
            &[0.0; 5],
            BiCgStabOptions::default(),
        )
        .expect("bicgstab");
        assert_eq!(iters, 0);
        assert!(norm_inf(&x) == 0.0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let a = band_matrix(40);
        let b = vec![1.0; 40];
        let opts = BiCgStabOptions {
            max_iters: 1,
            rtol: 1e-15,
            ..Default::default()
        };
        assert!(matches!(
            bicgstab(&a, &IdentityPrecond, &b, &vec![0.0; 40], opts),
            Err(NumericsError::NotConverged { .. })
        ));
    }
}
