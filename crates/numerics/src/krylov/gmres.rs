//! Restarted GMRES with right preconditioning.

use std::time::Instant;

use super::{LinearOperator, Preconditioner};
use crate::budget::SolveBudget;
use crate::vector::{axpy, norm2};
use crate::{NumericsError, Result};

/// Options for [`gmres`].
#[derive(Debug, Clone, Copy)]
pub struct GmresOptions {
    /// Relative residual tolerance: converged when `‖r‖ ≤ rtol·‖b‖ + atol`.
    pub rtol: f64,
    /// Absolute residual tolerance.
    pub atol: f64,
    /// Krylov subspace dimension before a restart.
    pub restart: usize,
    /// Maximum total matrix–vector products.
    pub max_iters: usize,
}

impl Default for GmresOptions {
    fn default() -> Self {
        GmresOptions {
            rtol: 1e-10,
            atol: 1e-300,
            restart: 50,
            max_iters: 2000,
        }
    }
}

/// Convergence statistics returned alongside the solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmresStats {
    /// Total matrix–vector products performed.
    pub iterations: usize,
    /// Final (preconditioned-system) residual norm.
    pub residual: f64,
}

/// Solves `A·x = b` by restarted GMRES with right preconditioning
/// (`A·M⁻¹·u = b`, `x = M⁻¹·u`), starting from `x0`.
///
/// Right preconditioning keeps the monitored residual equal to the true
/// residual of the original system.
///
/// # Errors
///
/// * [`NumericsError::NotConverged`] if `max_iters` matvecs are exhausted.
/// * [`NumericsError::DimensionMismatch`] if `b.len() != a.dim()`.
pub fn gmres<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x0: &[f64],
    options: GmresOptions,
) -> Result<(Vec<f64>, GmresStats)> {
    gmres_budgeted(a, m, b, x0, options, &SolveBudget::unlimited())
}

/// [`gmres`] under a [`SolveBudget`]: the cancel token and deadline are
/// polled at every restart boundary and inside the Arnoldi inner loop
/// (once per matvec), so a batch cancel stops a long Krylov solve
/// promptly. Stagnation guards are an outer-(Newton-)loop concern and
/// are not applied here.
///
/// # Errors
///
/// [`NumericsError::Interrupted`] on cancellation or deadline expiry,
/// plus everything [`gmres`] returns.
pub fn gmres_budgeted<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: &M,
    b: &[f64],
    x0: &[f64],
    options: GmresOptions,
    budget: &SolveBudget,
) -> Result<(Vec<f64>, GmresStats)> {
    let n = a.dim();
    let limited = !budget.is_unlimited();
    let start = Instant::now();
    if b.len() != n || x0.len() != n {
        return Err(NumericsError::DimensionMismatch {
            context: format!("gmres: dim {} vs b {} / x0 {}", n, b.len(), x0.len()),
        });
    }
    let restart = options.restart.max(1).min(n.max(1));
    let bnorm = norm2(b);
    let target = options.rtol * bnorm + options.atol;

    let mut x = x0.to_vec();
    let mut total_matvecs = 0usize;
    let mut scratch = vec![0.0; n];
    let mut residual_norm;

    // Initial residual r = b − A·x.
    let mut r = vec![0.0; n];
    a.apply(&x, &mut r);
    total_matvecs += 1;
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    residual_norm = norm2(&r);

    while residual_norm > target {
        if limited {
            if let Some(i) = budget.interruption(start, total_matvecs, residual_norm) {
                return Err(NumericsError::Interrupted(i));
            }
        }
        if total_matvecs >= options.max_iters {
            return Err(NumericsError::NotConverged {
                iterations: total_matvecs,
                residual: residual_norm,
                tolerance: target,
            });
        }
        // Arnoldi with modified Gram-Schmidt.
        let beta = residual_norm;
        let mut basis: Vec<Vec<f64>> = Vec::with_capacity(restart + 1);
        basis.push(r.iter().map(|v| v / beta).collect());
        // Hessenberg stored column-wise: h[j] has j+2 entries.
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut cs: Vec<f64> = Vec::with_capacity(restart);
        let mut sn: Vec<f64> = Vec::with_capacity(restart);
        let mut g = vec![0.0; restart + 1];
        g[0] = beta;
        let mut k_used = 0;

        for j in 0..restart {
            if total_matvecs >= options.max_iters {
                break;
            }
            if limited {
                if let Some(i) = budget.interruption(start, total_matvecs, residual_norm) {
                    return Err(NumericsError::Interrupted(i));
                }
            }
            // w = A·M⁻¹·v_j
            m.apply(&basis[j], &mut scratch);
            let mut w = vec![0.0; n];
            a.apply(&scratch, &mut w);
            total_matvecs += 1;
            let mut hj = vec![0.0; j + 2];
            for (i, vi) in basis.iter().enumerate().take(j + 1) {
                let hij = crate::vector::dot(&w, vi);
                hj[i] = hij;
                axpy(-hij, vi, &mut w);
            }
            let wnorm = norm2(&w);
            hj[j + 1] = wnorm;
            // Apply previous Givens rotations to the new column.
            for i in 0..j {
                let t = cs[i] * hj[i] + sn[i] * hj[i + 1];
                hj[i + 1] = -sn[i] * hj[i] + cs[i] * hj[i + 1];
                hj[i] = t;
            }
            // New rotation to annihilate hj[j+1].
            let denom = (hj[j] * hj[j] + hj[j + 1] * hj[j + 1]).sqrt();
            let (c, s) = if denom == 0.0 {
                (1.0, 0.0)
            } else {
                (hj[j] / denom, hj[j + 1] / denom)
            };
            cs.push(c);
            sn.push(s);
            hj[j] = c * hj[j] + s * hj[j + 1];
            hj[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(hj);
            k_used = j + 1;
            residual_norm = g[j + 1].abs();
            if residual_norm <= target || wnorm == 0.0 {
                break;
            }
            basis.push(w.iter().map(|v| v / wnorm).collect());
        }

        // Back-substitute y from the triangularised Hessenberg system.
        let mut y = vec![0.0; k_used];
        for i in (0..k_used).rev() {
            let mut s = g[i];
            for j in (i + 1)..k_used {
                s -= h[j][i] * y[j];
            }
            y[i] = s / h[i][i];
        }
        // x += M⁻¹·(V·y)
        let mut vy = vec![0.0; n];
        for (j, yj) in y.iter().enumerate() {
            axpy(*yj, &basis[j], &mut vy);
        }
        m.apply(&vy, &mut scratch);
        for i in 0..n {
            x[i] += scratch[i];
        }
        // True residual for the restart decision.
        a.apply(&x, &mut r);
        total_matvecs += 1;
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        residual_norm = norm2(&r);
    }

    Ok((
        x,
        GmresStats {
            iterations: total_matvecs,
            residual: residual_norm,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::krylov::{FnOperator, IdentityPrecond, Ilu0, JacobiPrecond};
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};

    fn grid_matrix(n1: usize, n2: usize) -> crate::sparse::CsrMatrix {
        let n = n1 * n2;
        let mut t = Triplets::new(n, n);
        for j in 0..n2 {
            for i in 0..n1 {
                let me = j * n1 + i;
                t.push(me, me, 4.1);
                if i + 1 < n1 {
                    t.push(me, me + 1, -1.0);
                    t.push(me + 1, me, -1.0);
                }
                if j + 1 < n2 {
                    t.push(me, me + n1, -1.0);
                    t.push(me + n1, me, -1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn solves_diagonal_system() {
        let op = FnOperator::new(4, |x: &[f64], y: &mut [f64]| {
            for i in 0..4 {
                y[i] = (i + 1) as f64 * x[i];
            }
        });
        let b = vec![1.0, 4.0, 9.0, 16.0];
        let (x, stats) = gmres(
            &op,
            &IdentityPrecond,
            &b,
            &[0.0; 4],
            GmresOptions::default(),
        )
        .expect("gmres");
        for i in 0..4 {
            assert!((x[i] - (i + 1) as f64).abs() < 1e-8, "x = {x:?}");
        }
        assert!(stats.iterations <= 6);
    }

    #[test]
    fn solves_grid_unpreconditioned() {
        let a = grid_matrix(7, 7);
        let b = vec![1.0; a.rows()];
        let (x, _) = gmres(
            &a,
            &IdentityPrecond,
            &b,
            &vec![0.0; a.rows()],
            GmresOptions::default(),
        )
        .expect("gmres");
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-8);
    }

    #[test]
    fn ilu0_accelerates_convergence() {
        let a = grid_matrix(10, 10);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x0 = vec![0.0; a.rows()];
        let opts = GmresOptions {
            restart: 100,
            ..Default::default()
        };
        let (_, plain) = gmres(&a, &IdentityPrecond, &b, &x0, opts).expect("gmres plain");
        let ilu = Ilu0::new(&a).expect("ilu");
        let (x, pre) = gmres(&a, &ilu, &b, &x0, opts).expect("gmres ilu");
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-8);
        assert!(
            pre.iterations < plain.iterations,
            "ILU {} !< plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn jacobi_preconditioner_converges() {
        let a = grid_matrix(5, 5);
        let b = vec![2.0; a.rows()];
        let m = JacobiPrecond::new(&a);
        let (x, _) =
            gmres(&a, &m, &b, &vec![0.0; a.rows()], GmresOptions::default()).expect("gmres jacobi");
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-8);
    }

    #[test]
    fn warm_start_exact_solution_converges_immediately() {
        let a = grid_matrix(4, 4);
        let x_true: Vec<f64> = (0..a.rows()).map(|i| i as f64 * 0.1).collect();
        let b = a.matvec(&x_true);
        let (x, stats) =
            gmres(&a, &IdentityPrecond, &b, &x_true, GmresOptions::default()).expect("gmres");
        assert!(stats.iterations <= 1);
        assert!(norm_inf(&sub(&x, &x_true)) < 1e-12);
    }

    #[test]
    fn iteration_budget_respected() {
        let a = grid_matrix(8, 8);
        let b = vec![1.0; a.rows()];
        let opts = GmresOptions {
            max_iters: 3,
            rtol: 1e-14,
            restart: 2,
            ..Default::default()
        };
        match gmres(&a, &IdentityPrecond, &b, &vec![0.0; a.rows()], opts) {
            Err(NumericsError::NotConverged { iterations, .. }) => assert!(iterations <= 4),
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_budget_interrupts_inner_loop() {
        use crate::budget::{CancelToken, InterruptReason, SolveBudget};
        let a = grid_matrix(8, 8);
        let b = vec![1.0; a.rows()];
        let token = CancelToken::new();
        token.cancel();
        let budget = SolveBudget::unlimited().with_cancel(token);
        match gmres_budgeted(
            &a,
            &IdentityPrecond,
            &b,
            &vec![0.0; a.rows()],
            GmresOptions::default(),
            &budget,
        ) {
            Err(NumericsError::Interrupted(i)) => {
                assert_eq!(i.reason, InterruptReason::Cancelled);
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = grid_matrix(2, 2);
        let r = gmres(
            &a,
            &IdentityPrecond,
            &[1.0; 3],
            &[0.0; 4],
            GmresOptions::default(),
        );
        assert!(matches!(r, Err(NumericsError::DimensionMismatch { .. })));
    }

    #[test]
    fn nonsymmetric_system() {
        // Convection-diffusion-like nonsymmetric operator.
        let n = 40;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i > 0 {
                t.push(i, i - 1, -2.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -0.5);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let (x, _) = gmres(
            &a,
            &IdentityPrecond,
            &b,
            &vec![0.0; n],
            GmresOptions::default(),
        )
        .expect("gmres");
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-8);
    }
}
