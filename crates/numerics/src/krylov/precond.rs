//! Preconditioners for the Krylov solvers.

use std::sync::Mutex;

use crate::dense::{DenseLu, DenseMatrix};
use crate::pool::WorkerPool;
use crate::sparse::CsrMatrix;
use crate::{NumericsError, Result};

/// Applies `z = M⁻¹·r` for some approximation `M ≈ A`.
pub trait Preconditioner {
    /// Applies the preconditioner: `z = M⁻¹·r`.
    ///
    /// # Panics
    ///
    /// Implementations may panic on dimension mismatch.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The identity preconditioner (`M = I`).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPrecond {
    inv_diag: Vec<f64>,
}

impl JacobiPrecond {
    /// Builds the preconditioner from the diagonal of `a`. Zero diagonal
    /// entries are replaced by 1 (no scaling) rather than failing, since MNA
    /// matrices legitimately carry structural zero diagonals on source rows.
    pub fn new(a: &CsrMatrix) -> Self {
        let n = a.rows();
        let mut inv_diag = vec![1.0; n];
        for i in 0..n {
            let d = a.get(i, i);
            if d != 0.0 {
                inv_diag[i] = 1.0 / d;
            }
        }
        JacobiPrecond { inv_diag }
    }
}

impl Preconditioner for JacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Incomplete LU factorisation with zero fill-in, ILU(0).
///
/// Keeps exactly the sparsity pattern of `A`; the classic IKJ update. Rows
/// must contain their diagonal entry (MNA matrices after gmin regularisation
/// always do for the solver paths that use ILU).
#[derive(Debug, Clone)]
pub struct Ilu0 {
    factors: CsrMatrix,
    diag_pos: Vec<usize>,
}

/// The numeric ILU(0) sweep (classic IKJ update) over a fixed pattern:
/// `data` arrives holding the matrix values and leaves holding the packed
/// `L`/`U` factors. Shared by [`Ilu0::new`] and [`Ilu0::refactor_in_place`].
fn ilu0_sweep(
    n: usize,
    indptr: &[usize],
    indices: &[usize],
    diag_pos: &[usize],
    data: &mut [f64],
) -> Result<()> {
    for i in 0..n {
        // For each a_ik with k < i (in sparsity pattern):
        for kk in indptr[i]..indptr[i + 1] {
            let k = indices[kk];
            if k >= i {
                break;
            }
            let pivot = data[diag_pos[k]];
            if pivot == 0.0 {
                return Err(NumericsError::SingularMatrix {
                    index: k,
                    pivot: 0.0,
                });
            }
            let lik = data[kk] / pivot;
            data[kk] = lik;
            // Subtract lik * U(k, j) for j > k, restricted to row i's pattern.
            let mut jj = kk + 1;
            for kj in diag_pos[k] + 1..indptr[k + 1] {
                let j = indices[kj];
                // advance jj in row i to column j if present
                while jj < indptr[i + 1] && indices[jj] < j {
                    jj += 1;
                }
                if jj < indptr[i + 1] && indices[jj] == j {
                    let ukj = data[kj];
                    data[jj] -= lik * ukj;
                }
            }
        }
        if data[diag_pos[i]] == 0.0 {
            return Err(NumericsError::SingularMatrix {
                index: i,
                pivot: 0.0,
            });
        }
    }
    Ok(())
}

impl Ilu0 {
    /// Computes the ILU(0) factorisation of `a`.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::InvalidArgument`] if some row lacks a stored
    ///   diagonal entry.
    /// * [`NumericsError::SingularMatrix`] if a pivot becomes zero.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let n = a.rows();
        let mut factors = a.clone();
        // Locate diagonals first.
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            let lo = factors.indptr()[i];
            let hi = factors.indptr()[i + 1];
            for k in lo..hi {
                if factors.indices()[k] == i {
                    diag_pos[i] = k;
                    break;
                }
            }
            if diag_pos[i] == usize::MAX {
                return Err(NumericsError::InvalidArgument {
                    context: format!("ILU(0): row {i} has no stored diagonal"),
                });
            }
        }
        let (indptr, indices, data) = factors.parts_mut();
        ilu0_sweep(n, indptr, indices, &diag_pos, data)?;
        Ok(Ilu0 { factors, diag_pos })
    }

    /// Whether `a` has exactly the pattern this preconditioner was built
    /// on — the gate for [`Ilu0::refactor_in_place`].
    pub fn same_pattern(&self, a: &CsrMatrix) -> bool {
        self.factors.same_pattern(a)
    }

    /// Refreshes the factorisation in place from a same-pattern matrix:
    /// copies `a`'s values over the cached CSR pattern and reruns only the
    /// numeric sweep — no allocation, no diagonal re-location. Produces
    /// exactly the factors [`Ilu0::new`] would (same arithmetic over the
    /// same pattern), which is what lets Newton loops refresh their
    /// preconditioner per iteration instead of rebuilding it.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::InvalidArgument`] if `a`'s pattern differs from
    ///   the factored pattern (the factors are left unchanged).
    /// * [`NumericsError::SingularMatrix`] if a pivot becomes zero (the
    ///   factor values are unspecified afterwards; refresh or rebuild
    ///   before the next apply).
    pub fn refactor_in_place(&mut self, a: &CsrMatrix) -> Result<()> {
        if !self.same_pattern(a) {
            return Err(NumericsError::InvalidArgument {
                context: format!(
                    "Ilu0::refactor_in_place: pattern of {}x{} matrix (nnz {}) differs \
                     from the factored pattern",
                    a.rows(),
                    a.cols(),
                    a.nnz()
                ),
            });
        }
        let n = a.rows();
        let (indptr, indices, data) = self.factors.parts_mut();
        data.copy_from_slice(a.data());
        ilu0_sweep(n, indptr, indices, &self.diag_pos, data)
    }
}

impl Preconditioner for Ilu0 {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.factors.rows();
        assert_eq!(r.len(), n, "Ilu0::apply: dimension mismatch");
        // Forward solve L·y = r (unit diagonal L, entries left of diag).
        for i in 0..n {
            let lo = self.factors.indptr()[i];
            let (cols, vals) = self.factors.row(i);
            let mut s = r[i];
            for k in 0..(self.diag_pos[i] - lo) {
                s -= vals[k] * z[cols[k]];
            }
            z[i] = s;
        }
        // Backward solve U·z = y.
        for i in (0..n).rev() {
            let lo = self.factors.indptr()[i];
            let (cols, vals) = self.factors.row(i);
            let dk = self.diag_pos[i] - lo;
            let mut s = z[i];
            for k in (dk + 1)..cols.len() {
                s -= vals[k] * z[cols[k]];
            }
            z[i] = s / vals[dk];
        }
    }
}

/// Block-Jacobi preconditioner: dense LU of each `block_size × block_size`
/// diagonal block.
///
/// The natural preconditioner for MPDE grid Jacobians, whose unknowns come
/// in per-grid-point circuit blocks: every block is the local
/// `G + (w/h)·C` matrix, which is nonsingular even though individual rows
/// (voltage-source branch rows) have zero diagonals — exactly the situation
/// where [`Ilu0`] breaks down.
#[derive(Debug, Clone)]
pub struct BlockJacobiPrecond {
    blocks: Vec<DenseLu>,
    block_size: usize,
    /// Gather buffer reused for every block's values during construction
    /// and in-place refresh (keeps both allocation-free per block).
    scratch: DenseMatrix,
}

/// Gathers diagonal block `b` of `a` into `m` (zeroed first).
fn gather_block(a: &CsrMatrix, block_size: usize, b: usize, m: &mut DenseMatrix) {
    let base = b * block_size;
    m.as_mut_slice().fill(0.0);
    for r in 0..block_size {
        let (cols, vals) = a.row(base + r);
        for (c, v) in cols.iter().zip(vals) {
            if *c >= base && *c < base + block_size {
                m[(r, c - base)] += *v;
            }
        }
    }
}

impl BlockJacobiPrecond {
    /// Factors the diagonal blocks of `a`.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] if the matrix dimension is not
    ///   a multiple of `block_size` (or `block_size` is zero).
    /// * [`NumericsError::SingularMatrix`] if a diagonal block is singular.
    pub fn new(a: &CsrMatrix, block_size: usize) -> Result<Self> {
        let n = a.rows();
        if block_size == 0 || !n.is_multiple_of(block_size) {
            return Err(NumericsError::DimensionMismatch {
                context: format!("BlockJacobi: dim {n} not a multiple of block {block_size}"),
            });
        }
        let nb = n / block_size;
        let mut blocks = Vec::with_capacity(nb);
        let mut scratch = DenseMatrix::zeros(block_size, block_size);
        for b in 0..nb {
            gather_block(a, block_size, b, &mut scratch);
            blocks.push(scratch.lu()?);
        }
        Ok(BlockJacobiPrecond {
            blocks,
            block_size,
            scratch,
        })
    }

    /// The diagonal block size this preconditioner was built with.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Dimension of the preconditioned system.
    pub fn dim(&self) -> usize {
        self.blocks.len() * self.block_size
    }

    /// Whether `a` has the dimensions this preconditioner was built on —
    /// the gate for [`BlockJacobiPrecond::refactor_in_place`]. (Block
    /// gathering reads whatever entries fall inside each diagonal block,
    /// so unlike ILU(0) no exact pattern match is required.)
    pub fn matches(&self, a: &CsrMatrix) -> bool {
        a.rows() == self.dim() && a.cols() == self.dim()
    }

    /// Refreshes every diagonal block's dense LU in place from `a`: the
    /// blocks are regathered through one cached scratch buffer and
    /// refactored into their existing storage — no allocation. Produces
    /// exactly the factors [`BlockJacobiPrecond::new`] would.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] if `a`'s dimensions differ
    ///   from the factored system (the factors are left unchanged).
    /// * [`NumericsError::SingularMatrix`] if a diagonal block became
    ///   singular (earlier blocks are already refreshed; refresh or
    ///   rebuild before the next apply).
    pub fn refactor_in_place(&mut self, a: &CsrMatrix) -> Result<()> {
        if !self.matches(a) {
            return Err(NumericsError::DimensionMismatch {
                context: format!(
                    "BlockJacobi::refactor_in_place: {}x{} matrix into {} blocks of {}",
                    a.rows(),
                    a.cols(),
                    self.blocks.len(),
                    self.block_size
                ),
            });
        }
        for (b, lu) in self.blocks.iter_mut().enumerate() {
            gather_block(a, self.block_size, b, &mut self.scratch);
            lu.refactor(&self.scratch)?;
        }
        Ok(())
    }

    /// [`BlockJacobiPrecond::refactor_in_place`] with the blocks spread
    /// across `pool`'s workers. Every block is an independent dense
    /// refactorisation, so the blocks are split into one contiguous chunk
    /// per worker and each chunk refreshes through its own scratch buffer;
    /// the per-block arithmetic is untouched, making the refreshed factors
    /// **bit-identical** to the sequential refresh. A width-1 pool (or a
    /// single block) delegates to the sequential, allocation-free path —
    /// the returned flag is `true` only when the pooled path actually ran.
    ///
    /// # Errors
    ///
    /// Same contract as [`BlockJacobiPrecond::refactor_in_place`]: on a
    /// singular block, the error reported is the lowest-indexed failing
    /// block's (chunks are scanned in block order), other chunks may or
    /// may not have refreshed, and the caller must refresh or rebuild
    /// before the next apply.
    pub fn refactor_in_place_parallel(&mut self, a: &CsrMatrix, pool: &WorkerPool) -> Result<bool> {
        let nb = self.blocks.len();
        if pool.threads().min(nb) <= 1 {
            return self.refactor_in_place(a).map(|()| false);
        }
        if !self.matches(a) {
            return Err(NumericsError::DimensionMismatch {
                context: format!(
                    "BlockJacobi::refactor_in_place_parallel: {}x{} matrix into {} blocks of {}",
                    a.rows(),
                    a.cols(),
                    nb,
                    self.block_size
                ),
            });
        }
        let bs = self.block_size;
        let chunk = nb.div_ceil(pool.threads().min(nb));
        let chunks: Vec<Mutex<(usize, &mut [DenseLu])>> = self
            .blocks
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, blocks)| Mutex::new((c * chunk, blocks)))
            .collect();
        let outcomes = pool.run(chunks.len(), |c| {
            let mut guard = chunks[c].lock().expect("chunk slot poisoned");
            let (base, blocks) = &mut *guard;
            let mut scratch = DenseMatrix::zeros(bs, bs);
            for (i, lu) in blocks.iter_mut().enumerate() {
                gather_block(a, bs, *base + i, &mut scratch);
                lu.refactor(&scratch)?;
            }
            Ok(())
        });
        outcomes.into_iter().collect::<Result<()>>().map(|()| true)
    }
}

impl Preconditioner for BlockJacobiPrecond {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let bs = self.block_size;
        for (b, lu) in self.blocks.iter().enumerate() {
            lu.solve_into(&r[b * bs..(b + 1) * bs], &mut z[b * bs..(b + 1) * bs]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};

    fn spd_example(n: usize) -> CsrMatrix {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn jacobi_scales_by_diag() {
        let a = spd_example(4);
        let m = JacobiPrecond::new(&a);
        let mut z = vec![0.0; 4];
        m.apply(&[4.0, 8.0, 12.0, 16.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn identity_copies() {
        let m = IdentityPrecond;
        let mut z = vec![0.0; 2];
        m.apply(&[5.0, -1.0], &mut z);
        assert_eq!(z, vec![5.0, -1.0]);
    }

    #[test]
    fn ilu0_exact_for_tridiagonal() {
        // For a tridiagonal matrix ILU(0) has no dropped fill: it is an
        // exact LU, so applying it solves the system exactly.
        let a = spd_example(12);
        let ilu = Ilu0::new(&a).expect("ilu0");
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let mut x = vec![0.0; 12];
        ilu.apply(&b, &mut x);
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-12, "residual {}", norm_inf(&r));
    }

    #[test]
    fn ilu0_missing_diagonal_rejected() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        assert!(matches!(
            Ilu0::new(&t.to_csr()),
            Err(NumericsError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn block_jacobi_exact_for_block_diagonal() {
        // A purely block-diagonal matrix: block-Jacobi IS its inverse.
        let mut t = Triplets::new(4, 4);
        // block 0: [[2, 1], [0, 3]]
        t.push(0, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, 3.0);
        // block 1: [[0, 1], [1, 0]] — zero diagonals, like V-source rows.
        t.push(2, 3, 1.0);
        t.push(3, 2, 1.0);
        let a = t.to_csr();
        let m = BlockJacobiPrecond::new(&a, 2).expect("block jacobi");
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut z = vec![0.0; 4];
        m.apply(&b, &mut z);
        let r = sub(&a.matvec(&z), &b);
        assert!(norm_inf(&r) < 1e-14, "residual {}", norm_inf(&r));
    }

    #[test]
    fn block_jacobi_rejects_bad_block_size() {
        let a = spd_example(6);
        assert!(BlockJacobiPrecond::new(&a, 4).is_err());
        assert!(BlockJacobiPrecond::new(&a, 0).is_err());
        assert!(BlockJacobiPrecond::new(&a, 3).is_ok());
    }

    #[test]
    fn block_jacobi_handles_zero_diagonal_rows() {
        // ILU(0) refuses this matrix; block-Jacobi factors it fine.
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let a = t.to_csr();
        assert!(Ilu0::new(&a).is_err());
        assert!(BlockJacobiPrecond::new(&a, 2).is_ok());
    }

    #[test]
    fn block_jacobi_parallel_refresh_bit_identical_to_sequential() {
        // 12 blocks of 4: enough to give every worker several chunks.
        let (nb, bs) = (12, 4);
        let n = nb * bs;
        let mk = |scale: f64| {
            let mut t = Triplets::new(n, n);
            for b in 0..nb {
                let base = b * bs;
                for i in 0..bs {
                    for j in 0..bs {
                        let v = if i == j {
                            4.0 + (base + i) as f64 * 0.1
                        } else {
                            0.3 * ((base + i + 2 * j) as f64).sin()
                        };
                        t.push(base + i, base + j, v * scale);
                    }
                }
            }
            t.to_csr()
        };
        let a0 = mk(1.0);
        let a1 = mk(1.5);
        let mut seq = BlockJacobiPrecond::new(&a0, bs).expect("factor");
        let mut par = seq.clone();
        seq.refactor_in_place(&a1).expect("sequential refresh");
        let pooled = par
            .refactor_in_place_parallel(&a1, &WorkerPool::new(4))
            .expect("parallel refresh");
        assert!(pooled, "a width-4 pool over 12 blocks must run pooled");
        // Identical per-block arithmetic → identical applications, to the
        // bit, on any probe vector.
        let r: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).cos()).collect();
        let (mut zs, mut zp) = (vec![0.0; n], vec![0.0; n]);
        seq.apply(&r, &mut zs);
        par.apply(&r, &mut zp);
        for (s, p) in zs.iter().zip(&zp) {
            assert_eq!(s.to_bits(), p.to_bits());
        }
        // Width-1 pools delegate to the allocation-free sequential path
        // (and report that they did).
        let mut inline = BlockJacobiPrecond::new(&a0, bs).expect("factor");
        let pooled = inline
            .refactor_in_place_parallel(&a1, &WorkerPool::new(1))
            .expect("inline refresh");
        assert!(!pooled, "width-1 delegation must not claim the pooled path");
        let mut zi = vec![0.0; n];
        inline.apply(&r, &mut zi);
        assert_eq!(zi, zs);
        // Dimension mismatch still rejected.
        let wrong = spd_example(8);
        assert!(par
            .refactor_in_place_parallel(&wrong, &WorkerPool::new(4))
            .is_err());
    }

    #[test]
    fn block_jacobi_parallel_refresh_reports_singular_block() {
        // Zero out one block; both paths must reject with a singular error.
        let mut t = Triplets::new(8, 8);
        for i in 0..8 {
            t.push(i, i, if (4..6).contains(&i) { 1.0 } else { 2.0 });
        }
        let good = t.to_csr();
        let mut bad_t = Triplets::new(8, 8);
        for i in 0..8 {
            bad_t.push(i, i, if (4..6).contains(&i) { 0.0 } else { 2.0 });
        }
        let bad = bad_t.to_csr();
        let mut bj = BlockJacobiPrecond::new(&good, 2).expect("factor");
        assert!(matches!(
            bj.refactor_in_place_parallel(&bad, &WorkerPool::new(3)),
            Err(NumericsError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn ilu0_approximates_grid_inverse() {
        // 2-D grid: ILU(0) is inexact but should reduce the residual of a
        // single application well below the unpreconditioned norm.
        let (n1, n2) = (6, 6);
        let n = n1 * n2;
        let mut t = Triplets::new(n, n);
        for j in 0..n2 {
            for i in 0..n1 {
                let me = j * n1 + i;
                t.push(me, me, 4.5);
                if i + 1 < n1 {
                    t.push(me, me + 1, -1.0);
                    t.push(me + 1, me, -1.0);
                }
                if j + 1 < n2 {
                    t.push(me, me + n1, -1.0);
                    t.push(me + n1, me, -1.0);
                }
            }
        }
        let a = t.to_csr();
        let ilu = Ilu0::new(&a).expect("ilu0");
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        ilu.apply(&b, &mut x);
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 0.5 * norm_inf(&b));
    }
}
