//! Krylov-subspace iterative solvers and preconditioners.
//!
//! The paper notes that the MPDE systems are solved "using iterative linear
//! solution methods"; this module provides restarted [`gmres`] and
//! [`bicgstab`] over a matrix-free [`LinearOperator`] abstraction, with
//! identity/Jacobi/ILU(0) preconditioning.

mod bicgstab;
mod gmres;
mod precond;

pub use bicgstab::{bicgstab, bicgstab_budgeted, BiCgStabOptions};
pub use gmres::{gmres, gmres_budgeted, GmresOptions, GmresStats};
pub use precond::{BlockJacobiPrecond, IdentityPrecond, Ilu0, JacobiPrecond, Preconditioner};

use crate::sparse::CsrMatrix;

/// Anything that can apply `y = A·x` — an explicit sparse matrix or a
/// matrix-free operator (e.g. transient sensitivity propagation in the
/// Krylov shooting method).
pub trait LinearOperator {
    /// Problem dimension (`A` is `dim × dim`).
    fn dim(&self) -> usize;

    /// Computes `y = A·x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != self.dim()` or
    /// `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.matvec_into(x, y);
    }
}

/// A closure-backed operator, handy for tests and shooting methods.
pub struct FnOperator<F> {
    dim: usize,
    f: F,
}

impl<F: Fn(&[f64], &mut [f64])> FnOperator<F> {
    /// Wraps a closure computing `y = A·x` for vectors of length `dim`.
    pub fn new(dim: usize, f: F) -> Self {
        FnOperator { dim, f }
    }
}

impl<F: Fn(&[f64], &mut [f64])> LinearOperator for FnOperator<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (self.f)(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;

    #[test]
    fn csr_operator_applies() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        let a = t.to_csr();
        let mut y = vec![0.0; 2];
        a.apply(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn fn_operator_applies() {
        let op = FnOperator::new(3, |x: &[f64], y: &mut [f64]| {
            for (yi, xi) in y.iter_mut().zip(x) {
                *yi = 2.0 * xi;
            }
        });
        let mut y = vec![0.0; 3];
        op.apply(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![2.0, 4.0, 6.0]);
        assert_eq!(op.dim(), 3);
    }
}
