//! Left-looking sparse LU factorisation (Gilbert–Peierls) with threshold
//! partial pivoting, a reverse Cuthill–McKee fill-reducing ordering, and a
//! KLU-style symbolic/numeric split for pattern-invariant refactorisation.
//!
//! This is the direct solver behind both the circuit Newton iterations and
//! the large MPDE grid Jacobians (`n·N1·N2` unknowns). The algorithm follows
//! the classic CSparse `cs_lu` structure: for each column, a depth-first
//! reach over the partially built `L` determines the pattern of the sparse
//! triangular solve, after which a pivot row is chosen among the not yet
//! pivoted rows.
//!
//! # Symbolic reuse
//!
//! MNA/MPDE Jacobians keep a fixed sparsity pattern for the life of a
//! circuit while their values change every Newton iteration. A full
//! [`SparseLu::factor`] therefore wastes most of its time rediscovering
//! structure: the RCM ordering, the per-column DFS reach, and the pivot
//! order. The split captures that structure once in a [`SymbolicLu`]
//! (row/column permutations plus the exact `L`/`U` elimination patterns)
//! and re-runs only the numeric sparse triangular solves on new values:
//!
//! * [`SymbolicLu::analyze`] — one-time analysis of a representative matrix
//!   (internally a full factorisation whose values are discarded).
//! * [`SymbolicLu::refactor`] — numeric-only factorisation of a same-pattern
//!   matrix, allocating a fresh [`SparseLu`].
//! * [`SparseLu::refactor_in_place`] — the hot path: overwrite this factor's
//!   values from a same-pattern matrix with **zero** allocation, no DFS and
//!   no pivot search.
//!
//! # Restricted pivoting (KLU-style resilience)
//!
//! Refactorisation starts from the recorded pivot order, but a value change
//! that drives a recorded pivot to (near) zero no longer has to discard the
//! symbolic analysis. Following the restricted-pivoting idea of KLU (Davis
//! & Palamadai Natarajan, *Algorithm 907: KLU, a direct sparse solver for
//! circuit simulation problems*, ACM TOMS 37(3), 2010) — which confines
//! pivot search to structures prepared at analysis time so refactorisation
//! never re-runs the symbolic phase — [`SparseLu::refactor_in_place`]
//! answers a vanished pivot with a **local row exchange confined to the
//! recorded fill pattern**:
//!
//! 1. *Detection* is relative, not absolute: the pivot at column `k` has
//!    vanished when `|u_kk| ≤ max(pivot_abs_min, refactor_rel_threshold ·
//!    colmax)`, where `colmax` is the largest candidate magnitude in the
//!    column (the diagonal plus the recorded `L` pattern). A badly scaled
//!    circuit (mA stamps against kΩ stamps) therefore never trips the
//!    check just because its pivots are small in absolute terms.
//! 2. *Exchange*: candidate rows are exactly the recorded `L`-pattern of
//!    the column — positions whose values the numeric sweep has already
//!    computed. A candidate factor row `r` is structurally admissible when
//!    rows `k` and `r` appear in *identical* sets of columns of the
//!    recorded pattern: equality beyond `k` makes the swap permute every
//!    later column's pattern onto itself, equality below `k` lets the
//!    exchange also swap the `L` multipliers the two rows already
//!    received from earlier columns of the pass (as dense partial
//!    pivoting swaps full working rows) — together the factorisation
//!    stays exact; this is the in-pattern analogue of KLU's
//!    block-confined partial pivoting. The largest admissible candidate
//!    above `pivot_threshold · colmax` becomes the new pivot; the swap is
//!    recorded in the factor's permutation delta
//!    ([`SparseLu::current_row_permutation`]) and persists across
//!    subsequent refactorisations, so a drifted operating point pays for
//!    the exchange once.
//! 3. *Fallback*: only when no in-pattern row qualifies is
//!    [`NumericsError::SingularMatrix`] reported; callers then fall back
//!    to a fresh [`SparseLu::factor`], which is free to pick a completely
//!    new pivot order.
//!
//! # Parallel numeric refactorisation
//!
//! [`SparseLu::refactor_in_place_parallel`] runs the numeric sweep as a
//! column pipeline over a fixed-width [`WorkerPool`]: workers claim columns
//! in order from an atomic counter and spin on per-column done flags for
//! their recorded `U`-dependencies, so independent subtrees of the
//! elimination DAG factor concurrently while every value lands exactly
//! where the sequential sweep would put it. Restricted pivoting needs the
//! permutation to be stable while workers scatter ahead, so a vanished
//! pivot aborts the pipeline and the call transparently retries on the
//! sequential path (which may exchange) before reporting failure.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use crate::pool::WorkerPool;
use crate::sparse::CscMatrix;
use crate::{NumericsError, Result};

const NONE: usize = usize::MAX;

/// Raw shared-mutable pointer handed to the refactor pipeline workers.
/// Every dereference site argues its own disjointness/ordering; the
/// wrapper exists only to move the pointer into the scoped threads.
struct SharedMut(*mut f64);

impl SharedMut {
    /// The wrapped pointer. A method rather than field access so closures
    /// capture the (`Sync`) wrapper, not the raw pointer itself.
    fn ptr(&self) -> *mut f64 {
        self.0
    }
}

// SAFETY: the pipeline writes disjoint per-column ranges and orders
// cross-column reads through Acquire/Release done flags; see the use
// sites in `SparseLu::refactor_in_place_parallel`.
unsafe impl Send for SharedMut {}
unsafe impl Sync for SharedMut {}

/// Column ordering strategy applied before factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Use columns in their natural order.
    Natural,
    /// Reverse Cuthill–McKee on the symmetrised pattern: reduces bandwidth,
    /// and therefore fill, for grid-structured Jacobians.
    #[default]
    Rcm,
}

/// Options controlling [`SparseLu::factor`].
#[derive(Debug, Clone, Copy)]
pub struct LuOptions {
    /// Column ordering strategy.
    pub ordering: Ordering,
    /// Diagonal preference threshold in `[0, 1]`: the diagonal entry is
    /// accepted as pivot if its magnitude is at least `pivot_threshold`
    /// times the column maximum. `1.0` forces strict partial pivoting.
    /// Also the acceptance threshold for restricted-pivoting exchanges
    /// during refactorisation.
    pub pivot_threshold: f64,
    /// Pivots smaller than this magnitude are treated as singular.
    pub pivot_abs_min: f64,
    /// Refactorisation treats a recorded pivot as vanished when its
    /// magnitude is at most `refactor_rel_threshold` times the largest
    /// candidate magnitude in its column (diagonal plus recorded `L`
    /// pattern). Relative, so badly scaled circuits (mA device stamps
    /// against kΩ resistor stamps) don't trigger spurious full
    /// re-factorisations; `pivot_abs_min` remains the absolute floor.
    pub refactor_rel_threshold: f64,
    /// Whether a vanished pivot during refactorisation may be repaired by
    /// an in-pattern row exchange (see the module docs) before falling
    /// back to a full factorisation.
    pub restricted_pivoting: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: Ordering::Rcm,
            pivot_threshold: 0.1,
            pivot_abs_min: 1e-300,
            refactor_rel_threshold: 1e-3,
            restricted_pivoting: true,
        }
    }
}

/// The structure of a sparse LU factorisation, independent of values: the
/// fill-reducing column ordering, the pivot order chosen on the analysed
/// matrix, and the exact `L`/`U` elimination patterns.
///
/// Built by [`SymbolicLu::analyze`] (or captured from a full
/// [`SparseLu::factor`] via [`SparseLu::symbolic`]); consumed by
/// [`SymbolicLu::refactor`] and [`SparseLu::refactor_in_place`], which redo
/// only the numeric work on a same-pattern matrix.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    /// Pivots below this magnitude fail refactorisation.
    pivot_abs_min: f64,
    /// Relative vanished-pivot threshold for refactorisation (times the
    /// column's candidate maximum).
    refactor_rel_threshold: f64,
    /// Acceptance threshold for restricted-pivoting exchange candidates
    /// (times the column's candidate maximum).
    pivot_threshold: f64,
    /// Whether refactorisation may repair vanished pivots in-pattern.
    restricted_pivoting: bool,
    /// The analysed matrix's pattern (column pointers and row indices);
    /// refactorisation requires an exact match. Stored outright — a
    /// fingerprint would admit silent wrong-matrix factorisation on
    /// collision — and shared via the factor's `Arc`.
    a_indptr: Vec<usize>,
    a_indices: Vec<usize>,
    // L: strictly lower pattern, CSC, row indices in factor (pivot) space.
    lp: Vec<usize>,
    li: Vec<usize>,
    // U: strictly upper pattern, CSC, factor-space rows, ascending per
    // column (the refactor elimination order).
    up: Vec<usize>,
    ui: Vec<usize>,
    /// `p[k]` = original row sitting in factor row `k`.
    p: Vec<usize>,
    /// `pinv[i]` = factor row of original row `i`.
    pinv: Vec<usize>,
    /// `q[k]` = original column sitting in factor column `k`.
    q: Vec<usize>,
    /// Row-appearance table (CSR over the combined `L`/`U`/diagonal
    /// pattern): `row_cols[row_cols_ptr[i]..row_cols_ptr[i + 1]]` is the
    /// ascending list of factor columns in whose recorded pattern factor
    /// row `i` appears. Two rows are safe to exchange at column `k`
    /// exactly when their appearance lists agree beyond `k` — the
    /// structural admissibility test of restricted pivoting.
    row_cols_ptr: Vec<usize>,
    row_cols: Vec<usize>,
}

/// Builds the row-appearance table from the final (factor-space) `L`/`U`
/// patterns: for each factor row, the ascending factor columns in whose
/// pattern it appears (diagonal included).
fn row_appearance_table(
    n: usize,
    lp: &[usize],
    li: &[usize],
    up: &[usize],
    ui: &[usize],
) -> (Vec<usize>, Vec<usize>) {
    let mut counts = vec![0usize; n + 1];
    for &i in li.iter().chain(ui.iter()) {
        counts[i + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += 1; // the diagonal appearance
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let ptr = counts;
    let mut next = ptr.clone();
    let mut cols = vec![0usize; ptr[n]];
    // Column-major emission keeps each row's list ascending: the diagonal
    // appearance of row k interleaves exactly at column k.
    for k in 0..n {
        for &i in &ui[up[k]..up[k + 1]] {
            cols[next[i]] = k;
            next[i] += 1;
        }
        cols[next[k]] = k;
        next[k] += 1;
        for &i in &li[lp[k]..lp[k + 1]] {
            cols[next[i]] = k;
            next[i] += 1;
        }
    }
    (ptr, cols)
}

impl SymbolicLu {
    /// Analyses a representative matrix: computes the fill-reducing
    /// ordering, pivot order and elimination patterns that every
    /// same-pattern matrix can then reuse.
    ///
    /// This is a full Gilbert–Peierls factorisation whose numeric factors
    /// are discarded — pivoting is value-driven, so the analysis needs a
    /// matrix with representative values (for Newton hot paths: the first
    /// assembled Jacobian).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`SparseLu::factor`].
    pub fn analyze(a: &CscMatrix, options: LuOptions) -> Result<Self> {
        let sym = SparseLu::factor(a, options)?.sym;
        // The factor just dropped its other fields; this Arc is unique.
        Ok(Arc::try_unwrap(sym).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Numeric-only factorisation of `a`, which must have exactly the
    /// analysed pattern. Allocates a fresh factor (copying this structure
    /// once — loops producing many factors should hold an
    /// `Arc<SymbolicLu>` and call [`SymbolicLu::refactor_shared`]); use
    /// [`SparseLu::refactor_in_place`] to reuse one factor across
    /// iterations instead.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::InvalidArgument`] if `a`'s pattern differs from
    ///   the analysed pattern.
    /// * [`NumericsError::SingularMatrix`] if a recorded pivot vanishes for
    ///   the new values.
    pub fn refactor(&self, a: &CscMatrix) -> Result<SparseLu> {
        Arc::new(self.clone()).refactor_shared(a)
    }

    /// [`SymbolicLu::refactor`] without copying the structure: the returned
    /// factor shares this `Arc`, so only the numeric arrays are allocated.
    /// This is the right call in loops that keep many factors alive over
    /// one structure (e.g. per-timestep sensitivity operators).
    ///
    /// # Errors
    ///
    /// See [`SymbolicLu::refactor`].
    pub fn refactor_shared(self: &Arc<Self>, a: &CscMatrix) -> Result<SparseLu> {
        let mut lu = SparseLu {
            sym: Arc::clone(self),
            lx: vec![0.0; self.li.len()],
            ux: vec![0.0; self.ui.len()],
            udiag: vec![0.0; self.n],
            scratch: vec![0.0; self.n],
            p_cur: self.p.clone(),
            pinv_cur: self.pinv.clone(),
        };
        lu.refactor_in_place(a)?;
        Ok(lu)
    }

    /// Dimension of the analysed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in the `L`/`U` patterns, diagonal included
    /// (fill diagnostic).
    pub fn nnz(&self) -> usize {
        self.li.len() + self.ui.len() + self.n
    }

    /// Whether `a` has exactly the pattern this analysis was built from
    /// (dimensions, column pointers and row indices; a slice compare, so
    /// cheap next to the numeric work it gates).
    pub fn matches(&self, a: &CscMatrix) -> bool {
        a.rows() == self.n
            && a.cols() == self.n
            && a.indptr() == &self.a_indptr[..]
            && a.indices() == &self.a_indices[..]
    }

    /// Whether factor rows `k` and `r` (an `L`-pattern candidate of column
    /// `k`, so `r > k`) may be exchanged while pivoting column `k` without
    /// leaving the recorded pattern: their column-appearance lists must be
    /// **identical**.
    ///
    /// * Beyond `k`, equality makes the swap map every later column's
    ///   pattern onto itself (scatter and fill stay inside the recorded
    ///   reach, in this and every subsequent refactorisation).
    /// * Below `k`, both rows appear only as `L` entries of already
    ///   factored columns, whose multipliers the exchange must swap
    ///   value-for-value — possible only where both rows hold a recorded
    ///   slot in exactly the same columns.
    /// * At `j = k` both lists contain `k` by construction (the diagonal,
    ///   and `r ∈ L(k)`), and at `j = r` equality requires `k` to appear
    ///   in column `r`'s pattern, where row `r`'s diagonal slot lives —
    ///   so whole-list equality is exactly the right test, with no
    ///   carve-outs.
    fn exchange_admissible(&self, k: usize, r: usize) -> bool {
        let rk = &self.row_cols[self.row_cols_ptr[k]..self.row_cols_ptr[k + 1]];
        let rr = &self.row_cols[self.row_cols_ptr[r]..self.row_cols_ptr[r + 1]];
        rk == rr
    }

    /// Fingerprint of the analysed matrix's CSC pattern — equal to
    /// [`crate::sparse::CscMatrix::pattern_fingerprint`] of any matrix this
    /// analysis accepts. A cache key only: [`SymbolicLu::matches`] remains
    /// the authority on whether a matrix actually fits (see
    /// [`crate::sparse::PatternFingerprint`] on collision semantics).
    pub fn pattern_fingerprint(&self) -> crate::sparse::PatternFingerprint {
        // Reconstruct through a borrowed CSC view? The pattern hash only
        // needs dims + indptr + indices, which we store verbatim.
        crate::sparse::PatternFingerprint::of_parts(self.n, self.n, &self.a_indptr, &self.a_indices)
    }
}

/// Outcome of a successful in-place refactorisation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefactorReport {
    /// In-pattern pivot exchanges performed by restricted pivoting during
    /// this call (0 on the happy path where every recorded pivot held).
    pub pivot_exchanges: usize,
    /// Whether the parallel column pipeline carried the numeric sweep
    /// (`false` for sequential execution, including the sequential retry
    /// after a pipeline abort).
    pub parallel: bool,
}

/// Sparse LU factors `P·A·Q = L·U` with unit lower-triangular `L`.
#[derive(Debug, Clone)]
pub struct SparseLu {
    /// The structure: permutations and `L`/`U` patterns, shareable between
    /// factors of the same pattern.
    sym: Arc<SymbolicLu>,
    lx: Vec<f64>,
    ux: Vec<f64>,
    udiag: Vec<f64>,
    /// Dense accumulator reused by [`Self::refactor_in_place`]
    /// (kept zeroed between calls).
    scratch: Vec<f64>,
    /// Current row permutation — the recorded pivot order composed with
    /// every restricted-pivoting exchange performed so far (the factor's
    /// permutation delta). `p_cur[k]` = original row in factor row `k`.
    p_cur: Vec<usize>,
    /// Inverse of `p_cur`: factor row of each original row.
    pinv_cur: Vec<usize>,
}

impl SparseLu {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] for non-square input.
    /// * [`NumericsError::SingularMatrix`] if no acceptable pivot exists in
    ///   some column.
    pub fn factor(a: &CscMatrix, options: LuOptions) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(NumericsError::DimensionMismatch {
                context: format!("SparseLu: matrix is {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let q = match options.ordering {
            Ordering::Natural => (0..n).collect::<Vec<_>>(),
            Ordering::Rcm => rcm_ordering(a)?,
        };

        let mut pinv = vec![NONE; n];
        let nnz_guess = 4 * a.nnz() + n;
        let mut lp = Vec::with_capacity(n + 1);
        let mut li: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut lx: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut up = Vec::with_capacity(n + 1);
        let mut ui: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut ux: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut udiag = vec![0.0; n];
        lp.push(0);
        up.push(0);

        // Dense workspace and DFS state, reused across columns.
        let mut x = vec![0.0f64; n];
        let mut mark = vec![0u32; n];
        let mut generation = 0u32;
        let mut node_stack: Vec<usize> = Vec::with_capacity(n);
        let mut edge_stack: Vec<usize> = Vec::with_capacity(n);
        let mut post: Vec<usize> = Vec::with_capacity(n);

        for k in 0..n {
            generation += 1;
            post.clear();

            // --- Symbolic: reach of A[:, q[k]] through the graph of L. ---
            let (brows, bvals) = a.col(q[k]);
            for &i in brows {
                if mark[i] != generation {
                    dfs_reach(
                        i,
                        &lp,
                        &li,
                        &pinv,
                        &mut mark,
                        generation,
                        &mut node_stack,
                        &mut edge_stack,
                        &mut post,
                    );
                }
            }

            // --- Numeric: sparse triangular solve x = L \ A[:, q[k]]. ---
            for &i in &post {
                x[i] = 0.0;
            }
            for (&i, &v) in brows.iter().zip(bvals) {
                x[i] = v;
            }
            // `post` is in DFS postorder; topological order is its reverse.
            for &i in post.iter().rev() {
                let col = pinv[i];
                if col == NONE {
                    continue; // not yet pivoted: belongs to L-part, no elimination
                }
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for idx in lp[col]..lp[col + 1] {
                    x[li[idx]] -= lx[idx] * xi;
                }
            }

            // --- Pivot selection among unpivoted rows. ---
            let mut max_val = 0.0f64;
            let mut max_row = NONE;
            for &i in &post {
                if pinv[i] == NONE {
                    let v = x[i].abs();
                    if v > max_val {
                        max_val = v;
                        max_row = i;
                    }
                }
            }
            if max_row == NONE || max_val <= options.pivot_abs_min {
                return Err(NumericsError::SingularMatrix {
                    index: k,
                    pivot: max_val,
                });
            }
            // Prefer the "diagonal" row (original row q[k]) when acceptable:
            // keeps near-symmetric patterns banded under RCM. The row must
            // be part of this column's reach (`mark` check): `x` holds
            // stale values outside `post`, and a stale-valued pivot would
            // silently produce a factorisation of the wrong matrix.
            let diag_row = q[k];
            let mut piv_row = max_row;
            if pinv[diag_row] == NONE
                && mark[diag_row] == generation
                && x[diag_row].abs() >= options.pivot_threshold * max_val
                && x[diag_row].abs() > options.pivot_abs_min
            {
                piv_row = diag_row;
            }
            let piv_val = x[piv_row];
            pinv[piv_row] = k;
            udiag[k] = piv_val;

            // --- Scatter into U (pivoted rows) and L (unpivoted rows). ---
            // Numerically zero entries are kept: the stored pattern must be
            // the full structural reach so that refactorisation with
            // different values stays exact.
            for &i in &post {
                if i == piv_row {
                    continue;
                }
                let xi = x[i];
                let row = pinv[i];
                if row != NONE {
                    ui.push(row); // factor-space row, final
                    ux.push(xi);
                } else {
                    li.push(i); // original-space row, remapped after the loop
                    lx.push(xi / piv_val);
                }
            }
            lp.push(li.len());
            up.push(ui.len());
        }

        // Remap L row indices from original space to factor space.
        for idx in li.iter_mut() {
            *idx = pinv[*idx];
        }
        // Build p from pinv.
        let mut p = vec![0usize; n];
        for (orig, &fact) in pinv.iter().enumerate() {
            p[fact] = orig;
        }
        // Sort each U column's entries by factor row: ascending row order is
        // the topological elimination order `refactor_in_place` replays.
        {
            let mut perm: Vec<usize> = Vec::new();
            for k in 0..n {
                let (lo, hi) = (up[k], up[k + 1]);
                if hi - lo > 1 {
                    perm.clear();
                    perm.extend(0..hi - lo);
                    perm.sort_unstable_by_key(|&j| ui[lo + j]);
                    let sorted_i: Vec<usize> = perm.iter().map(|&j| ui[lo + j]).collect();
                    let sorted_x: Vec<f64> = perm.iter().map(|&j| ux[lo + j]).collect();
                    ui[lo..hi].copy_from_slice(&sorted_i);
                    ux[lo..hi].copy_from_slice(&sorted_x);
                }
            }
        }
        let (row_cols_ptr, row_cols) = row_appearance_table(n, &lp, &li, &up, &ui);
        let p_cur = p.clone();
        let pinv_cur = pinv.clone();
        Ok(SparseLu {
            sym: Arc::new(SymbolicLu {
                n,
                pivot_abs_min: options.pivot_abs_min,
                refactor_rel_threshold: options.refactor_rel_threshold,
                pivot_threshold: options.pivot_threshold,
                restricted_pivoting: options.restricted_pivoting,
                a_indptr: a.indptr().to_vec(),
                a_indices: a.indices().to_vec(),
                lp,
                li,
                up,
                ui,
                p,
                pinv,
                q,
                row_cols_ptr,
                row_cols,
            }),
            lx,
            ux,
            udiag,
            scratch: vec![0.0; n],
            p_cur,
            pinv_cur,
        })
    }

    /// Overwrites this factor's values from `a`, which must have exactly
    /// the pattern of the originally factored matrix. Reuses the recorded
    /// permutations and elimination patterns: no ordering, no DFS reach, no
    /// pivot search, and no allocation — only the numeric sparse triangular
    /// solves. This is the Newton hot path.
    ///
    /// A recorded pivot that vanished for the new values (relative to its
    /// column — see [`LuOptions::refactor_rel_threshold`]) is repaired by a
    /// KLU-style in-pattern row exchange when one is structurally
    /// admissible (see the module docs); the exchange is recorded in the
    /// factor's permutation delta and persists across later calls.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::InvalidArgument`] if `a`'s pattern differs from
    ///   the factored pattern (the factor is left unchanged).
    /// * [`NumericsError::SingularMatrix`] if a recorded pivot vanishes for
    ///   the new values and no in-pattern exchange row qualifies — the new
    ///   matrix may still be factorable under a different pivot order, so
    ///   callers should retry with a full [`SparseLu::factor`]. The factor's
    ///   values are unspecified after this error.
    pub fn refactor_in_place(&mut self, a: &CscMatrix) -> Result<RefactorReport> {
        if !self.sym.matches(a) {
            return Err(NumericsError::InvalidArgument {
                context: format!(
                    "SparseLu::refactor_in_place: pattern of {}x{} matrix (nnz {}) differs \
                     from the factored pattern",
                    a.rows(),
                    a.cols(),
                    a.nnz()
                ),
            });
        }
        let SparseLu {
            sym,
            lx,
            ux,
            udiag,
            scratch,
            p_cur,
            pinv_cur,
        } = self;
        let sym: &SymbolicLu = sym;
        let n = sym.n;
        let x = scratch;
        debug_assert!(x.iter().all(|&v| v == 0.0), "scratch not cleared");
        let mut exchanges = 0usize;
        for k in 0..n {
            // Scatter A[:, q[k]] into factor space. Every position lies in
            // {k} ∪ U-pattern(k) ∪ L-pattern(k): the stored pattern is the
            // full structural reach of this column, and the current
            // permutation maps reach onto reach (each recorded exchange
            // swapped two rows with identical trailing patterns).
            let (rows, vals) = a.col(sym.q[k]);
            for (&i, &v) in rows.iter().zip(vals) {
                x[pinv_cur[i]] += v;
            }
            // Left-looking elimination over the recorded U pattern.
            // Ascending factor-row order is topological (L is strictly
            // lower), so each x[i] is final when read.
            for t in sym.up[k]..sym.up[k + 1] {
                let i = sym.ui[t];
                let xi = x[i];
                ux[t] = xi;
                if xi != 0.0 {
                    for idx in sym.lp[i]..sym.lp[i + 1] {
                        x[sym.li[idx]] -= lx[idx] * xi;
                    }
                }
            }
            // Vanished-pivot detection, relative to the column's pivot
            // candidates (the diagonal plus the recorded L pattern).
            let mut piv = x[k];
            let mut colmax = piv.abs();
            for idx in sym.lp[k]..sym.lp[k + 1] {
                colmax = colmax.max(x[sym.li[idx]].abs());
            }
            let vanish = sym.pivot_abs_min.max(sym.refactor_rel_threshold * colmax);
            if piv.abs() <= vanish || piv.is_nan() {
                // Restricted pivoting: the best structurally admissible
                // in-pattern row, threshold-accepted against the column.
                let mut best: Option<usize> = None;
                if sym.restricted_pivoting {
                    let accept = sym.pivot_abs_min.max(sym.pivot_threshold * colmax);
                    let mut best_mag = 0.0f64;
                    for idx in sym.lp[k]..sym.lp[k + 1] {
                        let r = sym.li[idx];
                        let mag = x[r].abs();
                        if mag >= accept && mag > best_mag && sym.exchange_admissible(k, r) {
                            best_mag = mag;
                            best = Some(r);
                        }
                    }
                }
                match best {
                    Some(r) => {
                        // Swap factor rows k ↔ r: the old diagonal value
                        // moves into L at row r, x[r] becomes the pivot,
                        // and the permutation delta records the exchange
                        // for every later column's scatter (and for
                        // subsequent refactorisations).
                        x.swap(k, r);
                        let (row_a, row_b) = (p_cur[k], p_cur[r]);
                        p_cur.swap(k, r);
                        pinv_cur[row_a] = r;
                        pinv_cur[row_b] = k;
                        piv = x[k];
                        exchanges += 1;
                        // Rows k and r also carry already-computed L
                        // multipliers in every earlier column of this
                        // pass; the row exchange must swap those
                        // value-for-value (exactly what dense partial
                        // pivoting does to the trailing part of the
                        // working array). Admissibility guarantees both
                        // rows hold slots in exactly the same earlier
                        // columns — the ascending appearance list of
                        // row k, cut at k.
                        let rl = &sym.row_cols[sym.row_cols_ptr[k]..sym.row_cols_ptr[k + 1]];
                        for &j in rl.iter().take_while(|&&j| j < k) {
                            let (mut pos_k, mut pos_r) = (NONE, NONE);
                            for idx in sym.lp[j]..sym.lp[j + 1] {
                                if sym.li[idx] == k {
                                    pos_k = idx;
                                } else if sym.li[idx] == r {
                                    pos_r = idx;
                                }
                            }
                            debug_assert!(
                                pos_k != NONE && pos_r != NONE,
                                "admissible exchange rows must share earlier columns"
                            );
                            lx.swap(pos_k, pos_r);
                        }
                    }
                    None => {
                        // Clear the touched entries so the scratch stays
                        // zeroed for the next attempt, then report the
                        // vanished pivot.
                        x[k] = 0.0;
                        for t in sym.up[k]..sym.up[k + 1] {
                            x[sym.ui[t]] = 0.0;
                        }
                        for idx in sym.lp[k]..sym.lp[k + 1] {
                            x[sym.li[idx]] = 0.0;
                        }
                        return Err(NumericsError::SingularMatrix {
                            index: k,
                            pivot: piv.abs(),
                        });
                    }
                }
            }
            udiag[k] = piv;
            for idx in sym.lp[k]..sym.lp[k + 1] {
                lx[idx] = x[sym.li[idx]] / piv;
            }
            // Re-zero the touched entries for the next column.
            x[k] = 0.0;
            for t in sym.up[k]..sym.up[k + 1] {
                x[sym.ui[t]] = 0.0;
            }
            for idx in sym.lp[k]..sym.lp[k + 1] {
                x[sym.li[idx]] = 0.0;
            }
        }
        Ok(RefactorReport {
            pivot_exchanges: exchanges,
            parallel: false,
        })
    }

    /// [`SparseLu::refactor_in_place`] with the numeric sweep pipelined
    /// over `pool`'s width: workers claim columns in order and spin on
    /// per-column done flags for their recorded `U`-dependencies, so
    /// independent elimination subtrees factor concurrently and every
    /// value lands exactly where the sequential sweep would put it.
    ///
    /// Restricted pivoting requires a stable permutation while workers
    /// scatter ahead, so a vanished pivot aborts the pipeline and retries
    /// once on the sequential path (which may exchange in-pattern) before
    /// reporting failure. A width-1 pool (or a 1×1 system) runs the
    /// sequential path directly. Unlike the sequential path, the pipeline
    /// allocates per-call worker state (one dense accumulator per worker
    /// plus the done flags).
    ///
    /// # Errors
    ///
    /// Same contract as [`SparseLu::refactor_in_place`].
    pub fn refactor_in_place_parallel(
        &mut self,
        a: &CscMatrix,
        pool: &WorkerPool,
    ) -> Result<RefactorReport> {
        let n = self.sym.n;
        let width = pool.threads().min(n.max(1));
        if width <= 1 {
            return self.refactor_in_place(a);
        }
        if !self.sym.matches(a) {
            return Err(NumericsError::InvalidArgument {
                context: format!(
                    "SparseLu::refactor_in_place_parallel: pattern of {}x{} matrix (nnz {}) \
                     differs from the factored pattern",
                    a.rows(),
                    a.cols(),
                    a.nnz()
                ),
            });
        }
        let error = {
            let SparseLu {
                sym,
                lx,
                ux,
                udiag,
                scratch: _,
                p_cur: _,
                pinv_cur,
            } = &mut *self;
            let sym: &SymbolicLu = sym;
            let pinv: &[usize] = pinv_cur;
            let mut par_scratch = vec![0.0f64; width * n];
            let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let abort = AtomicBool::new(false);
            let next = AtomicUsize::new(0);
            let error: Mutex<Option<NumericsError>> = Mutex::new(None);
            let lx_ptr = SharedMut(lx.as_mut_ptr());
            let ux_ptr = SharedMut(ux.as_mut_ptr());
            let udiag_ptr = SharedMut(udiag.as_mut_ptr());
            let scratch_ptr = SharedMut(par_scratch.as_mut_ptr());
            pool.run(width, |w| {
                // SAFETY: each worker owns the disjoint accumulator chunk
                // `[w*n, (w+1)*n)`; `par_scratch` outlives the scoped pool
                // threads, which all join before it drops.
                let x = unsafe { std::slice::from_raw_parts_mut(scratch_ptr.ptr().add(w * n), n) };
                loop {
                    let k = next.fetch_add(1, AtomicOrdering::Relaxed);
                    if k >= n || abort.load(AtomicOrdering::Relaxed) {
                        return;
                    }
                    let (rows, vals) = a.col(sym.q[k]);
                    for (&i, &v) in rows.iter().zip(vals) {
                        x[pinv[i]] += v;
                    }
                    let mut aborted = false;
                    for t in sym.up[k]..sym.up[k + 1] {
                        let i = sym.ui[t];
                        // Columns are claimed in order, so every
                        // U-dependency i < k is owned by some worker and
                        // will either complete or abort.
                        while !done[i].load(AtomicOrdering::Acquire) {
                            if abort.load(AtomicOrdering::Relaxed) {
                                aborted = true;
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        if aborted {
                            break;
                        }
                        let xi = x[i];
                        // SAFETY: only column k's owner writes
                        // ux[up[k]..up[k+1]] and udiag[k]; L-column reads
                        // below are ordered after the owner's writes by
                        // the Acquire load of done[i].
                        unsafe { *ux_ptr.ptr().add(t) = xi };
                        if xi != 0.0 {
                            for idx in sym.lp[i]..sym.lp[i + 1] {
                                x[sym.li[idx]] -= unsafe { *lx_ptr.ptr().add(idx) } * xi;
                            }
                        }
                    }
                    if aborted {
                        x.fill(0.0);
                        return;
                    }
                    let piv = x[k];
                    let mut colmax = piv.abs();
                    for idx in sym.lp[k]..sym.lp[k + 1] {
                        colmax = colmax.max(x[sym.li[idx]].abs());
                    }
                    let vanish = sym.pivot_abs_min.max(sym.refactor_rel_threshold * colmax);
                    if piv.abs() <= vanish || piv.is_nan() {
                        let mut slot = error.lock().expect("refactor error slot poisoned");
                        if slot.is_none() {
                            *slot = Some(NumericsError::SingularMatrix {
                                index: k,
                                pivot: piv.abs(),
                            });
                        }
                        abort.store(true, AtomicOrdering::Relaxed);
                        x.fill(0.0);
                        return;
                    }
                    // SAFETY: see the ux write above.
                    unsafe { *udiag_ptr.ptr().add(k) = piv };
                    for idx in sym.lp[k]..sym.lp[k + 1] {
                        unsafe { *lx_ptr.ptr().add(idx) = x[sym.li[idx]] / piv };
                    }
                    done[k].store(true, AtomicOrdering::Release);
                    x[k] = 0.0;
                    for t in sym.up[k]..sym.up[k + 1] {
                        x[sym.ui[t]] = 0.0;
                    }
                    for idx in sym.lp[k]..sym.lp[k + 1] {
                        x[sym.li[idx]] = 0.0;
                    }
                }
            });
            error.into_inner().expect("refactor error slot poisoned")
        };
        match error {
            None => Ok(RefactorReport {
                pivot_exchanges: 0,
                parallel: true,
            }),
            // A vanished pivot needs the permutation-mutating sequential
            // path to attempt the in-pattern exchange.
            Some(NumericsError::SingularMatrix { .. }) if self.sym.restricted_pivoting => {
                self.refactor_in_place(a)
            }
            Some(e) => Err(e),
        }
    }

    /// The symbolic structure of this factorisation.
    pub fn symbolic(&self) -> &SymbolicLu {
        &self.sym
    }

    /// A shared handle to the symbolic structure, for spawning further
    /// same-pattern factors without copying it
    /// (see [`SymbolicLu::refactor_shared`]).
    pub fn symbolic_shared(&self) -> Arc<SymbolicLu> {
        Arc::clone(&self.sym)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.sym.n
    }

    /// Total stored entries in `L` and `U` (fill diagnostic).
    pub fn nnz(&self) -> usize {
        self.sym.nnz()
    }

    /// The current row permutation: the recorded pivot order composed with
    /// every restricted-pivoting exchange performed so far. `perm[k]` is
    /// the original row sitting in factor row `k`.
    pub fn current_row_permutation(&self) -> &[usize] {
        &self.p_cur
    }

    /// Number of factor rows whose current pivot row differs from the
    /// recorded analysis — the size of the permutation delta accumulated
    /// by restricted pivoting (0 until a pivot exchange happens).
    pub fn permutation_delta_len(&self) -> usize {
        self.p_cur
            .iter()
            .zip(&self.sym.p)
            .filter(|(cur, rec)| cur != rec)
            .count()
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let sym = &self.sym;
        assert_eq!(b.len(), sym.n, "SparseLu::solve: dimension mismatch");
        let n = sym.n;
        // x = P·b, under the current (possibly exchanged) row permutation.
        let mut x: Vec<f64> = self.p_cur.iter().map(|&pi| b[pi]).collect();
        // Forward: L·y = x (unit diagonal; column-oriented scatter).
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                for idx in sym.lp[k]..sym.lp[k + 1] {
                    x[sym.li[idx]] -= self.lx[idx] * xk;
                }
            }
        }
        // Backward: U·z = y.
        for k in (0..n).rev() {
            x[k] /= self.udiag[k];
            let xk = x[k];
            if xk != 0.0 {
                for idx in sym.up[k]..sym.up[k + 1] {
                    x[sym.ui[idx]] -= self.ux[idx] * xk;
                }
            }
        }
        // Undo column permutation: out[q[k]] = z[k].
        let mut out = vec![0.0; n];
        for k in 0..n {
            out[sym.q[k]] = x[k];
        }
        out
    }

    /// Solves in place, overwriting `b` with the solution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let x = self.solve(b);
        b.copy_from_slice(&x);
    }
}

/// Iterative depth-first search over the graph of `L`, collecting reached
/// nodes in postorder.
#[allow(clippy::too_many_arguments)]
fn dfs_reach(
    start: usize,
    lp: &[usize],
    li: &[usize],
    pinv: &[usize],
    mark: &mut [u32],
    generation: u32,
    node_stack: &mut Vec<usize>,
    edge_stack: &mut Vec<usize>,
    post: &mut Vec<usize>,
) {
    node_stack.clear();
    edge_stack.clear();
    node_stack.push(start);
    edge_stack.push(0);
    mark[start] = generation;
    while let Some(&node) = node_stack.last() {
        let col = pinv[node];
        let (lo, hi) = if col == NONE {
            (0, 0)
        } else {
            (lp[col], lp[col + 1])
        };
        let e = edge_stack.last_mut().expect("stacks in sync");
        let mut descended = false;
        while lo + *e < hi {
            let child = li[lo + *e];
            *e += 1;
            if mark[child] != generation {
                mark[child] = generation;
                node_stack.push(child);
                edge_stack.push(0);
                descended = true;
                break;
            }
        }
        if !descended {
            post.push(node);
            node_stack.pop();
            edge_stack.pop();
        }
    }
}

/// Reverse Cuthill–McKee ordering on the symmetrised pattern of `a`.
///
/// Returns a permutation `q` such that column `k` of the reordered matrix is
/// original column `q[k]`. Disconnected components are each started from a
/// minimum-degree node.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] for non-square input.
pub fn rcm_ordering(a: &CscMatrix) -> Result<Vec<usize>> {
    let adj = a.symmetrized_adjacency()?;
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut frontier: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    // Nodes sorted by degree: candidate BFS roots.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&i| adj[i].len());
    for &root in &by_degree {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        frontier.push_back(root);
        while let Some(u) = frontier.pop_front() {
            order.push(u);
            let mut children: Vec<usize> =
                adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            children.sort_by_key(|&v| adj[v].len());
            for v in children {
                visited[v] = true;
                frontier.push_back(v);
            }
        }
    }
    order.reverse();
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};
    use proptest::prelude::*;

    fn solve_and_check(t: &Triplets, b: &[f64], opts: LuOptions) {
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, opts).expect("factor");
        let x = lu.solve(b);
        let r = sub(&a.matvec(&x), b);
        let scale = norm_inf(b).max(1.0);
        assert!(
            norm_inf(&r) < 1e-9 * scale,
            "residual too large: {}",
            norm_inf(&r)
        );
    }

    fn tridiag(n: usize) -> Triplets {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.5);
            }
        }
        t
    }

    #[test]
    fn solves_tridiagonal_natural() {
        let t = tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        solve_and_check(
            &t,
            &b,
            LuOptions {
                ordering: Ordering::Natural,
                ..Default::default()
            },
        );
    }

    #[test]
    fn solves_tridiagonal_rcm() {
        let t = tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).cos()).collect();
        solve_and_check(&t, &b, LuOptions::default());
    }

    #[test]
    fn handles_permutation_matrix() {
        // Anti-diagonal: needs pivoting away from zero diagonal.
        let n = 5;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, n - 1 - i, (i + 1) as f64);
        }
        let b = vec![1.0; n];
        solve_and_check(&t, &b, LuOptions::default());
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        // column 2 entirely empty
        let a = t.to_csc();
        match SparseLu::factor(&a, LuOptions::default()) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, 2.0);
        assert!(SparseLu::factor(&t.to_csc(), LuOptions::default()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let t = Triplets::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csc(), LuOptions::default()),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn grid_laplacian_2d() {
        // 2-D periodic grid stencil: the structural shape of MPDE Jacobians.
        let (n1, n2) = (8, 6);
        let n = n1 * n2;
        let mut t = Triplets::new(n, n);
        for j in 0..n2 {
            for i in 0..n1 {
                let me = j * n1 + i;
                t.push(me, me, 4.2);
                t.push(me, j * n1 + (i + 1) % n1, -1.0);
                t.push(me, j * n1 + (i + n1 - 1) % n1, -1.0);
                t.push(me, ((j + 1) % n2) * n1 + i, -1.0);
                t.push(me, ((j + n2 - 1) % n2) * n1 + i, -1.0);
            }
        }
        let b: Vec<f64> = (0..n).map(|k| ((k * 37 % 11) as f64) - 5.0).collect();
        solve_and_check(&t, &b, LuOptions::default());
    }

    #[test]
    fn rcm_is_permutation() {
        let a = tridiag(20).to_csc();
        let q = rcm_ordering(&a).expect("rcm");
        let mut seen = [false; 20];
        for &c in &q {
            assert!(!seen[c], "duplicate column in ordering");
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_band() {
        // A banded matrix with shuffled labels: RCM should recover a narrow band.
        let n = 30;
        let shuffle: Vec<usize> = (0..n).map(|i| (i * 17) % n).collect();
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(shuffle[i], shuffle[i], 4.0);
            if i > 0 {
                t.push(shuffle[i], shuffle[i - 1], -1.0);
                t.push(shuffle[i - 1], shuffle[i], -1.0);
            }
        }
        let a = t.to_csc();
        let lu_nat = SparseLu::factor(
            &a,
            LuOptions {
                ordering: Ordering::Natural,
                ..Default::default()
            },
        )
        .expect("factor natural");
        let lu_rcm = SparseLu::factor(&a, LuOptions::default()).expect("factor rcm");
        assert!(
            lu_rcm.nnz() <= lu_nat.nnz(),
            "rcm fill {} > natural fill {}",
            lu_rcm.nnz(),
            lu_nat.nnz()
        );
    }

    #[test]
    fn strict_partial_pivoting_works() {
        let t = tridiag(30);
        let b = vec![1.0; 30];
        solve_and_check(
            &t,
            &b,
            LuOptions {
                pivot_threshold: 1.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let t = tridiag(10);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).expect("factor");
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = lu.solve(&b);
        let mut y = b.clone();
        lu.solve_in_place(&mut y);
        assert_eq!(x, y);
    }

    /// Asserts that a numeric-only refactorisation of `t2` (same pattern as
    /// `t1`) solves as accurately as a from-scratch factorisation.
    fn check_refactor_equivalence(t1: &Triplets, t2: &Triplets, b: &[f64]) {
        let a1 = t1.to_csc();
        let a2 = t2.to_csc();
        let mut lu = SparseLu::factor(&a1, LuOptions::default()).expect("factor a1");
        let fresh = SparseLu::factor(&a2, LuOptions::default()).expect("factor a2");
        lu.refactor_in_place(&a2).expect("refactor");
        let x_re = lu.solve(b);
        let x_fresh = fresh.solve(b);
        let scale = norm_inf(&x_fresh).max(1.0);
        for (xr, xf) in x_re.iter().zip(&x_fresh) {
            assert!(
                (xr - xf).abs() < 1e-12 * scale,
                "refactor vs factor solutions differ: {xr} vs {xf}"
            );
        }
        // And the refactored solve truly solves A2.
        let r = sub(&a2.matvec(&x_re), b);
        assert!(norm_inf(&r) < 1e-9 * norm_inf(b).max(1.0));
        // The symbolic API produces the same numeric factor.
        let sym = SymbolicLu::analyze(&a1, LuOptions::default()).expect("analyze");
        let from_sym = sym.refactor(&a2).expect("symbolic refactor");
        let x_sym = from_sym.solve(b);
        for (xs, xr) in x_sym.iter().zip(&x_re) {
            assert!((xs - xr).abs() < 1e-14 * scale);
        }
    }

    /// Same positions as `t`, values transformed by `f(row, col, v)`.
    fn remap_values(t: &Triplets, f: impl Fn(usize, usize, f64) -> f64) -> Triplets {
        let mut out = Triplets::new(t.rows(), t.cols());
        let csr = t.to_csr();
        for i in 0..t.rows() {
            let (cols, vals) = csr.row(i);
            for (c, v) in cols.iter().zip(vals) {
                out.push(i, *c, f(i, *c, *v));
            }
        }
        out
    }

    #[test]
    fn refactor_matches_factor_tridiagonal() {
        let t1 = tridiag(60);
        let t2 = remap_values(&t1, |i, j, v| v * (1.0 + 0.05 * ((i + 2 * j) as f64).sin()));
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.9).cos()).collect();
        check_refactor_equivalence(&t1, &t2, &b);
    }

    #[test]
    fn refactor_matches_factor_shuffled_band() {
        let n = 40;
        let shuffle: Vec<usize> = (0..n).map(|i| (i * 17) % n).collect();
        let mut t1 = Triplets::new(n, n);
        for i in 0..n {
            t1.push(shuffle[i], shuffle[i], 4.0 + 0.1 * i as f64);
            if i > 0 {
                t1.push(shuffle[i], shuffle[i - 1], -1.0);
                t1.push(shuffle[i - 1], shuffle[i], -1.3);
            }
        }
        let t2 = remap_values(&t1, |i, _, v| v + 0.01 * (i as f64 + 1.0));
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        check_refactor_equivalence(&t1, &t2, &b);
    }

    /// MNA-style system with structurally zero diagonals (voltage-source
    /// branch rows): refactor must reproduce the off-diagonal pivoting.
    fn mna_zero_diag(g: f64, scale: f64) -> Triplets {
        // Nodes 0,1 with conductances, branch current unknown 2 enforcing
        // v0 = V via a source row with zero diagonal.
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, g);
        t.push(0, 1, -g);
        t.push(1, 0, -g);
        t.push(1, 1, g + 0.5 * scale);
        t.push(0, 2, 1.0); // branch current into node 0
        t.push(2, 0, 1.0); // v0 = V row, zero diagonal
        t
    }

    #[test]
    fn refactor_matches_factor_mna_zero_diagonal() {
        let t1 = mna_zero_diag(1e-3, 1.0);
        let t2 = mna_zero_diag(2.7e-3, 3.0);
        let b = vec![0.0, 1e-3, 5.0];
        check_refactor_equivalence(&t1, &t2, &b);
    }

    #[test]
    fn refactor_matches_factor_grid_value_change() {
        // Same-pattern, value-changed 2-D periodic grid (the MPDE shape).
        let (n1, n2) = (8, 6);
        let n = n1 * n2;
        let mut t1 = Triplets::new(n, n);
        for j in 0..n2 {
            for i in 0..n1 {
                let me = j * n1 + i;
                t1.push(me, me, 4.2);
                t1.push(me, j * n1 + (i + 1) % n1, -1.0);
                t1.push(me, j * n1 + (i + n1 - 1) % n1, -1.0);
                t1.push(me, ((j + 1) % n2) * n1 + i, -1.0);
                t1.push(me, ((j + n2 - 1) % n2) * n1 + i, -1.0);
            }
        }
        let t2 = remap_values(&t1, |i, j, v| {
            if i == j {
                v + 1.0 + (i as f64 * 0.1).sin()
            } else {
                v * 0.8
            }
        });
        let b: Vec<f64> = (0..n).map(|k| ((k * 37 % 11) as f64) - 5.0).collect();
        check_refactor_equivalence(&t1, &t2, &b);
    }

    #[test]
    fn refactor_repeated_reuse_stays_exact() {
        // Many refactor cycles on one factor object: no state leaks between
        // calls (the scratch accumulator must come back zeroed).
        let t = tridiag(30);
        let a0 = t.to_csc();
        let mut lu = SparseLu::factor(&a0, LuOptions::default()).expect("factor");
        let b: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        for step in 1..6 {
            let tk = remap_values(&t, |i, _, v| {
                v * (1.0 + 0.1 * step as f64 + 0.01 * i as f64)
            });
            let ak = tk.to_csc();
            lu.refactor_in_place(&ak).expect("refactor");
            let x = lu.solve(&b);
            let r = sub(&ak.matvec(&x), &b);
            assert!(
                norm_inf(&r) < 1e-9,
                "step {step}: residual {}",
                norm_inf(&r)
            );
        }
    }

    #[test]
    fn refactor_rejects_different_pattern() {
        let t1 = tridiag(10);
        let mut lu = SparseLu::factor(&t1.to_csc(), LuOptions::default()).expect("factor");
        let mut t2 = tridiag(10);
        t2.push(0, 9, 0.5); // extra entry: different pattern
        assert!(matches!(
            lu.refactor_in_place(&t2.to_csc()),
            Err(NumericsError::InvalidArgument { .. })
        ));
        // The factor is untouched and still solves the original system.
        let b = vec![1.0; 10];
        let x = lu.solve(&b);
        let r = sub(&t1.to_csc().matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-9);
    }

    #[test]
    fn refactor_reports_vanished_pivot() {
        // Same pattern, but the new values make the matrix singular under
        // the recorded pivot order: refactor must error cleanly (and the
        // object must survive for a subsequent full factor).
        let mut t1 = Triplets::new(2, 2);
        t1.push(0, 0, 1.0);
        t1.push(0, 1, 2.0);
        t1.push(1, 0, 3.0);
        t1.push(1, 1, 4.0);
        let mut lu = SparseLu::factor(&t1.to_csc(), LuOptions::default()).expect("factor");
        // Rank-1 values on the same pattern.
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 1.0);
        t2.push(0, 1, 2.0);
        t2.push(1, 0, 2.0);
        t2.push(1, 1, 4.0);
        match lu.refactor_in_place(&t2.to_csc()) {
            Err(NumericsError::SingularMatrix { pivot, .. }) => {
                assert!(pivot.abs() < 1e-12, "vanished pivot reported: {pivot}");
            }
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
        // Recovery path: refactor with good values works again.
        lu.refactor_in_place(&t1.to_csc()).expect("refactor back");
        let x = lu.solve(&[5.0, 11.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn symbolic_structures_are_send_and_sync() {
        // The sweep engine moves workspaces (and with them factors and
        // shared symbolic structures) across worker threads; this must
        // stay true by construction.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SymbolicLu>();
        assert_send_sync::<Arc<SymbolicLu>>();
        assert_send_sync::<SparseLu>();
    }

    #[test]
    fn symbolic_fingerprint_matches_matrix_fingerprint() {
        let a = tridiag(25).to_csc();
        let sym = SymbolicLu::analyze(&a, LuOptions::default()).expect("analyze");
        assert_eq!(sym.pattern_fingerprint(), a.pattern_fingerprint());
        let other = tridiag(26).to_csc();
        assert_ne!(sym.pattern_fingerprint(), other.pattern_fingerprint());
    }

    #[test]
    fn symbolic_analyze_reports_structure() {
        let t = tridiag(20);
        let a = t.to_csc();
        let sym = SymbolicLu::analyze(&a, LuOptions::default()).expect("analyze");
        assert_eq!(sym.dim(), 20);
        assert!(sym.matches(&a));
        assert!(sym.nnz() >= a.nnz());
        let other = tridiag(21).to_csc();
        assert!(!sym.matches(&other));
    }

    /// Random diagonally dominant matrix with a dense first column (so a
    /// vanished leading pivot always leaves an alternative pivot row) and a
    /// deterministic value stream for refreshes.
    fn random_dominant_full_col0(seed: u64, n: usize) -> (Triplets, impl FnMut() -> f64) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(13);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            let mut offdiag = 0.0;
            if i > 0 {
                let v = next() - 0.5;
                t.push(i, 0, v);
                offdiag += v.abs();
            }
            for _ in 0..3 {
                let j = 1 + (next() * (n - 1) as f64) as usize % (n - 1);
                if j != i {
                    let v = next() * 2.0 - 1.0;
                    t.push(i, j, v);
                    offdiag += v.abs();
                }
            }
            t.push(i, i, offdiag + 1.0 + next());
        }
        (t, next)
    }

    /// `x_re` must match `x_fresh` to 1e-12 relative to the solution scale.
    fn assert_solutions_match_1e12(x_re: &[f64], x_fresh: &[f64]) {
        let scale = norm_inf(x_fresh).max(1.0);
        for (r, f) in x_re.iter().zip(x_fresh) {
            assert!(
                (r - f).abs() < 1e-12 * scale,
                "refactor vs fresh factor differ beyond 1e-12: {r} vs {f}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_refactor_tracks_fresh_factor_across_refreshes(seed in 0u64..10_000) {
            // Satellite property: over a fixed pattern, every random value
            // refresh refactored in place must solve within 1e-12 of a
            // from-scratch factorisation of the same values — and a refresh
            // that vanishes the recorded pivot must take the documented
            // error + full-refactor fallback path and then keep working.
            let n = 18;
            let (t1, mut next) = random_dominant_full_col0(seed, n);
            // Natural ordering pins factor column 0 to original column 0,
            // whose recorded pivot is the dominant diagonal — so zeroing
            // (0,0) later vanishes that pivot deterministically.
            let opts = LuOptions {
                ordering: Ordering::Natural,
                ..Default::default()
            };
            let mut lu = SparseLu::factor(&t1.to_csc(), opts).expect("factor");
            let b: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            for _refresh in 0..4 {
                let shift = next() + 0.5;
                let gain = 0.5 + next();
                let tk = remap_values(&t1, |i, j, v| {
                    if i == j { v * gain + shift } else { v * gain }
                });
                let ak = tk.to_csc();
                lu.refactor_in_place(&ak).expect("refactor");
                let fresh = SparseLu::factor(&ak, opts).expect("fresh factor");
                assert_solutions_match_1e12(&lu.solve(&b), &fresh.solve(&b));
            }
            // Vanishing-pivot refresh: kill the recorded column-0 pivot.
            // Restricted pivoting may repair it in-pattern (the first
            // column is dense, so an exchange row can be admissible); when
            // it cannot, the documented error + full-refactor fallback
            // path must fire. Either way the factor must keep matching a
            // from-scratch factorisation.
            let tv = remap_values(&t1, |i, j, v| if i == 0 && j == 0 { 0.0 } else { v });
            let av = tv.to_csc();
            match lu.refactor_in_place(&av) {
                Ok(report) => {
                    prop_assert!(report.pivot_exchanges >= 1);
                    let fresh = SparseLu::factor(&av, opts).expect("fresh factor");
                    assert_solutions_match_1e12(&lu.solve(&b), &fresh.solve(&b));
                }
                Err(NumericsError::SingularMatrix { index, pivot }) => {
                    prop_assert_eq!(index, 0);
                    prop_assert!(pivot.abs() < 1e-300);
                }
                other => panic!("expected repair or vanished pivot, got {other:?}"),
            }
            // The fallback a caller performs: full factorisation, free to
            // repivot away from the vanished diagonal.
            lu = SparseLu::factor(&av, opts).expect("fallback full factor");
            let x = lu.solve(&b);
            let r = sub(&av.matvec(&x), &b);
            prop_assert!(norm_inf(&r) < 1e-9 * norm_inf(&b).max(1.0));
            // And the recovered factor keeps tracking fresh factorisations
            // on its (new) recorded pattern through further refreshes.
            let tb = remap_values(&tv, |i, j, v| {
                if i == j { v * 1.25 + 0.25 } else { v * 0.75 }
            });
            let ab = tb.to_csc();
            lu.refactor_in_place(&ab).expect("refactor after fallback");
            let fresh = SparseLu::factor(&ab, opts).expect("fresh factor");
            assert_solutions_match_1e12(&lu.solve(&b), &fresh.solve(&b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_refactor_matches_factor(seed in 0u64..200) {
            let n = 20;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut t1 = Triplets::new(n, n);
            for i in 0..n {
                let mut offdiag = 0.0;
                for _ in 0..3 {
                    let j = (next() * n as f64) as usize % n;
                    if j != i {
                        let v = next() * 2.0 - 1.0;
                        t1.push(i, j, v);
                        offdiag += v.abs();
                    }
                }
                t1.push(i, i, offdiag + 1.0 + next());
            }
            let t2 = remap_values(&t1, |i, j, v| {
                if i == j { v + 0.5 } else { v * 0.9 }
            });
            let b: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            let a2 = t2.to_csc();
            let mut lu = SparseLu::factor(&t1.to_csc(), LuOptions::default()).expect("factor");
            lu.refactor_in_place(&a2).expect("refactor");
            let x = lu.solve(&b);
            let r = sub(&a2.matvec(&x), &b);
            prop_assert!(norm_inf(&r) < 1e-9);
        }

        #[test]
        fn prop_random_dominant_systems(seed in 0u64..500) {
            let n = 25;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                let mut offdiag_sum = 0.0;
                for _ in 0..4 {
                    let j = (next() * n as f64) as usize % n;
                    if j != i {
                        let v = next() * 2.0 - 1.0;
                        t.push(i, j, v);
                        offdiag_sum += v.abs();
                    }
                }
                t.push(i, i, offdiag_sum + 1.0 + next());
            }
            let b: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            let a = t.to_csc();
            let lu = SparseLu::factor(&a, LuOptions::default()).expect("factor");
            let x = lu.solve(&b);
            let r = sub(&a.matvec(&x), &b);
            prop_assert!(norm_inf(&r) < 1e-9);
        }

        #[test]
        fn prop_matches_dense_solver(seed in 0u64..200) {
            let n = 8;
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                for j in 0..n {
                    if next() > 0.2 {
                        t.push(i, j, next());
                    }
                }
                t.push(i, i, 5.0);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let a = t.to_csc();
            let sparse_x = SparseLu::factor(&a, LuOptions::default()).expect("factor").solve(&b);
            let dense_x = a.to_dense().solve(&b).expect("dense solve");
            for i in 0..n {
                prop_assert!((sparse_x[i] - dense_x[i]).abs() < 1e-8);
            }
        }
    }
}

#[cfg(test)]
mod mna_pivot_regression {
    use super::*;
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};

    /// The balanced-mixer DC Jacobian that exposed a pivoting bug: with
    /// threshold diagonal preference, the preferred row must be part of the
    /// column's reach — the dense workspace holds stale values outside it,
    /// and a stale-valued pivot silently factors the wrong matrix.
    fn mixer_dc_jacobian() -> Triplets {
        let entries: &[(usize, usize, f64)] = &[
            (0, 0, 2.0e-3),
            (1, 0, -1.0e-3),
            (2, 0, -1.0e-3),
            (9, 0, 1.0),
            (0, 1, -1.0e-3),
            (1, 1, 1.0424e-3),
            (3, 1, -4.239969e-5),
            (0, 2, -1.0e-3),
            (2, 2, 1.021714e-3),
            (3, 2, -2.171433e-5),
            (1, 3, -5.108931e-3),
            (2, 3, -3.720911e-3),
            (3, 3, 8.894128e-3),
            (3, 4, 5.425287e-3),
            (10, 4, 1.0),
            (3, 5, 5.425287e-3),
            (11, 5, 1.0),
            (1, 6, 5.066531e-3),
            (3, 6, -5.066531e-3),
            (13, 6, 1.0),
            (2, 7, 3.699197e-3),
            (3, 7, -3.699197e-3),
            (14, 7, 1.0),
            (12, 8, 1.0),
            (13, 8, -1.0),
            (14, 8, -1.0),
            (0, 9, 1.0),
            (4, 10, 1.0),
            (5, 11, 1.0),
            (8, 12, 1.0),
            (6, 13, 1.0),
            (8, 13, -1.0),
            (7, 14, 1.0),
            (8, 14, -1.0),
        ];
        let mut t = Triplets::new(15, 15);
        for &(r, c, v) in entries {
            t.push(r, c, v);
        }
        t
    }

    #[test]
    fn factor_is_exact_on_mna_with_unreachable_diagonal() {
        let a = mixer_dc_jacobian().to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).expect("factor");
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = lu.solve(&b);
        let r = sub(&a.matvec(&x), &b);
        assert!(
            norm_inf(&r) < 1e-12,
            "factorisation must reproduce A exactly, residual {}",
            norm_inf(&r)
        );
    }

    #[test]
    fn refactor_is_exact_on_mna_with_unreachable_diagonal() {
        let a = mixer_dc_jacobian().to_csc();
        let mut lu = SparseLu::factor(&a, LuOptions::default()).expect("factor");
        lu.refactor_in_place(&a)
            .expect("refactor of identical values");
        let b: Vec<f64> = (0..15).map(|i| (i as f64 * 0.7).cos()).collect();
        let x = lu.solve(&b);
        let r = sub(&a.matvec(&x), &b);
        assert!(norm_inf(&r) < 1e-12, "residual {}", norm_inf(&r));
    }
}

#[cfg(test)]
mod restricted_pivoting {
    use super::*;
    use crate::pool::WorkerPool;
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};
    use proptest::prelude::*;

    fn natural_opts() -> LuOptions {
        LuOptions {
            ordering: Ordering::Natural,
            ..Default::default()
        }
    }

    /// Deterministic xorshift stream in `[0, 1)`.
    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0x2545F4914F6CDD1D);
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Block-diagonal matrix of dense, diagonally dominant `bs × bs`
    /// blocks. Dense blocks make every in-block row exchange structurally
    /// admissible — the worst case an MNA Jacobian's local device blocks
    /// approximate — so restricted pivoting can always repair an in-block
    /// pivot kill without a full re-factorisation.
    fn dense_blocks(seed: u64, nblocks: usize, bs: usize) -> Triplets {
        let mut next = rng(seed);
        let n = nblocks * bs;
        let mut t = Triplets::new(n, n);
        for blk in 0..nblocks {
            let base = blk * bs;
            for i in 0..bs {
                let mut offdiag = 0.0;
                for j in 0..bs {
                    if i != j {
                        let v = next() * 2.0 - 1.0;
                        t.push(base + i, base + j, v);
                        offdiag += v.abs();
                    }
                }
                t.push(base + i, base + i, offdiag + 1.0 + next());
            }
        }
        t
    }

    /// Same positions as `t`, values transformed by `f(row, col, v)`.
    fn remap(t: &Triplets, f: impl Fn(usize, usize, f64) -> f64) -> Triplets {
        let mut out = Triplets::new(t.rows(), t.cols());
        let csr = t.to_csr();
        for i in 0..t.rows() {
            let (cols, vals) = csr.row(i);
            for (c, v) in cols.iter().zip(vals) {
                out.push(i, *c, f(i, *c, *v));
            }
        }
        out
    }

    fn assert_match_1e12(x_re: &[f64], x_fresh: &[f64]) {
        let scale = norm_inf(x_fresh).max(1.0);
        for (r, f) in x_re.iter().zip(x_fresh) {
            assert!(
                (r - f).abs() < 1e-12 * scale,
                "restricted-pivot refactor vs fresh factor differ beyond 1e-12: {r} vs {f}"
            );
        }
    }

    #[test]
    fn exchange_repairs_killed_pivot_in_dense_block() {
        let t1 = dense_blocks(7, 3, 4);
        let a1 = t1.to_csc();
        let mut lu = SparseLu::factor(&a1, natural_opts()).expect("factor");
        assert_eq!(lu.permutation_delta_len(), 0);
        // Kill the recorded pivot *entry* of factor column 0: tiny
        // relative to its column, far above pivot_abs_min — exactly the
        // case the old absolute detection missed and the old fallback
        // answered with a full re-factorisation. (Only the entry dies; the
        // matrix itself stays well-conditioned, so refactor and fresh
        // factor must agree to 1e-12.)
        let victim = lu.current_row_permutation()[0];
        let t2 = remap(
            &t1,
            |i, j, v| {
                if i == victim && j == 0 {
                    v * 1e-13
                } else {
                    v
                }
            },
        );
        let a2 = t2.to_csc();
        let report = lu.refactor_in_place(&a2).expect("in-pattern repair");
        assert!(report.pivot_exchanges >= 1, "expected a pivot exchange");
        assert!(lu.permutation_delta_len() >= 2);
        let b: Vec<f64> = (0..12).map(|i| (i as f64 * 0.37).sin()).collect();
        let fresh = SparseLu::factor(&a2, natural_opts()).expect("fresh");
        assert_match_1e12(&lu.solve(&b), &fresh.solve(&b));
        // The exchanged permutation persists: refreshing with the same
        // values again needs no further exchange.
        let again = lu.refactor_in_place(&a2).expect("steady refresh");
        assert_eq!(again.pivot_exchanges, 0);
        assert_match_1e12(&lu.solve(&b), &fresh.solve(&b));
    }

    #[test]
    fn badly_scaled_rows_do_not_trip_detection() {
        // mA-scale stamps against kΩ-scale stamps: pivots live at wildly
        // different absolute magnitudes, but each is healthy *relative to
        // its own column*, so no exchange and no full-refactor fallback.
        let t1 = dense_blocks(3, 2, 3);
        let scale = |i: usize| if i < 3 { 1e-6 } else { 1e3 };
        let t1 = remap(&t1, |i, _, v| v * scale(i));
        let mut lu = SparseLu::factor(&t1.to_csc(), natural_opts()).expect("factor");
        let t2 = remap(&t1, |i, j, v| v * (1.0 + 0.05 * ((i + 2 * j) as f64).sin()));
        let report = lu.refactor_in_place(&t2.to_csc()).expect("refresh");
        assert_eq!(
            report.pivot_exchanges, 0,
            "healthy pivots must not exchange"
        );
        let b = vec![1.0; 6];
        let fresh = SparseLu::factor(&t2.to_csc(), natural_opts()).expect("fresh");
        assert_match_1e12(&lu.solve(&b), &fresh.solve(&b));
    }

    #[test]
    fn inadmissible_exchange_still_reports_singular() {
        // A tridiagonal matrix's rows have distinct trailing patterns, so
        // no in-pattern exchange is admissible at an interior kill: the
        // documented SingularMatrix + full-refactor contract must survive.
        let n = 8;
        let mut t1 = Triplets::new(n, n);
        for i in 0..n {
            t1.push(i, i, 4.0);
            if i > 0 {
                t1.push(i, i - 1, -1.0);
                t1.push(i - 1, i, -1.0);
            }
        }
        let mut lu = SparseLu::factor(&t1.to_csc(), natural_opts()).expect("factor");
        let t2 = remap(&t1, |i, j, v| if i == 0 && j == 0 { 1e-9 } else { v });
        match lu.refactor_in_place(&t2.to_csc()) {
            Err(NumericsError::SingularMatrix { index, .. }) => assert_eq!(index, 0),
            other => panic!("expected inadmissible exchange to stay singular, got {other:?}"),
        }
        // Recovery contract unchanged: a full factor takes over.
        let lu = SparseLu::factor(&t2.to_csc(), natural_opts()).expect("fallback");
        let b = vec![1.0; n];
        let r = sub(&t2.to_csc().matvec(&lu.solve(&b)), &b);
        assert!(norm_inf(&r) < 1e-9);
    }

    #[test]
    fn parallel_refactor_is_bit_identical_to_sequential() {
        // 2-D periodic grid (the MPDE Jacobian shape) refreshed with new
        // values: the column pipeline must reproduce the sequential sweep
        // bit for bit (same per-column arithmetic, only scheduled across
        // workers).
        let (n1, n2) = (8, 6);
        let n = n1 * n2;
        let mut t1 = Triplets::new(n, n);
        for j in 0..n2 {
            for i in 0..n1 {
                let me = j * n1 + i;
                t1.push(me, me, 4.2);
                t1.push(me, j * n1 + (i + 1) % n1, -1.0);
                t1.push(me, j * n1 + (i + n1 - 1) % n1, -1.0);
                t1.push(me, ((j + 1) % n2) * n1 + i, -1.0);
                t1.push(me, ((j + n2 - 1) % n2) * n1 + i, -1.0);
            }
        }
        let a1 = t1.to_csc();
        let mut seq = SparseLu::factor(&a1, LuOptions::default()).expect("factor");
        let mut par = seq.clone();
        let pool = WorkerPool::new(3);
        let b: Vec<f64> = (0..n).map(|k| ((k * 29 % 13) as f64) - 6.0).collect();
        for step in 1..4 {
            let tk = remap(&t1, |i, j, v| {
                v * (1.0 + 0.07 * step as f64 * ((i + 3 * j) as f64).cos())
            });
            let ak = tk.to_csc();
            seq.refactor_in_place(&ak).expect("sequential");
            let report = par
                .refactor_in_place_parallel(&ak, &pool)
                .expect("parallel");
            assert!(report.parallel, "width-3 pool must take the pipeline");
            assert_eq!(seq.solve(&b), par.solve(&b), "step {step}");
        }
    }

    #[test]
    fn parallel_refactor_falls_back_to_sequential_exchange() {
        let t1 = dense_blocks(11, 2, 4);
        let a1 = t1.to_csc();
        let mut lu = SparseLu::factor(&a1, natural_opts()).expect("factor");
        let victim = lu.current_row_permutation()[0];
        let t2 = remap(
            &t1,
            |i, j, v| {
                if i == victim && j == 0 {
                    v * 1e-13
                } else {
                    v
                }
            },
        );
        let a2 = t2.to_csc();
        let pool = WorkerPool::new(2);
        let report = lu
            .refactor_in_place_parallel(&a2, &pool)
            .expect("pipeline abort must retry sequentially and exchange");
        assert!(!report.parallel, "exchange requires the sequential path");
        assert!(report.pivot_exchanges >= 1);
        let b = vec![1.0; 8];
        let fresh = SparseLu::factor(&a2, natural_opts()).expect("fresh");
        assert_match_1e12(&lu.solve(&b), &fresh.solve(&b));
        // Once the permutation delta holds the exchange, the pipeline
        // carries further refreshes of the drifted values.
        let report = lu.refactor_in_place_parallel(&a2, &pool).expect("steady");
        assert!(report.parallel);
        assert_match_1e12(&lu.solve(&b), &fresh.solve(&b));
    }

    #[test]
    fn parallel_refactor_reports_truly_singular() {
        let mut t1 = Triplets::new(2, 2);
        t1.push(0, 0, 1.0);
        t1.push(0, 1, 2.0);
        t1.push(1, 0, 3.0);
        t1.push(1, 1, 4.0);
        let mut lu = SparseLu::factor(&t1.to_csc(), LuOptions::default()).expect("factor");
        let mut t2 = Triplets::new(2, 2);
        t2.push(0, 0, 1.0);
        t2.push(0, 1, 2.0);
        t2.push(1, 0, 2.0);
        t2.push(1, 1, 4.0);
        let pool = WorkerPool::new(2);
        assert!(matches!(
            lu.refactor_in_place_parallel(&t2.to_csc(), &pool),
            Err(NumericsError::SingularMatrix { .. })
        ));
        // And the factor recovers, as on the sequential path.
        lu.refactor_in_place(&t1.to_csc()).expect("recover");
        let x = lu.solve(&[5.0, 11.0]);
        assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exchange_at_interior_column_swaps_earlier_multipliers() {
        // Regression: an exchange at column k > 0 must also swap the L
        // multipliers rows k and r already received from columns < k in
        // the same pass (exactly what dense partial pivoting does to the
        // trailing working array). The original implementation skipped
        // that and returned Ok with a silently wrong factorization.
        //
        // Dense diagonally dominant 5x5 with natural ordering (identity
        // pivot order), refreshed with values that drive the column-2
        // Schur-complement pivot to exactly zero while the matrix stays
        // well-conditioned.
        let n = 5;
        let mut base = [[0.0f64; 5]; 5];
        let mut next = rng(3);
        for (i, row) in base.iter_mut().enumerate() {
            let mut offdiag = 0.0;
            for (j, v) in row.iter_mut().enumerate() {
                if i != j {
                    *v = next() * 2.0 - 1.0;
                    offdiag += v.abs();
                }
            }
            row[i] = offdiag + 1.0 + next();
        }
        // No-pivot Doolittle elimination to find u22: subtracting it from
        // base[2][2] zeroes the recorded pivot of factor column 2 (the
        // leading 2x2 elimination does not read entry (2,2)).
        let mut lu_dense = base;
        for k in 0..n {
            for i in (k + 1)..n {
                let m = lu_dense[i][k] / lu_dense[k][k];
                lu_dense[i][k] = m;
                for j in (k + 1)..n {
                    lu_dense[i][j] -= m * lu_dense[k][j];
                }
            }
        }
        let u22 = lu_dense[2][2];
        let from_dense = |vals: &[[f64; 5]; 5]| {
            let mut t = Triplets::new(n, n);
            for (i, row) in vals.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    t.push(i, j, v);
                }
            }
            t
        };
        let mut lu = SparseLu::factor(&from_dense(&base).to_csc(), natural_opts()).expect("factor");
        assert_eq!(
            lu.current_row_permutation(),
            &[0, 1, 2, 3, 4],
            "dominant diagonal must record the identity pivot order"
        );
        let mut stressed = base;
        stressed[2][2] -= u22;
        let a2 = from_dense(&stressed).to_csc();
        let report = lu.refactor_in_place(&a2).expect("interior repair");
        assert!(report.pivot_exchanges >= 1);
        let b = [1.0, -2.0, 3.0, -4.0, 5.0];
        let x = lu.solve(&b);
        let r = sub(&a2.matvec(&x), &b);
        assert!(
            norm_inf(&r) < 1e-9,
            "interior exchange produced a wrong factorization: residual {}",
            norm_inf(&r)
        );
        let fresh = SparseLu::factor(&a2, natural_opts()).expect("fresh");
        assert_match_1e12(&x, &fresh.solve(&b));
    }

    #[test]
    fn exchange_rejects_rows_with_different_leading_patterns() {
        // Rows whose appearance lists agree beyond k but differ below it
        // cannot be exchanged: the swapped row would scatter into columns
        // where it has no recorded slot on the next refactorisation, and
        // its earlier-column multipliers would have nowhere to go.
        // Pattern: row 2 appears in column 0, row 1 does not; both appear
        // in columns 1 and 2.
        let build = |d11: f64| {
            let mut t = Triplets::new(4, 4);
            t.push(0, 0, 2.0);
            t.push(2, 0, 1.0);
            t.push(1, 1, d11);
            t.push(2, 1, 1.0);
            t.push(1, 2, 1.0);
            t.push(2, 2, 3.0);
            t.push(3, 3, 1.0);
            t
        };
        let mut lu = SparseLu::factor(&build(1.0).to_csc(), natural_opts()).expect("factor");
        match lu.refactor_in_place(&build(1e-14).to_csc()) {
            Err(NumericsError::SingularMatrix { index, .. }) => assert_eq!(index, 1),
            other => panic!("leading-pattern mismatch must refuse the exchange, got {other:?}"),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_pivot_stress_stays_in_pattern(seed in 0u64..10_000) {
            // Satellite property: random value refreshes that deliberately
            // drive the recorded pivot of a block through (near) zero must
            // be repaired in-pattern — no full re-factorisation — while
            // matching a fresh factorisation of the same values to 1e-12.
            let nblocks = 3;
            let bs = 4;
            let n = nblocks * bs;
            let t1 = dense_blocks(seed, nblocks, bs);
            let mut next = rng(seed ^ 0xABCD);
            let mut lu = SparseLu::factor(&t1.to_csc(), natural_opts()).expect("factor");
            let b: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            let mut exchanges = 0usize;
            for refresh in 0..5 {
                // Kill the *current* pivot entry of one block's first
                // column (a different original row after each exchange,
                // since the permutation delta persists), jitter everything
                // else. Only the entry dies — the matrix stays
                // well-conditioned, so 1e-12 agreement is meaningful.
                let victim_col = (refresh % nblocks) * bs;
                let victim = lu.current_row_permutation()[victim_col];
                let gain = 0.75 + 0.5 * next();
                let tk = remap(&t1, |i, j, v| {
                    if i == victim && j == victim_col {
                        v * 1e-13
                    } else {
                        v * gain
                    }
                });
                let ak = tk.to_csc();
                let report = lu
                    .refactor_in_place(&ak)
                    .expect("pivot stress must stay in-pattern");
                prop_assert!(report.pivot_exchanges >= 1, "refresh {refresh} exchanged nothing");
                exchanges += report.pivot_exchanges;
                let fresh = SparseLu::factor(&ak, natural_opts()).expect("fresh");
                let x_re = lu.solve(&b);
                let x_fresh = fresh.solve(&b);
                let scale = norm_inf(&x_fresh).max(1.0);
                for (r, f) in x_re.iter().zip(&x_fresh) {
                    prop_assert!((r - f).abs() < 1e-12 * scale,
                        "refresh {refresh}: {r} vs {f}");
                }
                let r = sub(&ak.matvec(&x_re), &b);
                prop_assert!(norm_inf(&r) < 1e-9 * norm_inf(&b).max(1.0));
            }
            prop_assert!(exchanges >= 5);
        }
    }
}
