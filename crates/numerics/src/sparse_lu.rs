//! Left-looking sparse LU factorisation (Gilbert–Peierls) with threshold
//! partial pivoting and a reverse Cuthill–McKee fill-reducing ordering.
//!
//! This is the direct solver behind both the circuit Newton iterations and
//! the large MPDE grid Jacobians (`n·N1·N2` unknowns). The algorithm follows
//! the classic CSparse `cs_lu` structure: for each column, a depth-first
//! reach over the partially built `L` determines the pattern of the sparse
//! triangular solve, after which a pivot row is chosen among the not yet
//! pivoted rows.

use crate::sparse::CscMatrix;
use crate::{NumericsError, Result};

const NONE: usize = usize::MAX;

/// Column ordering strategy applied before factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Ordering {
    /// Use columns in their natural order.
    Natural,
    /// Reverse Cuthill–McKee on the symmetrised pattern: reduces bandwidth,
    /// and therefore fill, for grid-structured Jacobians.
    #[default]
    Rcm,
}

/// Options controlling [`SparseLu::factor`].
#[derive(Debug, Clone, Copy)]
pub struct LuOptions {
    /// Column ordering strategy.
    pub ordering: Ordering,
    /// Diagonal preference threshold in `[0, 1]`: the diagonal entry is
    /// accepted as pivot if its magnitude is at least `pivot_threshold`
    /// times the column maximum. `1.0` forces strict partial pivoting.
    pub pivot_threshold: f64,
    /// Pivots smaller than this magnitude are treated as singular.
    pub pivot_abs_min: f64,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: Ordering::Rcm,
            pivot_threshold: 0.1,
            pivot_abs_min: 1e-300,
        }
    }
}

/// Sparse LU factors `P·A·Q = L·U` with unit lower-triangular `L`.
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    // L: strictly lower entries, CSC, row indices in factor (pivot) space.
    lp: Vec<usize>,
    li: Vec<usize>,
    lx: Vec<f64>,
    // U: strictly upper entries, CSC, row indices in factor space.
    up: Vec<usize>,
    ui: Vec<usize>,
    ux: Vec<f64>,
    udiag: Vec<f64>,
    /// `p[k]` = original row sitting in factor row `k`.
    p: Vec<usize>,
    /// `q[k]` = original column sitting in factor column `k`.
    q: Vec<usize>,
}

impl SparseLu {
    /// Factors a square sparse matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] for non-square input.
    /// * [`NumericsError::SingularMatrix`] if no acceptable pivot exists in
    ///   some column.
    pub fn factor(a: &CscMatrix, options: LuOptions) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(NumericsError::DimensionMismatch {
                context: format!("SparseLu: matrix is {}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let q = match options.ordering {
            Ordering::Natural => (0..n).collect::<Vec<_>>(),
            Ordering::Rcm => rcm_ordering(a)?,
        };

        let mut pinv = vec![NONE; n];
        let nnz_guess = 4 * a.nnz() + n;
        let mut lp = Vec::with_capacity(n + 1);
        let mut li: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut lx: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut up = Vec::with_capacity(n + 1);
        let mut ui: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut ux: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut udiag = vec![0.0; n];
        lp.push(0);
        up.push(0);

        // Dense workspace and DFS state, reused across columns.
        let mut x = vec![0.0f64; n];
        let mut mark = vec![0u32; n];
        let mut generation = 0u32;
        let mut node_stack: Vec<usize> = Vec::with_capacity(n);
        let mut edge_stack: Vec<usize> = Vec::with_capacity(n);
        let mut post: Vec<usize> = Vec::with_capacity(n);

        for k in 0..n {
            generation += 1;
            post.clear();

            // --- Symbolic: reach of A[:, q[k]] through the graph of L. ---
            let (brows, bvals) = a.col(q[k]);
            for &i in brows {
                if mark[i] != generation {
                    dfs_reach(
                        i,
                        &lp,
                        &li,
                        &pinv,
                        &mut mark,
                        generation,
                        &mut node_stack,
                        &mut edge_stack,
                        &mut post,
                    );
                }
            }

            // --- Numeric: sparse triangular solve x = L \ A[:, q[k]]. ---
            for &i in &post {
                x[i] = 0.0;
            }
            for (&i, &v) in brows.iter().zip(bvals) {
                x[i] = v;
            }
            // `post` is in DFS postorder; topological order is its reverse.
            for &i in post.iter().rev() {
                let col = pinv[i];
                if col == NONE {
                    continue; // not yet pivoted: belongs to L-part, no elimination
                }
                let xi = x[i];
                if xi == 0.0 {
                    continue;
                }
                for idx in lp[col]..lp[col + 1] {
                    x[li[idx]] -= lx[idx] * xi;
                }
            }

            // --- Pivot selection among unpivoted rows. ---
            let mut max_val = 0.0f64;
            let mut max_row = NONE;
            for &i in &post {
                if pinv[i] == NONE {
                    let v = x[i].abs();
                    if v > max_val {
                        max_val = v;
                        max_row = i;
                    }
                }
            }
            if max_row == NONE || max_val <= options.pivot_abs_min {
                return Err(NumericsError::SingularMatrix {
                    index: k,
                    pivot: max_val,
                });
            }
            // Prefer the "diagonal" row (original row q[k]) when acceptable:
            // keeps near-symmetric patterns banded under RCM.
            let diag_row = q[k];
            let mut piv_row = max_row;
            if pinv[diag_row] == NONE
                && x[diag_row].abs() >= options.pivot_threshold * max_val
                && x[diag_row].abs() > options.pivot_abs_min
            {
                piv_row = diag_row;
            }
            let piv_val = x[piv_row];
            pinv[piv_row] = k;
            udiag[k] = piv_val;

            // --- Scatter into U (pivoted rows) and L (unpivoted rows). ---
            for &i in &post {
                let xi = x[i];
                if i == piv_row || xi == 0.0 {
                    continue;
                }
                let row = pinv[i];
                if row != NONE {
                    ui.push(row); // factor-space row, final
                    ux.push(xi);
                } else {
                    li.push(i); // original-space row, remapped after the loop
                    lx.push(xi / piv_val);
                }
            }
            lp.push(li.len());
            up.push(ui.len());
        }

        // Remap L row indices from original space to factor space.
        for idx in li.iter_mut() {
            *idx = pinv[*idx];
        }
        // Build p from pinv.
        let mut p = vec![0usize; n];
        for (orig, &fact) in pinv.iter().enumerate() {
            p[fact] = orig;
        }
        Ok(SparseLu {
            n,
            lp,
            li,
            lx,
            up,
            ui,
            ux,
            udiag,
            p,
            q,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Total stored entries in `L` and `U` (fill diagnostic).
    pub fn nnz(&self) -> usize {
        self.li.len() + self.ui.len() + self.n
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n, "SparseLu::solve: dimension mismatch");
        let n = self.n;
        // x = P·b
        let mut x: Vec<f64> = self.p.iter().map(|&pi| b[pi]).collect();
        // Forward: L·y = x (unit diagonal; column-oriented scatter).
        for k in 0..n {
            let xk = x[k];
            if xk != 0.0 {
                for idx in self.lp[k]..self.lp[k + 1] {
                    x[self.li[idx]] -= self.lx[idx] * xk;
                }
            }
        }
        // Backward: U·z = y.
        for k in (0..n).rev() {
            x[k] /= self.udiag[k];
            let xk = x[k];
            if xk != 0.0 {
                for idx in self.up[k]..self.up[k + 1] {
                    x[self.ui[idx]] -= self.ux[idx] * xk;
                }
            }
        }
        // Undo column permutation: out[q[k]] = z[k].
        let mut out = vec![0.0; n];
        for k in 0..n {
            out[self.q[k]] = x[k];
        }
        out
    }

    /// Solves in place, overwriting `b` with the solution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let x = self.solve(b);
        b.copy_from_slice(&x);
    }
}

/// Iterative depth-first search over the graph of `L`, collecting reached
/// nodes in postorder.
#[allow(clippy::too_many_arguments)]
fn dfs_reach(
    start: usize,
    lp: &[usize],
    li: &[usize],
    pinv: &[usize],
    mark: &mut [u32],
    generation: u32,
    node_stack: &mut Vec<usize>,
    edge_stack: &mut Vec<usize>,
    post: &mut Vec<usize>,
) {
    node_stack.clear();
    edge_stack.clear();
    node_stack.push(start);
    edge_stack.push(0);
    mark[start] = generation;
    while let Some(&node) = node_stack.last() {
        let col = pinv[node];
        let (lo, hi) = if col == NONE {
            (0, 0)
        } else {
            (lp[col], lp[col + 1])
        };
        let e = edge_stack.last_mut().expect("stacks in sync");
        let mut descended = false;
        while lo + *e < hi {
            let child = li[lo + *e];
            *e += 1;
            if mark[child] != generation {
                mark[child] = generation;
                node_stack.push(child);
                edge_stack.push(0);
                descended = true;
                break;
            }
        }
        if !descended {
            post.push(node);
            node_stack.pop();
            edge_stack.pop();
        }
    }
}

/// Reverse Cuthill–McKee ordering on the symmetrised pattern of `a`.
///
/// Returns a permutation `q` such that column `k` of the reordered matrix is
/// original column `q[k]`. Disconnected components are each started from a
/// minimum-degree node.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] for non-square input.
pub fn rcm_ordering(a: &CscMatrix) -> Result<Vec<usize>> {
    let adj = a.symmetrized_adjacency()?;
    let n = adj.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut frontier: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    // Nodes sorted by degree: candidate BFS roots.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&i| adj[i].len());
    for &root in &by_degree {
        if visited[root] {
            continue;
        }
        visited[root] = true;
        frontier.push_back(root);
        while let Some(u) = frontier.pop_front() {
            order.push(u);
            let mut children: Vec<usize> = adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            children.sort_by_key(|&v| adj[v].len());
            for v in children {
                visited[v] = true;
                frontier.push_back(v);
            }
        }
    }
    order.reverse();
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::Triplets;
    use crate::vector::{norm_inf, sub};
    use proptest::prelude::*;

    fn solve_and_check(t: &Triplets, b: &[f64], opts: LuOptions) {
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, opts).expect("factor");
        let x = lu.solve(b);
        let r = sub(&a.matvec(&x), b);
        let scale = norm_inf(b).max(1.0);
        assert!(
            norm_inf(&r) < 1e-9 * scale,
            "residual too large: {}",
            norm_inf(&r)
        );
    }

    fn tridiag(n: usize) -> Triplets {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
                t.push(i - 1, i, -1.5);
            }
        }
        t
    }

    #[test]
    fn solves_tridiagonal_natural() {
        let t = tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        solve_and_check(
            &t,
            &b,
            LuOptions {
                ordering: Ordering::Natural,
                ..Default::default()
            },
        );
    }

    #[test]
    fn solves_tridiagonal_rcm() {
        let t = tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).cos()).collect();
        solve_and_check(&t, &b, LuOptions::default());
    }

    #[test]
    fn handles_permutation_matrix() {
        // Anti-diagonal: needs pivoting away from zero diagonal.
        let n = 5;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, n - 1 - i, (i + 1) as f64);
        }
        let b = vec![1.0; n];
        solve_and_check(&t, &b, LuOptions::default());
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        // column 2 entirely empty
        let a = t.to_csc();
        match SparseLu::factor(&a, LuOptions::default()) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 2.0);
        t.push(0, 1, 1.0);
        t.push(1, 1, 2.0);
        assert!(SparseLu::factor(&t.to_csc(), LuOptions::default()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let t = Triplets::new(2, 3);
        assert!(matches!(
            SparseLu::factor(&t.to_csc(), LuOptions::default()),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn grid_laplacian_2d() {
        // 2-D periodic grid stencil: the structural shape of MPDE Jacobians.
        let (n1, n2) = (8, 6);
        let n = n1 * n2;
        let mut t = Triplets::new(n, n);
        for j in 0..n2 {
            for i in 0..n1 {
                let me = j * n1 + i;
                t.push(me, me, 4.2);
                t.push(me, j * n1 + (i + 1) % n1, -1.0);
                t.push(me, j * n1 + (i + n1 - 1) % n1, -1.0);
                t.push(me, ((j + 1) % n2) * n1 + i, -1.0);
                t.push(me, ((j + n2 - 1) % n2) * n1 + i, -1.0);
            }
        }
        let b: Vec<f64> = (0..n).map(|k| ((k * 37 % 11) as f64) - 5.0).collect();
        solve_and_check(&t, &b, LuOptions::default());
    }

    #[test]
    fn rcm_is_permutation() {
        let a = tridiag(20).to_csc();
        let q = rcm_ordering(&a).expect("rcm");
        let mut seen = vec![false; 20];
        for &c in &q {
            assert!(!seen[c], "duplicate column in ordering");
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_band() {
        // A banded matrix with shuffled labels: RCM should recover a narrow band.
        let n = 30;
        let shuffle: Vec<usize> = (0..n).map(|i| (i * 17) % n).collect();
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(shuffle[i], shuffle[i], 4.0);
            if i > 0 {
                t.push(shuffle[i], shuffle[i - 1], -1.0);
                t.push(shuffle[i - 1], shuffle[i], -1.0);
            }
        }
        let a = t.to_csc();
        let lu_nat = SparseLu::factor(
            &a,
            LuOptions {
                ordering: Ordering::Natural,
                ..Default::default()
            },
        )
        .expect("factor natural");
        let lu_rcm = SparseLu::factor(&a, LuOptions::default()).expect("factor rcm");
        assert!(
            lu_rcm.nnz() <= lu_nat.nnz(),
            "rcm fill {} > natural fill {}",
            lu_rcm.nnz(),
            lu_nat.nnz()
        );
    }

    #[test]
    fn strict_partial_pivoting_works() {
        let t = tridiag(30);
        let b = vec![1.0; 30];
        solve_and_check(
            &t,
            &b,
            LuOptions {
                pivot_threshold: 1.0,
                ..Default::default()
            },
        );
    }

    #[test]
    fn solve_in_place_matches_solve() {
        let t = tridiag(10);
        let a = t.to_csc();
        let lu = SparseLu::factor(&a, LuOptions::default()).expect("factor");
        let b: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = lu.solve(&b);
        let mut y = b.clone();
        lu.solve_in_place(&mut y);
        assert_eq!(x, y);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_random_dominant_systems(seed in 0u64..500) {
            let n = 25;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                let mut offdiag_sum = 0.0;
                for _ in 0..4 {
                    let j = (next() * n as f64) as usize % n;
                    if j != i {
                        let v = next() * 2.0 - 1.0;
                        t.push(i, j, v);
                        offdiag_sum += v.abs();
                    }
                }
                t.push(i, i, offdiag_sum + 1.0 + next());
            }
            let b: Vec<f64> = (0..n).map(|_| next() * 2.0 - 1.0).collect();
            let a = t.to_csc();
            let lu = SparseLu::factor(&a, LuOptions::default()).expect("factor");
            let x = lu.solve(&b);
            let r = sub(&a.matvec(&x), &b);
            prop_assert!(norm_inf(&r) < 1e-9);
        }

        #[test]
        fn prop_matches_dense_solver(seed in 0u64..200) {
            let n = 8;
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(99);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            let mut t = Triplets::new(n, n);
            for i in 0..n {
                for j in 0..n {
                    if next() > 0.2 {
                        t.push(i, j, next());
                    }
                }
                t.push(i, i, 5.0);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let a = t.to_csc();
            let sparse_x = SparseLu::factor(&a, LuOptions::default()).expect("factor").solve(&b);
            let dense_x = a.to_dense().solve(&b).expect("dense solve");
            for i in 0..n {
                prop_assert!((sparse_x[i] - dense_x[i]).abs() < 1e-8);
            }
        }
    }
}
