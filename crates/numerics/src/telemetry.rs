//! Fixed-allocation telemetry primitives: log-bucketed latency
//! histograms and bounded per-job lifecycle timelines.
//!
//! Both types are deliberately dependency-free and allocation-bounded so
//! a long-lived service can record *every* job without its telemetry
//! growing with traffic:
//!
//! * [`LatencyHistogram`] — a fixed array of log-2 duration buckets
//!   (1 µs, 2 µs, 4 µs, … ≈ 9 min, + overflow). Recording is a handful
//!   of integer ops; quantiles ([`LatencyHistogram::quantile`],
//!   [`LatencyHistogram::summary`]) interpolate inside the bucket that
//!   holds the target rank, and [`LatencyHistogram::absorb`] merges
//!   shard-local histograms into a fleet view losslessly (identical
//!   bucket boundaries everywhere, by construction).
//! * [`Timeline`] — a bounded, ordered list of typed
//!   [`TimelineEventKind`] lifecycle events
//!   (`admitted → queued → dispatched → rung(label) →
//!   iteration-milestones → settled{…}`) with nanosecond offsets from
//!   the timeline's origin. The final slot is reserved for the settle
//!   event, so a trace always shows how the job ended even when
//!   intermediate milestones were dropped at capacity.
//!
//! Neither type is internally synchronised: the intended deployment is
//! one histogram (or timeline) behind the owner's existing lock, written
//! on the settle path — never inside a Newton inner loop. Mid-solve
//! events ride the [`SolveBudget`](crate::SolveBudget) progress-callback
//! chain via [`Timeline::note_progress`], so a solve with telemetry off
//! pays exactly the budget's existing `is_unlimited` branch and nothing
//! else.

use std::time::{Duration, Instant};

/// Log-2 buckets starting at 1 µs: bucket `i` holds durations in
/// `(bound(i-1), bound(i)]` nanoseconds with `bound(i) = 1000 << i`.
/// Bucket 39 tops out at ≈ 9.2 minutes; anything longer lands in the
/// overflow bucket, whose "upper bound" for quantile purposes is the
/// largest value actually seen.
const BUCKETS: usize = 40;

/// The smallest bucket's upper bound (nanoseconds).
const FIRST_BOUND_NS: u64 = 1_000;

/// A fixed-allocation latency histogram with logarithmic (log-2)
/// bucket boundaries. See the module docs for the deployment model.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts samples in `(bound(i-1), bound(i)]`;
    /// `buckets[BUCKETS]` is the overflow bucket.
    buckets: [u64; BUCKETS + 1],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The wire-friendly summary of one histogram: count, mean, p50/p90/p99
/// and max, all in milliseconds (except `count`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean (milliseconds).
    pub mean_ms: f64,
    /// Median (milliseconds, bucket-interpolated).
    pub p50_ms: f64,
    /// 90th percentile (milliseconds, bucket-interpolated).
    pub p90_ms: f64,
    /// 99th percentile (milliseconds, bucket-interpolated).
    pub p99_ms: f64,
    /// Largest sample seen (milliseconds, exact).
    pub max_ms: f64,
}

impl LatencyHistogram {
    /// An empty histogram. Allocation-free; the whole struct is a few
    /// hundred bytes of plain integers.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS + 1],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The number of finite buckets (the overflow bucket is extra).
    pub const fn bucket_count() -> usize {
        BUCKETS
    }

    /// The inclusive upper bound of finite bucket `i`, in nanoseconds.
    ///
    /// # Panics
    ///
    /// If `i >= bucket_count()`.
    pub fn bucket_bound_ns(i: usize) -> u64 {
        assert!(i < BUCKETS, "bucket {i} out of range");
        FIRST_BOUND_NS << i
    }

    /// The finite bucket a duration of `ns` nanoseconds falls in, or
    /// `bucket_count()` for the overflow bucket. Monotone in `ns`.
    pub fn bucket_index(ns: u64) -> usize {
        if ns <= FIRST_BOUND_NS {
            return 0;
        }
        // Smallest i with ns <= 1000 << i  ⇔  ceil(ns/1000) rounded up
        // to a power of two, read off as its exponent.
        let chunks = ns.div_ceil(FIRST_BOUND_NS);
        let i = usize::try_from(chunks.next_power_of_two().trailing_zeros()).unwrap_or(BUCKETS);
        i.min(BUCKETS)
    }

    /// Records one duration.
    pub fn record(&mut self, elapsed: Duration) {
        self.record_ns(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one duration given directly in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[Self::bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations (nanoseconds, saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest recorded duration (nanoseconds; 0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in nanoseconds, linearly
    /// interpolated inside the bucket holding the target rank. Exact at
    /// the extremes a scraper cares about: never below 0, never above
    /// the true maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based target rank of the quantile sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if i == 0 {
                    0
                } else {
                    Self::bucket_bound_ns(i.min(BUCKETS) - 1)
                };
                let hi = if i < BUCKETS {
                    Self::bucket_bound_ns(i)
                } else {
                    self.max_ns.max(lo)
                };
                let within = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * within;
                return est.min(self.max_ns as f64);
            }
            seen += n;
        }
        self.max_ns as f64
    }

    /// The p50/p90/p99 summary in milliseconds.
    pub fn summary(&self) -> HistogramSummary {
        const MS: f64 = 1e6;
        HistogramSummary {
            count: self.count,
            mean_ms: self.mean_ns() / MS,
            p50_ms: self.quantile(0.50) / MS,
            p90_ms: self.quantile(0.90) / MS,
            p99_ms: self.quantile(0.99) / MS,
            max_ms: self.max_ns as f64 / MS,
        }
    }

    /// Merges `other` into `self` (cross-shard aggregation). Lossless:
    /// every histogram shares the same bucket boundaries.
    pub fn absorb(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Cumulative bucket view for text exposition: yields
    /// `(upper_bound_ns, cumulative_count)` per finite bucket, then
    /// `(None, total_count)` for the overflow (`+Inf`) bucket.
    pub fn cumulative_buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets.iter().enumerate().map(move |(i, &n)| {
            cum += n;
            if i < BUCKETS {
                (Some(Self::bucket_bound_ns(i)), cum)
            } else {
                (None, cum)
            }
        })
    }
}

/// One typed lifecycle event inside a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimelineEventKind {
    /// The job was accepted by the service.
    Admitted,
    /// The job entered the admission queue (absent for memo hits, which
    /// settle at submit).
    Queued,
    /// The scheduler handed the job's execution to the engine.
    Dispatched,
    /// The solve entered a recovery-ladder rung.
    Rung {
        /// The rung's stage label (`plain`, `gmin_stepping`, …).
        label: &'static str,
    },
    /// A Newton iteration milestone (recorded at powers of two, so a
    /// thousand-iteration solve costs ~10 events, not a thousand).
    Iteration {
        /// The rung the iteration ran under.
        rung: &'static str,
        /// Outer iterations completed in that rung.
        iteration: usize,
        /// Residual norm at the milestone.
        residual: f64,
    },
    /// The execution was parked for a retry backoff after a transient
    /// failure.
    Retry {
        /// Re-dispatch attempts so far (1 = first retry).
        attempt: usize,
        /// The backoff the execution waits before re-admission.
        backoff_ms: u64,
    },
    /// The job settled. Always the final event; the timeline reserves
    /// its last slot for it.
    Settled {
        /// How it ended: `hit`, `solved`, `failed`, `cancelled`,
        /// `deadline_expired` or `stagnated`.
        outcome: &'static str,
    },
}

impl TimelineEventKind {
    /// Stable lowercase label (wire protocols, logs).
    pub fn label(&self) -> &'static str {
        match self {
            TimelineEventKind::Admitted => "admitted",
            TimelineEventKind::Queued => "queued",
            TimelineEventKind::Dispatched => "dispatched",
            TimelineEventKind::Rung { .. } => "rung",
            TimelineEventKind::Iteration { .. } => "iteration",
            TimelineEventKind::Retry { .. } => "retry",
            TimelineEventKind::Settled { .. } => "settled",
        }
    }
}

/// One recorded event: its kind plus the nanosecond offset from the
/// timeline's origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineEvent {
    /// Nanoseconds since the timeline's origin instant.
    pub at_ns: u64,
    /// What happened.
    pub kind: TimelineEventKind,
}

/// A bounded, ordered record of one job's lifecycle. See the module
/// docs; construct with [`Timeline::new`], record with
/// [`Timeline::record`] / [`Timeline::note_progress`], and read back
/// with [`Timeline::events`] (or clone the whole timeline as the
/// retained settled trace).
#[derive(Debug, Clone)]
pub struct Timeline {
    origin: Instant,
    events: Vec<TimelineEvent>,
    capacity: usize,
    dropped: usize,
    /// The rung label most recently seen by [`Timeline::note_progress`]
    /// — consecutive progress snapshots from the same rung record no
    /// duplicate rung event.
    last_rung: Option<&'static str>,
}

impl Timeline {
    /// An empty timeline originating *now*, retaining at most
    /// `capacity` events (clamped ≥ 2 so admitted + settled always
    /// fit).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        Timeline {
            origin: Instant::now(),
            events: Vec::with_capacity(capacity.min(32)),
            capacity,
            dropped: 0,
            last_rung: None,
        }
    }

    /// Records `kind` at the current instant. Non-settle events fill at
    /// most `capacity - 1` slots (overflow counts into
    /// [`Timeline::dropped`]); the reserved final slot means the settle
    /// event is always recorded exactly once.
    pub fn record(&mut self, kind: TimelineEventKind) {
        let at_ns = u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let settle = matches!(kind, TimelineEventKind::Settled { .. });
        let cap = if settle {
            self.capacity
        } else {
            self.capacity - 1
        };
        if self.events.len() >= cap {
            self.dropped += 1;
            return;
        }
        self.events.push(TimelineEvent { at_ns, kind });
    }

    /// Folds one [`SolveProgress`](crate::SolveProgress)-shaped snapshot
    /// into the timeline: a rung event when the stage label changes, and
    /// an iteration milestone at power-of-two iteration counts
    /// (`iteration` 0 announces a rung with no milestone). This is the
    /// budget-observer entry point — bounded output for unbounded
    /// iteration streams.
    pub fn note_progress(&mut self, stage: Option<&'static str>, iteration: usize, residual: f64) {
        let rung = stage.unwrap_or("plain");
        if self.last_rung != Some(rung) {
            self.last_rung = Some(rung);
            self.record(TimelineEventKind::Rung { label: rung });
        }
        if iteration > 0 && iteration.is_power_of_two() {
            self.record(TimelineEventKind::Iteration {
                rung,
                iteration,
                residual,
            });
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Events discarded at capacity.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Whether a settle event has been recorded.
    pub fn is_settled(&self) -> bool {
        matches!(
            self.events.last(),
            Some(TimelineEvent {
                kind: TimelineEventKind::Settled { .. },
                ..
            })
        )
    }

    /// The timeline's origin instant (what `at_ns` offsets are relative
    /// to).
    pub fn origin(&self) -> Instant {
        self.origin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ms, 0.0);
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for i in 1..LatencyHistogram::bucket_count() {
            assert!(
                LatencyHistogram::bucket_bound_ns(i) > LatencyHistogram::bucket_bound_ns(i - 1),
                "bound({i})"
            );
        }
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let mut h = LatencyHistogram::new();
        // 100 samples at 1 ms, 10 at 100 ms, 1 at 10 s.
        for _ in 0..100 {
            h.record(Duration::from_millis(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(100));
        }
        h.record(Duration::from_secs(10));
        let s = h.summary();
        assert_eq!(s.count, 111);
        // p50 lands in the 1 ms bucket (bounds 0.524–1.05 ms).
        assert!(s.p50_ms <= 1.1, "p50 {}", s.p50_ms);
        // p99 lands in the 100 ms bucket (bounds 67–134 ms).
        assert!(s.p99_ms > 10.0 && s.p99_ms < 140.0, "p99 {}", s.p99_ms);
        assert!((s.max_ms - 10_000.0).abs() < 1e-6);
        // Quantiles never exceed the true maximum.
        assert!(h.quantile(1.0) <= h.max_ns() as f64);
    }

    #[test]
    fn absorb_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut merged = LatencyHistogram::new();
        for (i, ns) in [500u64, 1_500, 80_000, 2_000_000, 700_000_000]
            .iter()
            .enumerate()
        {
            if i % 2 == 0 { &mut a } else { &mut b }.record_ns(*ns);
            merged.record_ns(*ns);
        }
        a.absorb(&b);
        assert_eq!(a.count(), merged.count());
        assert_eq!(a.sum_ns(), merged.sum_ns());
        assert_eq!(a.max_ns(), merged.max_ns());
        assert_eq!(a.quantile(0.5), merged.quantile(0.5));
    }

    #[test]
    fn cumulative_buckets_end_at_total_count() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 5_000, 1 << 50] {
            h.record_ns(ns);
        }
        let buckets: Vec<_> = h.cumulative_buckets().collect();
        assert_eq!(buckets.len(), LatencyHistogram::bucket_count() + 1);
        let (last_bound, last_cum) = buckets[buckets.len() - 1];
        assert_eq!(last_bound, None, "overflow bucket is +Inf");
        assert_eq!(last_cum, 3);
        // Cumulative counts are monotone.
        for w in buckets.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    proptest! {
        // The log-bucket boundary property: every value lands in the
        // unique bucket whose half-open range contains it, and the
        // index is monotone in the value.
        #[test]
        fn bucket_index_is_consistent_and_monotone(ns in 0u64..u64::MAX / 2, delta in 0u64..1_000_000u64) {
            let i = LatencyHistogram::bucket_index(ns);
            if i < LatencyHistogram::bucket_count() {
                prop_assert!(ns <= LatencyHistogram::bucket_bound_ns(i));
                if i > 0 {
                    prop_assert!(ns > LatencyHistogram::bucket_bound_ns(i - 1));
                }
            } else {
                // Overflow: beyond the last finite bound.
                let last = LatencyHistogram::bucket_count() - 1;
                prop_assert!(ns > LatencyHistogram::bucket_bound_ns(last));
            }
            // Monotonicity: a larger value never lands in a smaller bucket.
            let j = LatencyHistogram::bucket_index(ns.saturating_add(delta));
            prop_assert!(j >= i);
        }

        // Quantiles are monotone in q and bounded by the recorded max.
        #[test]
        fn quantiles_are_monotone_and_bounded(samples in proptest::collection::vec(0u64..10_000_000_000u64, 1..200)) {
            let mut h = LatencyHistogram::new();
            for &ns in &samples {
                h.record_ns(ns);
            }
            let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 1.0];
            let mut prev = 0.0;
            for &q in &qs {
                let v = h.quantile(q);
                prop_assert!(v >= prev - 1e-9, "quantile({q}) regressed");
                prop_assert!(v <= h.max_ns() as f64 + 1e-9);
                prev = v;
            }
        }
    }

    #[test]
    fn timeline_orders_events_and_reserves_the_settle_slot() {
        let mut t = Timeline::new(4);
        t.record(TimelineEventKind::Admitted);
        t.record(TimelineEventKind::Queued);
        t.record(TimelineEventKind::Dispatched);
        // Capacity 4, three non-settle events: the reserved final slot
        // refuses a fourth milestone…
        t.record(TimelineEventKind::Rung { label: "plain" });
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 1);
        // …but always records the settle.
        t.record(TimelineEventKind::Settled { outcome: "solved" });
        assert!(t.is_settled());
        assert_eq!(t.events().len(), 4);
        // Offsets are monotone.
        for w in t.events().windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
        let labels: Vec<_> = t.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, ["admitted", "queued", "dispatched", "settled"]);
    }

    #[test]
    fn note_progress_dedupes_rungs_and_thins_iterations() {
        let mut t = Timeline::new(64);
        // Rung announcement (iteration 0) then iterations 1..=20 in
        // "plain", then a rung change.
        t.note_progress(Some("plain"), 0, f64::INFINITY);
        for i in 1..=20usize {
            t.note_progress(Some("plain"), i, 1.0 / i as f64);
        }
        t.note_progress(Some("gmin_stepping"), 1, 0.5);
        let labels: Vec<_> = t.events().iter().map(|e| e.kind.label()).collect();
        // One "rung" per transition; milestones only at 1,2,4,8,16.
        assert_eq!(
            labels,
            [
                "rung",
                "iteration",
                "iteration",
                "iteration",
                "iteration",
                "iteration",
                "rung",
                "iteration"
            ]
        );
        let milestones: Vec<usize> = t
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                TimelineEventKind::Iteration { iteration, .. } => Some(iteration),
                _ => None,
            })
            .collect();
        assert_eq!(milestones, [1, 2, 4, 8, 16, 1]);
    }
}
