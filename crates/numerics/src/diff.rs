//! Periodic differentiation operators.
//!
//! The MPDE discretisation needs discrete `∂/∂t1` and `∂/∂t2` on uniform
//! periodic grids. Each [`DiffScheme`] is described by a compact stencil
//! (offset/weight pairs scaled by `1/h`), which the assembly code turns into
//! Jacobian entries; [`apply_periodic`] applies the operator directly to
//! sample vectors, and [`spectral_derivative`] provides the Fourier
//! (harmonic-balance) alternative.

use std::f64::consts::PI;

use crate::fft::{fft, ifft, Complex};
use crate::{NumericsError, Result};

/// Finite-difference scheme for a periodic first derivative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiffScheme {
    /// First-order backward Euler: `(x_i − x_{i−1})/h`. Strongly damped and
    /// very robust; the default for MPDE Newton solves.
    #[default]
    BackwardEuler,
    /// Second-order central difference: `(x_{i+1} − x_{i−1})/(2h)`.
    Central2,
    /// Second-order backward (BDF2): `(3x_i − 4x_{i−1} + x_{i−2})/(2h)`.
    Bdf2,
}

impl DiffScheme {
    /// Stencil as `(offset, weight)` pairs; the derivative at grid index `i`
    /// with spacing `h` is `Σ_k weight_k · x_{i+offset_k} / h`.
    pub fn stencil(self) -> &'static [(isize, f64)] {
        match self {
            DiffScheme::BackwardEuler => &[(0, 1.0), (-1, -1.0)],
            DiffScheme::Central2 => &[(1, 0.5), (-1, -0.5)],
            DiffScheme::Bdf2 => &[(0, 1.5), (-1, -2.0), (-2, 0.5)],
        }
    }

    /// Formal order of accuracy.
    pub fn order(self) -> usize {
        match self {
            DiffScheme::BackwardEuler => 1,
            DiffScheme::Central2 | DiffScheme::Bdf2 => 2,
        }
    }

    /// Minimum number of periodic grid points for the stencil to make sense.
    pub fn min_points(self) -> usize {
        match self {
            DiffScheme::BackwardEuler | DiffScheme::Central2 => 2,
            DiffScheme::Bdf2 => 3,
        }
    }
}

/// Applies the periodic difference operator to `samples` over one period.
///
/// `period` is the full period `T`; the grid spacing is `T / samples.len()`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if there are fewer points than
/// the stencil needs or if `period <= 0`.
pub fn apply_periodic(scheme: DiffScheme, samples: &[f64], period: f64) -> Result<Vec<f64>> {
    let n = samples.len();
    if n < scheme.min_points() {
        return Err(NumericsError::InvalidArgument {
            context: format!("apply_periodic: {n} points < stencil minimum"),
        });
    }
    if period <= 0.0 {
        return Err(NumericsError::InvalidArgument {
            context: format!("apply_periodic: period {period} must be positive"),
        });
    }
    let h = period / n as f64;
    let stencil = scheme.stencil();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut s = 0.0;
        for &(off, w) in stencil {
            let idx = (i as isize + off).rem_euclid(n as isize) as usize;
            s += w * samples[idx];
        }
        *o = s / h;
    }
    Ok(out)
}

/// Spectral derivative of a periodic signal: exact for band-limited inputs.
/// This is the differentiation operator implicit in harmonic balance.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if `period <= 0`.
pub fn spectral_derivative(samples: &[f64], period: f64) -> Result<Vec<f64>> {
    if period <= 0.0 {
        return Err(NumericsError::InvalidArgument {
            context: format!("spectral_derivative: period {period} must be positive"),
        });
    }
    let n = samples.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let data: Vec<Complex> = samples.iter().map(|&x| Complex::new(x, 0.0)).collect();
    let mut spec = fft(&data);
    for (k, z) in spec.iter_mut().enumerate() {
        // Signed frequency index in [-n/2, n/2).
        let kk = if k <= n / 2 {
            k as isize
        } else {
            k as isize - n as isize
        };
        // Nyquist bin derivative is ambiguous for even n; zero it (standard).
        let kk = if n.is_multiple_of(2) && k == n / 2 {
            0
        } else {
            kk
        };
        let omega = 2.0 * PI * kk as f64 / period;
        *z = Complex::new(-z.im, z.re) * omega; // multiply by i·omega
    }
    Ok(ifft(&spec).iter().map(|z| z.re).collect())
}

/// Spectral-differentiation weights: dense row `w` such that
/// `(dx/dt)_i = Σ_j w[(i-j) mod n] · x_j`. Used to assemble harmonic-balance
/// Jacobians without FFTs inside the Newton loop.
pub fn spectral_weights(n: usize, period: f64) -> Vec<f64> {
    // Derivative of the periodic sinc interpolant evaluated at grid points.
    // Standard formulas, see Trefethen, "Spectral Methods in MATLAB", ch. 3.
    let mut w = vec![0.0; n];
    if n <= 1 {
        return w;
    }
    let h = 2.0 * PI / n as f64;
    for (k, wk) in w.iter_mut().enumerate().skip(1) {
        let val = if n.is_multiple_of(2) {
            // Even n: w_k = (-1)^k / 2 · cot(k·h/2)
            0.5 * (-1.0f64).powi(k as i32) / (k as f64 * h / 2.0).tan()
        } else {
            // Odd n: w_k = (-1)^k / 2 / sin(k·h/2)
            0.5 * (-1.0f64).powi(k as i32) / (k as f64 * h / 2.0).sin()
        };
        *wk = val;
    }
    // Scale from the canonical 2π period to the requested one.
    let scale = 2.0 * PI / period;
    for wk in &mut w {
        *wk *= scale;
    }
    w
}

/// Applies the dense spectral differentiation matrix built from
/// [`spectral_weights`].
pub fn apply_spectral_weights(weights: &[f64], samples: &[f64]) -> Vec<f64> {
    let n = samples.len();
    assert_eq!(weights.len(), n, "weights/samples length mismatch");
    let mut out = vec![0.0; n];
    for i in 0..n {
        let mut s = 0.0;
        for (j, &xj) in samples.iter().enumerate() {
            let d = (i as isize - j as isize).rem_euclid(n as isize) as usize;
            s += weights[d] * xj;
        }
        out[i] = s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_cos(n: usize, period: f64, harmonics: usize) -> (Vec<f64>, Vec<f64>) {
        // x(t) = cos(2π·harmonics·t/T); x'(t) analytic.
        let omega = 2.0 * PI * harmonics as f64 / period;
        let mut x = vec![0.0; n];
        let mut dx = vec![0.0; n];
        for i in 0..n {
            let t = period * i as f64 / n as f64;
            x[i] = (omega * t).cos();
            dx[i] = -omega * (omega * t).sin();
        }
        (x, dx)
    }

    #[test]
    fn derivative_of_constant_is_zero() {
        for scheme in [
            DiffScheme::BackwardEuler,
            DiffScheme::Central2,
            DiffScheme::Bdf2,
        ] {
            let d = apply_periodic(scheme, &[3.0; 16], 2.0).expect("apply");
            assert!(crate::vector::norm_inf(&d) < 1e-12, "{scheme:?}");
        }
    }

    #[test]
    fn convergence_order_backward_euler() {
        let period = 1.0;
        let err = |n: usize| {
            let (x, dx) = sample_cos(n, period, 1);
            let d = apply_periodic(DiffScheme::BackwardEuler, &x, period).expect("apply");
            crate::vector::norm_inf(&crate::vector::sub(&d, &dx))
        };
        let (e1, e2) = (err(64), err(128));
        let rate = (e1 / e2).log2();
        assert!((rate - 1.0).abs() < 0.15, "BE rate {rate}");
    }

    #[test]
    fn convergence_order_central_and_bdf2() {
        let period = 1.0;
        for scheme in [DiffScheme::Central2, DiffScheme::Bdf2] {
            let err = |n: usize| {
                let (x, dx) = sample_cos(n, period, 1);
                let d = apply_periodic(scheme, &x, period).expect("apply");
                crate::vector::norm_inf(&crate::vector::sub(&d, &dx))
            };
            let (e1, e2) = (err(64), err(128));
            let rate = (e1 / e2).log2();
            assert!((rate - 2.0).abs() < 0.2, "{scheme:?} rate {rate}");
        }
    }

    #[test]
    fn spectral_derivative_exact_for_bandlimited() {
        let period = 0.5;
        let (x, dx) = sample_cos(32, period, 3);
        let d = spectral_derivative(&x, period).expect("spectral");
        let e = crate::vector::norm_inf(&crate::vector::sub(&d, &dx));
        assert!(e < 1e-8, "spectral error {e}");
    }

    #[test]
    fn spectral_weights_match_fft_derivative() {
        for n in [8usize, 9, 16, 15] {
            let period = 2.0;
            let x: Vec<f64> = (0..n)
                .map(|i| {
                    (2.0 * PI * i as f64 / n as f64).cos()
                        + 0.3 * (4.0 * PI * i as f64 / n as f64).sin()
                })
                .collect();
            let via_fft = spectral_derivative(&x, period).expect("fft path");
            let w = spectral_weights(n, period);
            let via_weights = apply_spectral_weights(&w, &x);
            for i in 0..n {
                assert!(
                    (via_fft[i] - via_weights[i]).abs() < 1e-8,
                    "n={n} i={i}: {} vs {}",
                    via_fft[i],
                    via_weights[i]
                );
            }
        }
    }

    #[test]
    fn stencil_weights_sum_to_zero() {
        // Required so the derivative of a constant vanishes.
        for scheme in [
            DiffScheme::BackwardEuler,
            DiffScheme::Central2,
            DiffScheme::Bdf2,
        ] {
            let sum: f64 = scheme.stencil().iter().map(|&(_, w)| w).sum();
            assert!(sum.abs() < 1e-15, "{scheme:?}");
        }
    }

    #[test]
    fn stencil_first_moment_is_one() {
        // Σ w_k·k = 1 makes the stencil a consistent first derivative.
        for scheme in [
            DiffScheme::BackwardEuler,
            DiffScheme::Central2,
            DiffScheme::Bdf2,
        ] {
            let m1: f64 = scheme.stencil().iter().map(|&(o, w)| w * o as f64).sum();
            assert!((m1 - 1.0).abs() < 1e-15, "{scheme:?}: moment {m1}");
        }
    }

    #[test]
    fn too_few_points_rejected() {
        assert!(apply_periodic(DiffScheme::Bdf2, &[1.0, 2.0], 1.0).is_err());
        assert!(apply_periodic(DiffScheme::BackwardEuler, &[1.0], 1.0).is_err());
    }

    #[test]
    fn bad_period_rejected() {
        assert!(apply_periodic(DiffScheme::Central2, &[1.0; 8], 0.0).is_err());
        assert!(spectral_derivative(&[1.0; 8], -1.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_linearity(n in 4usize..40, alpha in -3.0f64..3.0, seed in 0u64..50) {
            let mut state = seed.wrapping_add(11).wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            let x: Vec<f64> = (0..n).map(|_| next()).collect();
            let y: Vec<f64> = (0..n).map(|_| next()).collect();
            for scheme in [DiffScheme::BackwardEuler, DiffScheme::Central2, DiffScheme::Bdf2] {
                if n < scheme.min_points() { continue; }
                let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
                let d_combo = apply_periodic(scheme, &combo, 1.0).expect("combo");
                let dx = apply_periodic(scheme, &x, 1.0).expect("x");
                let dy = apply_periodic(scheme, &y, 1.0).expect("y");
                for i in 0..n {
                    prop_assert!((d_combo[i] - (alpha * dx[i] + dy[i])).abs() < 1e-7);
                }
            }
        }
    }
}
