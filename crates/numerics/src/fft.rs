//! Complex arithmetic and fast Fourier transforms.
//!
//! Provides an iterative radix-2 FFT, a Bluestein chirp-z fallback for
//! arbitrary lengths, and a single-bin DFT ([`goertzel`]) used to extract
//! individual harmonics (conversion gain, HD2/HD3) from sampled waveforms.

use std::f64::consts::PI;

use crate::{NumericsError, Result};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates a complex number from rectangular components.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// In-place radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if the length is not a power
/// of two (use [`fft`] for arbitrary lengths).
pub fn fft_pow2(data: &mut [Complex], inverse: bool) -> Result<()> {
    let n = data.len();
    if n == 0 {
        return Ok(());
    }
    if !n.is_power_of_two() {
        return Err(NumericsError::InvalidArgument {
            context: format!("fft_pow2: length {n} is not a power of two"),
        });
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
    if inverse {
        let s = 1.0 / n as f64;
        for z in data.iter_mut() {
            *z = *z * s;
        }
    }
    Ok(())
}

/// Forward FFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns the unnormalised spectrum
/// `X_k = Σ_j x_j e^{-2πi jk/N}`.
pub fn fft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, false).expect("power of two checked");
        return data;
    }
    bluestein(input, false)
}

/// Inverse FFT of arbitrary length, normalised by `1/N`.
pub fn ifft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut data = input.to_vec();
        fft_pow2(&mut data, true).expect("power of two checked");
        return data;
    }
    bluestein(input, true)
}

/// Bluestein's chirp-z algorithm: expresses an arbitrary-length DFT as a
/// convolution, evaluated with a zero-padded power-of-two FFT.
fn bluestein(input: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = input.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    let m = (2 * n - 1).next_power_of_two();
    // chirp[k] = e^{sign·πi k²/n}
    let mut chirp = vec![Complex::ZERO; n];
    for k in 0..n {
        // k² mod 2n avoids precision loss for large k.
        let k2 = (k as u64 * k as u64) % (2 * n as u64);
        chirp[k] = Complex::from_polar(1.0, sign * PI * k2 as f64 / n as f64);
    }
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = input[k] * chirp[k];
    }
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        b[k] = chirp[k].conj();
        b[m - k] = chirp[k].conj();
    }
    fft_pow2(&mut a, false).expect("m is a power of two");
    fft_pow2(&mut b, false).expect("m is a power of two");
    for k in 0..m {
        a[k] = a[k] * b[k];
    }
    fft_pow2(&mut a, true).expect("m is a power of two");
    let norm = if inverse { 1.0 / n as f64 } else { 1.0 };
    (0..n).map(|k| a[k] * chirp[k] * norm).collect()
}

/// Forward FFT of a real signal; returns the full complex spectrum.
pub fn fft_real(input: &[f64]) -> Vec<Complex> {
    let data: Vec<Complex> = input.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft(&data)
}

/// Single-bin DFT at integer harmonic `k` of a uniformly sampled period:
/// returns `(2/N)·Σ_j x_j e^{-2πi jk/N}` — i.e. the *amplitude-scaled*
/// Fourier coefficient such that `x(t) ≈ Σ_k |c_k| cos(2πkt/T + arg c_k)`.
///
/// For `k = 0` the plain mean is returned.
pub fn goertzel(samples: &[f64], k: usize) -> Complex {
    let n = samples.len();
    if n == 0 {
        return Complex::ZERO;
    }
    let mut acc = Complex::ZERO;
    for (j, &x) in samples.iter().enumerate() {
        let ang = -2.0 * PI * (k * j) as f64 / n as f64;
        acc = acc + Complex::from_polar(1.0, ang) * x;
    }
    let scale = if k == 0 {
        1.0 / n as f64
    } else {
        2.0 / n as f64
    };
    acc * scale
}

/// Amplitude of harmonic `k` in a uniformly sampled periodic signal.
pub fn harmonic_amplitude(samples: &[f64], k: usize) -> f64 {
    goertzel(samples, k).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_complex_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a - b).abs() < tol,
            "complex mismatch: {a:?} vs {b:?} (tol {tol})"
        );
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let y = fft(&x);
        for v in y {
            assert_complex_close(v, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn fft_of_cosine_has_two_bins() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::new((2.0 * PI * 5.0 * j as f64 / n as f64).cos(), 0.0))
            .collect();
        let y = fft(&x);
        assert!((y[5].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((y[n - 5].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, v) in y.iter().enumerate() {
            if k != 5 && k != n - 5 {
                assert!(v.abs() < 1e-9, "leakage at bin {k}: {}", v.abs());
            }
        }
    }

    #[test]
    fn ifft_inverts_fft_pow2() {
        let x: Vec<Complex> = (0..16)
            .map(|j| Complex::new(j as f64, (j as f64).sin()))
            .collect();
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert_complex_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn ifft_inverts_fft_arbitrary_length() {
        for n in [3usize, 5, 6, 7, 12, 30, 40] {
            let x: Vec<Complex> = (0..n)
                .map(|j| Complex::new((j as f64 * 0.7).cos(), (j as f64 * 1.3).sin()))
                .collect();
            let y = ifft(&fft(&x));
            for (a, b) in x.iter().zip(&y) {
                assert_complex_close(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        let n = 30; // the paper's t2 grid size — not a power of two
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::new((j as f64 * 0.3).sin(), 0.0))
            .collect();
        let y = fft(&x);
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for (j, xj) in x.iter().enumerate() {
                acc = acc + *xj * Complex::from_polar(1.0, -2.0 * PI * (j * k) as f64 / n as f64);
            }
            assert_complex_close(y[k], acc, 1e-9);
        }
    }

    #[test]
    fn goertzel_extracts_amplitude_and_phase() {
        let n = 120;
        let amp = 0.75;
        let phase = 0.4;
        let x: Vec<f64> = (0..n)
            .map(|j| amp * (2.0 * PI * 3.0 * j as f64 / n as f64 + phase).cos() + 2.0)
            .collect();
        let c3 = goertzel(&x, 3);
        assert!((c3.abs() - amp).abs() < 1e-10);
        assert!((c3.arg() - phase).abs() < 1e-10);
        let c0 = goertzel(&x, 0);
        assert!((c0.re - 2.0).abs() < 1e-10);
    }

    #[test]
    fn goertzel_empty_is_zero() {
        assert_eq!(goertzel(&[], 1), Complex::ZERO);
    }

    #[test]
    fn fft_pow2_rejects_non_power() {
        let mut x = vec![Complex::ZERO; 6];
        assert!(fft_pow2(&mut x, false).is_err());
    }

    #[test]
    fn parseval_for_real_signal() {
        let n = 32;
        let x: Vec<f64> = (0..n).map(|j| ((j * j) as f64 * 0.1).sin()).collect();
        let spec = fft_real(&x);
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spec.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_fft_linearity(n in 4usize..32, alpha in -2.0f64..2.0, seed in 0u64..100) {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let y: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let combo: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a * alpha + *b).collect();
            let lhs = fft(&combo);
            let fx = fft(&x);
            let fy = fft(&y);
            for k in 0..n {
                let rhs = fx[k] * alpha + fy[k];
                prop_assert!((lhs[k] - rhs).abs() < 1e-7);
            }
        }

        #[test]
        fn prop_roundtrip_any_length(n in 1usize..50, seed in 0u64..100) {
            let mut state = seed.wrapping_add(1).wrapping_mul(0x2545F4914F6CDD1D);
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            };
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let y = ifft(&fft(&x));
            for (a, b) in x.iter().zip(&y) {
                prop_assert!((*a - *b).abs() < 1e-8);
            }
        }
    }
}
