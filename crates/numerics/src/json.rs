//! Dependency-free JSON reading and writing.
//!
//! The build environment has no crates.io access, so the workspace carries
//! its own small strict JSON implementation instead of serde. Two
//! consumers share it: the bench-regression gate (reading machine-written
//! `BENCH_*.json` baselines) and the `rfsim-serve` wire protocol
//! (line-delimited JSON requests and responses over TCP). Both sides are
//! machine-to-machine, so the parser is strict (no comments, no trailing
//! commas) and the writer is canonical (no whitespace, shortest-roundtrip
//! number formatting).
//!
//! Numbers are read and written as `f64`. The writer uses Rust's shortest
//! round-trip `Display` for floats, so any finite value survives a
//! write → parse cycle bit-identically — the property the serve layer's
//! replay guarantee rests on. Non-finite numbers have no JSON spelling and
//! are written as `null`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (read as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, insertion-ordered.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a dotted path (`"headline.speedup"`) through nested
    /// objects.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |v, key| v.get(key))
    }

    /// The number at a dotted path, if present.
    pub fn number_at(&self, dotted: &str) -> Option<f64> {
        match self.path(dotted) {
            Some(Json::Number(x)) => Some(*x),
            _ => None,
        }
    }

    /// The string at a dotted path, if present.
    pub fn string_at(&self, dotted: &str) -> Option<&str> {
        match self.path(dotted) {
            Some(Json::String(s)) => Some(s),
            _ => None,
        }
    }

    /// The boolean at a dotted path, if present.
    pub fn bool_at(&self, dotted: &str) -> Option<bool> {
        match self.path(dotted) {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// The array at a dotted path, if present.
    pub fn array_at(&self, dotted: &str) -> Option<&[Json]> {
        match self.path(dotted) {
            Some(Json::Array(items)) => Some(items),
            _ => None,
        }
    }

    /// An object value from `(key, value)` pairs.
    pub fn object(members: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array value.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// A number value. Non-finite floats (which JSON cannot spell) become
    /// `null`.
    pub fn number(x: f64) -> Json {
        if x.is_finite() {
            Json::Number(x)
        } else {
            Json::Null
        }
    }

    /// Serialises this value as compact canonical JSON (no whitespace).
    ///
    /// Finite numbers use Rust's shortest round-trip float formatting and
    /// therefore parse back to the identical `f64` bits; non-finite
    /// numbers are written as `null`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(x) => write_number(*x, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::number(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Number(x as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::String(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::String(s)
    }
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Plain Display is shortest-roundtrip and prints integral values
        // without a trailing ".0".
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

/// Nesting bound for the recursive parser. The parser faces untrusted
/// network input through the serve wire protocol, where unbounded `[[[[…`
/// recursion would overflow the connection thread's stack and abort the
/// whole process; real payloads nest a handful of levels.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth >= MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    // Accumulate raw bytes and validate once at the end, so multi-byte
    // UTF-8 content passes through intact.
    let mut out: Vec<u8> = Vec::new();
    let mut char_buf = [0u8; 4];
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                let unescaped = match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'b' => '\u{8}',
                    b'f' => '\u{c}',
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        *pos += 4;
                        char::from_u32(hex).unwrap_or('\u{fffd}')
                    }
                    other => return Err(format!("unknown escape '\\{}'", other as char)),
                };
                out.extend_from_slice(unescaped.encode_utf8(&mut char_buf).as_bytes());
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The UTF-8 regression test that rode with the parser from its first
    // home in `rfsim_bench::gate`: multi-byte content must survive both
    // escaped and raw forms.
    #[test]
    fn json_parses_bench_schema() {
        let doc = r#"{
            "pr": 2,
            "note": "a \"quoted\" machine — naïve UTF-8 survives",
            "benchmarks": [
                {"name": "x", "median_ns": 12.5},
                {"name": "y", "median_ns": 2e3, "ok": true}
            ],
            "headline": {"speedup": 1.63, "nested": {"deep": -4}}
        }"#;
        let json = Json::parse(doc).expect("parse");
        assert_eq!(
            json.path("note"),
            Some(&Json::String(
                "a \"quoted\" machine — naïve UTF-8 survives".into()
            ))
        );
        assert_eq!(json.number_at("pr"), Some(2.0));
        assert_eq!(json.number_at("headline.speedup"), Some(1.63));
        assert_eq!(json.number_at("headline.nested.deep"), Some(-4.0));
        assert_eq!(json.number_at("headline.missing"), None);
        match json.path("benchmarks") {
            Some(Json::Array(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].number_at("median_ns"), Some(12.5));
                assert_eq!(items[1].number_at("median_ns"), Some(2000.0));
                assert_eq!(items[1].get("ok"), Some(&Json::Bool(true)));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1, 2] trailing").is_err());
    }

    #[test]
    fn dump_roundtrips_structure_and_utf8() {
        let value = Json::object([
            ("naïve — utf8", Json::string("line\nbreak \"q\" \\ tab\t")),
            (
                "nums",
                Json::array([Json::number(1.5), 3.0.into(), (-0.25).into()]),
            ),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
            ("ctrl", Json::string("\u{1}\u{8}\u{c}")),
        ]);
        let text = value.dump();
        let back = Json::parse(&text).expect("reparse");
        assert_eq!(back, value);
    }

    #[test]
    fn dump_floats_roundtrip_bit_identically() {
        // The serve layer replays stored solutions over the wire; every
        // finite f64 must survive dump → parse with identical bits.
        let cases = [
            0.0,
            -0.0,
            1.0 / 3.0,
            6.62607015e-34,
            1.7976931348623157e308,
            5e-324,
            -12345.678901234567,
            f64::MIN_POSITIVE,
        ];
        for &x in &cases {
            let text = Json::Number(x).dump();
            match Json::parse(&text).expect("parse") {
                Json::Number(y) => {
                    assert_eq!(x.to_bits(), y.to_bits(), "{x:e} -> {text} -> {y:e}")
                }
                other => panic!("expected number, got {other:?}"),
            }
        }
        assert_eq!(Json::number(f64::NAN), Json::Null);
        assert_eq!(Json::number(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn hostile_nesting_is_rejected_not_overflowed() {
        // The serve wire protocol feeds this parser raw network lines; a
        // deep `[[[[…` must come back as an error, not a stack overflow.
        let deep_ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&deep_ok).is_ok());
        let hostile = "[".repeat(100_000);
        let err = Json::parse(&hostile).expect_err("must be rejected");
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn accessor_helpers() {
        let doc = Json::parse(r#"{"a": {"b": "str", "c": [1, true]}, "ok": true}"#).expect("parse");
        assert_eq!(doc.string_at("a.b"), Some("str"));
        assert_eq!(doc.bool_at("ok"), Some(true));
        let items = doc.array_at("a.c").expect("array");
        assert_eq!(items.len(), 2);
        assert_eq!(doc.string_at("a.c"), None);
        assert_eq!(doc.array_at("missing"), None);
    }
}
