//! Sparse matrix containers: triplet builder, CSR and CSC forms.
//!
//! The circuit stamps assemble into [`Triplets`] (duplicates allowed and
//! summed), which convert to [`CsrMatrix`] for matvecs/ILU and [`CscMatrix`]
//! for the sparse LU factorisation.

use crate::{NumericsError, Result};

/// Coordinate-format (COO) builder for sparse matrices.
///
/// Duplicate `(row, col)` entries are *summed* on conversion, which is
/// exactly the semantics MNA device stamping wants.
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with pre-allocated capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-dedup) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`. Duplicates are summed on conversion.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "Triplets::push: ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Removes all entries but keeps the allocation (for re-assembly).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Converts to compressed-sparse-row form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let (indptr, indices, data) = compress(self.rows, &self.entries, |&(r, c, v)| (r, c, v));
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Converts to compressed-sparse-column form, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        let (indptr, indices, data) = compress(self.cols, &self.entries, |&(r, c, v)| (c, r, v));
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }
}

/// Shared compression kernel: groups entries by `major`, sorts by `minor`,
/// sums duplicates.
fn compress<F>(majors: usize, entries: &[(usize, usize, f64)], proj: F) -> (Vec<usize>, Vec<usize>, Vec<f64>)
where
    F: Fn(&(usize, usize, f64)) -> (usize, usize, f64),
{
    // Counting sort by major index.
    let mut counts = vec![0usize; majors + 1];
    for e in entries {
        counts[proj(e).0 + 1] += 1;
    }
    for m in 0..majors {
        counts[m + 1] += counts[m];
    }
    let mut order = vec![0usize; entries.len()];
    {
        let mut cursor = counts.clone();
        for (k, e) in entries.iter().enumerate() {
            let (maj, _, _) = proj(e);
            order[cursor[maj]] = k;
            cursor[maj] += 1;
        }
    }
    let mut indptr = Vec::with_capacity(majors + 1);
    let mut indices = Vec::with_capacity(entries.len());
    let mut data = Vec::with_capacity(entries.len());
    indptr.push(0);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    for m in 0..majors {
        scratch.clear();
        for &k in &order[counts[m]..counts[m + 1]] {
            let (_, min, v) = proj(&entries[k]);
            scratch.push((min, v));
        }
        scratch.sort_unstable_by_key(|&(min, _)| min);
        let mut i = 0;
        while i < scratch.len() {
            let (min, mut v) = scratch[i];
            let mut j = i + 1;
            while j < scratch.len() && scratch[j].0 == min {
                v += scratch[j].1;
                j += 1;
            }
            indices.push(min);
            data.push(v);
            i = j;
        }
        indptr.push(indices.len());
    }
    (indptr, indices, data)
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, row by row.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, row by row.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable stored values (pattern is fixed).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Value at `(i, j)`, or 0 if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x dimension");
        assert_eq!(y.len(), self.rows, "matvec: y dimension");
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let mut s = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                s += v * x[*c];
            }
            y[i] = s;
        }
    }

    /// Matrix–vector product returning a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Converts to CSC form.
    pub fn to_csc(&self) -> CscMatrix {
        let mut t = Triplets::with_capacity(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                t.push(i, *c, *v);
            }
        }
        t.to_csc()
    }

    /// Converts to a dense matrix (diagnostics and tests).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut m = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                m[(i, *c)] += *v;
            }
        }
        m
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        crate::vector::norm_inf(&self.data)
    }
}

/// Compressed sparse column matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Column pointer array (length `cols + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Row indices, column by column.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, column by column.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[j];
        let hi = self.indptr[j + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Value at `(i, j)`, or 0 if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: x dimension");
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (r, v) in rows.iter().zip(vals) {
                y[*r] += v * xj;
            }
        }
        y
    }

    /// Converts to CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut t = Triplets::with_capacity(self.rows, self.cols, self.nnz());
        for j in 0..self.cols {
            let (rows, vals) = self.col(j);
            for (r, v) in rows.iter().zip(vals) {
                t.push(*r, j, *v);
            }
        }
        t.to_csr()
    }

    /// Converts to a dense matrix (diagnostics and tests).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        self.to_csr().to_dense()
    }

    /// Checks the structural symmetry of the pattern of `A + Aᵀ`
    /// adjacency — returns the undirected adjacency lists used by ordering
    /// algorithms.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] for non-square matrices.
    pub fn symmetrized_adjacency(&self) -> Result<Vec<Vec<usize>>> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                context: format!("symmetrized_adjacency: {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut adj = vec![Vec::new(); n];
        for j in 0..n {
            let (rows, _) = self.col(j);
            for &i in rows {
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        Ok(adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example() -> Triplets {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t
    }

    #[test]
    fn csr_roundtrip_values() {
        let a = example().to_csr();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 3.5);
        let b = t.to_csc();
        assert_eq!(b.get(0, 0), 3.5);
    }

    #[test]
    fn zero_entries_skipped() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 0.0);
        assert!(t.is_empty());
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let a = example().to_csr();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn csc_matvec_matches_csr() {
        let t = example();
        let x = vec![-1.0, 0.5, 2.0];
        assert_eq!(t.to_csr().matvec(&x), t.to_csc().matvec(&x));
    }

    #[test]
    fn csr_csc_roundtrip() {
        let a = example().to_csr();
        let back = a.to_csc().to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn adjacency_symmetrizes() {
        // Asymmetric pattern: (0,2) present, (2,0) absent.
        let mut t = Triplets::new(3, 3);
        t.push(0, 2, 1.0);
        t.push(1, 1, 1.0);
        let adj = t.to_csc().symmetrized_adjacency().expect("square");
        assert_eq!(adj[0], vec![2]);
        assert_eq!(adj[2], vec![0]);
        assert!(adj[1].is_empty()); // diagonal ignored
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }

    proptest! {
        #[test]
        fn prop_csr_csc_same_dense(entries in proptest::collection::vec(
            (0usize..8, 0usize..8, -10.0f64..10.0), 0..40)) {
            let mut t = Triplets::new(8, 8);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            let d1 = t.to_csr().to_dense();
            let d2 = t.to_csc().to_dense();
            for i in 0..8 {
                for j in 0..8 {
                    prop_assert!((d1[(i, j)] - d2[(i, j)]).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn prop_matvec_linear(entries in proptest::collection::vec(
            (0usize..6, 0usize..6, -5.0f64..5.0), 0..30),
            x in proptest::collection::vec(-3.0f64..3.0, 6),
            alpha in -2.0f64..2.0) {
            let mut t = Triplets::new(6, 6);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            let a = t.to_csr();
            let ax = a.matvec(&x);
            let sx: Vec<f64> = x.iter().map(|v| alpha * v).collect();
            let asx = a.matvec(&sx);
            for i in 0..6 {
                prop_assert!((asx[i] - alpha * ax[i]).abs() < 1e-9);
            }
        }
    }
}
