//! Sparse matrix containers: triplet builder, CSR and CSC forms, and
//! pattern-caching assemblers.
//!
//! The circuit stamps assemble into [`Triplets`] (duplicates allowed and
//! summed), which convert to [`CsrMatrix`] for matvecs/ILU and [`CscMatrix`]
//! for the sparse LU factorisation.
//!
//! MNA and MPDE Jacobians have a sparsity pattern that is fixed for the life
//! of a circuit while their *values* change every Newton iteration.
//! [`CscAssembly`] and [`CsrAssembly`] exploit this: built once from a
//! representative [`Triplets`], they record the mapping from each triplet
//! slot to its compressed value slot, so every subsequent assembly is a
//! single allocation-free scatter pass (no counting sort, no per-column
//! sort, no dedup). The scatter verifies the `(row, col)` sequence as it
//! goes and reports a mismatch instead of producing a wrong matrix, so
//! callers can rebuild the cache on the rare pattern change.

use crate::{NumericsError, Result};

/// A 64-bit hash of a sparse matrix's *structure* — dimensions, column (or
/// row) pointers and index arrays — independent of the stored values.
///
/// Fingerprints are cache **keys**, not proofs of equality: two different
/// patterns hashing to the same value is astronomically unlikely (FNV-1a
/// over the full index arrays) but not impossible, so anything keyed by a
/// fingerprint must still verify the pattern before trusting it. Every
/// consumer in this workspace does: [`CscAssembly::scatter`] checks each
/// stamp position and [`crate::sparse_lu::SymbolicLu::matches`] compares
/// the stored pattern outright, so a collision costs a transparent rebuild,
/// never a wrong solve.
///
/// Obtain one from [`CscMatrix::pattern_fingerprint`],
/// [`CsrMatrix::pattern_fingerprint`], [`Triplets::pattern_fingerprint`] or
/// [`CscAssembly::pattern_fingerprint`]; combine domain context (grid
/// shape, scheme identity) into a key with [`PatternFingerprint::mix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternFingerprint(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
        h ^= (v >> shift) & 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

impl PatternFingerprint {
    /// Hashes a compressed pattern: dimensions, then both index arrays.
    pub(crate) fn of_parts(rows: usize, cols: usize, indptr: &[usize], indices: &[usize]) -> Self {
        let mut h = FNV_OFFSET;
        h = fnv1a_u64(h, rows as u64);
        h = fnv1a_u64(h, cols as u64);
        h = fnv1a_u64(h, indptr.len() as u64);
        for &p in indptr {
            h = fnv1a_u64(h, p as u64);
        }
        h = fnv1a_u64(h, indices.len() as u64);
        for &i in indices {
            h = fnv1a_u64(h, i as u64);
        }
        PatternFingerprint(h)
    }

    /// Folds extra context (a grid dimension, a scheme discriminant, a
    /// sibling fingerprint's [`PatternFingerprint::as_u64`]) into this
    /// fingerprint, producing a new key. Order matters: `a.mix(b) ≠
    /// b.mix(a)` in general.
    #[must_use]
    pub fn mix(self, context: u64) -> Self {
        PatternFingerprint(fnv1a_u64(self.0, context))
    }

    /// The raw hash value (for display/diagnostics and for
    /// [`PatternFingerprint::mix`]).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for PatternFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Coordinate-format (COO) builder for sparse matrices.
///
/// Duplicate `(row, col)` entries are *summed* on conversion, which is
/// exactly the semantics MNA device stamping wants.
#[derive(Debug, Clone, Default)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with pre-allocated capacity.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-dedup) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`. Duplicates are summed on conversion.
    ///
    /// Exact zeros are kept as structural entries: device stamps always
    /// contribute their full pattern, so the Jacobian sparsity structure —
    /// and with it every [`CscAssembly`] slot map and cached symbolic LU —
    /// stays identical across Newton iterations even when a conductance
    /// passes through 0 (a MOSFET entering cutoff, a ramped source at 0).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "Triplets::push: ({row},{col}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Removes all entries but keeps the allocation (for re-assembly).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Converts to compressed-sparse-row form, summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let (indptr, indices, data) = compress(self.rows, &self.entries, |&(r, c, v)| (r, c, v));
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Converts to compressed-sparse-column form, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        let (indptr, indices, data) = compress(self.cols, &self.entries, |&(r, c, v)| (c, r, v));
        CscMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Fingerprint of the *compressed CSC structure* these entries produce:
    /// duplicates fold into one slot and exact-zero entries stay structural,
    /// so any two triplet sequences yielding the same CSC pattern — however
    /// the stamps were ordered — fingerprint identically.
    pub fn pattern_fingerprint(&self) -> PatternFingerprint {
        let (indptr, indices, _) = build_slot_map(self.cols, &self.entries, |&(r, c, _)| (c, r));
        PatternFingerprint::of_parts(self.rows, self.cols, &indptr, &indices)
    }
}

/// Shared compression kernel: groups entries by `major`, sorts by `minor`,
/// sums duplicates.
fn compress<F>(
    majors: usize,
    entries: &[(usize, usize, f64)],
    proj: F,
) -> (Vec<usize>, Vec<usize>, Vec<f64>)
where
    F: Fn(&(usize, usize, f64)) -> (usize, usize, f64),
{
    // Counting sort by major index.
    let mut counts = vec![0usize; majors + 1];
    for e in entries {
        counts[proj(e).0 + 1] += 1;
    }
    for m in 0..majors {
        counts[m + 1] += counts[m];
    }
    let mut order = vec![0usize; entries.len()];
    {
        let mut cursor = counts.clone();
        for (k, e) in entries.iter().enumerate() {
            let (maj, _, _) = proj(e);
            order[cursor[maj]] = k;
            cursor[maj] += 1;
        }
    }
    let mut indptr = Vec::with_capacity(majors + 1);
    let mut indices = Vec::with_capacity(entries.len());
    let mut data = Vec::with_capacity(entries.len());
    indptr.push(0);
    let mut scratch: Vec<(usize, f64)> = Vec::new();
    for m in 0..majors {
        scratch.clear();
        for &k in &order[counts[m]..counts[m + 1]] {
            let (_, min, v) = proj(&entries[k]);
            scratch.push((min, v));
        }
        scratch.sort_unstable_by_key(|&(min, _)| min);
        let mut i = 0;
        while i < scratch.len() {
            let (min, mut v) = scratch[i];
            let mut j = i + 1;
            while j < scratch.len() && scratch[j].0 == min {
                v += scratch[j].1;
                j += 1;
            }
            indices.push(min);
            data.push(v);
            i = j;
        }
        indptr.push(indices.len());
    }
    (indptr, indices, data)
}

/// Compressed sparse row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (length `rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, row by row.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, row by row.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable stored values (pattern is fixed).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The structure borrowed immutably alongside the values borrowed
    /// mutably — `(indptr, indices, data)` — the shape in-place numeric
    /// refreshes need, where pattern reads drive writes into the values.
    pub fn parts_mut(&mut self) -> (&[usize], &[usize], &mut [f64]) {
        (&self.indptr, &self.indices, &mut self.data)
    }

    /// Whether `other` has exactly this matrix's sparsity pattern
    /// (dimensions, row pointers and column indices — a slice compare, so
    /// cheap next to the numeric work it gates).
    pub fn same_pattern(&self, other: &CsrMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Value at `(i, j)`, or 0 if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x dimension");
        assert_eq!(y.len(), self.rows, "matvec: y dimension");
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let mut s = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                s += v * x[*c];
            }
            y[i] = s;
        }
    }

    /// Matrix–vector product returning a fresh vector.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Converts to CSC form.
    pub fn to_csc(&self) -> CscMatrix {
        let mut t = Triplets::with_capacity(self.rows, self.cols, self.nnz());
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                t.push(i, *c, *v);
            }
        }
        t.to_csc()
    }

    /// Converts to a dense matrix (diagnostics and tests).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        let mut m = crate::dense::DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                m[(i, *c)] += *v;
            }
        }
        m
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        crate::vector::norm_inf(&self.data)
    }

    /// Fingerprint of this matrix's structure (dimensions, row pointers and
    /// column indices), independent of the stored values. Note that CSR and
    /// CSC fingerprints of the same matrix differ — key caches by one form.
    pub fn pattern_fingerprint(&self) -> PatternFingerprint {
        PatternFingerprint::of_parts(self.rows, self.cols, &self.indptr, &self.indices)
    }
}

/// Compressed sparse column matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CscMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Column pointer array (length `cols + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Row indices, column by column.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, column by column.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[j];
        let hi = self.indptr[j + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Value at `(i, j)`, or 0 if not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `y = A·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: x dimension");
        let mut y = vec![0.0; self.rows];
        for j in 0..self.cols {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (r, v) in rows.iter().zip(vals) {
                y[*r] += v * xj;
            }
        }
        y
    }

    /// Converts to CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut t = Triplets::with_capacity(self.rows, self.cols, self.nnz());
        for j in 0..self.cols {
            let (rows, vals) = self.col(j);
            for (r, v) in rows.iter().zip(vals) {
                t.push(*r, j, *v);
            }
        }
        t.to_csr()
    }

    /// Converts to a dense matrix (diagnostics and tests).
    pub fn to_dense(&self) -> crate::dense::DenseMatrix {
        self.to_csr().to_dense()
    }

    /// Checks the structural symmetry of the pattern of `A + Aᵀ`
    /// adjacency — returns the undirected adjacency lists used by ordering
    /// algorithms.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] for non-square matrices.
    pub fn symmetrized_adjacency(&self) -> Result<Vec<Vec<usize>>> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                context: format!("symmetrized_adjacency: {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut adj = vec![Vec::new(); n];
        for j in 0..n {
            let (rows, _) = self.col(j);
            for &i in rows {
                if i != j {
                    adj[i].push(j);
                    adj[j].push(i);
                }
            }
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }
        Ok(adj)
    }

    /// Fingerprint of this matrix's structure (dimensions, column pointers
    /// and row indices), independent of the stored values. This is the key
    /// the sweep engine's workspace cache routes by.
    pub fn pattern_fingerprint(&self) -> PatternFingerprint {
        PatternFingerprint::of_parts(self.rows, self.cols, &self.indptr, &self.indices)
    }
}

/// Builds a compressed pattern from projected `(major, minor)` entry
/// positions and records, for each original entry, the value slot it folds
/// into. Shared by [`CscAssembly`] (major = column) and [`CsrAssembly`]
/// (major = row).
fn build_slot_map<F>(
    majors: usize,
    entries: &[(usize, usize, f64)],
    proj: F,
) -> (Vec<usize>, Vec<usize>, Vec<usize>)
where
    F: Fn(&(usize, usize, f64)) -> (usize, usize),
{
    // Counting sort by major index (same structure as `compress`, but
    // keeping track of which original entry lands where).
    let mut counts = vec![0usize; majors + 1];
    for e in entries {
        counts[proj(e).0 + 1] += 1;
    }
    for m in 0..majors {
        counts[m + 1] += counts[m];
    }
    let mut order = vec![0usize; entries.len()];
    {
        let mut cursor = counts.clone();
        for (k, e) in entries.iter().enumerate() {
            let (maj, _) = proj(e);
            order[cursor[maj]] = k;
            cursor[maj] += 1;
        }
    }
    let mut indptr = Vec::with_capacity(majors + 1);
    let mut indices = Vec::new();
    let mut slot = vec![0usize; entries.len()];
    indptr.push(0);
    let mut scratch: Vec<(usize, usize)> = Vec::new(); // (minor, entry index)
    for m in 0..majors {
        scratch.clear();
        for &k in &order[counts[m]..counts[m + 1]] {
            scratch.push((proj(&entries[k]).1, k));
        }
        scratch.sort_unstable_by_key(|&(min, _)| min);
        let mut i = 0;
        while i < scratch.len() {
            let min = scratch[i].0;
            let s = indices.len();
            indices.push(min);
            while i < scratch.len() && scratch[i].0 == min {
                slot[scratch[i].1] = s;
                i += 1;
            }
        }
        indptr.push(indices.len());
    }
    (indptr, indices, slot)
}

/// Shared core of [`CscAssembly`] and [`CsrAssembly`]: the compressed
/// pattern, the recorded triplet positions, and the verified value scatter.
#[derive(Debug, Clone)]
struct SlotMap {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    /// `(row, col)` of each triplet slot at build time, for verification.
    positions: Vec<(usize, usize)>,
    /// Compressed data slot each triplet slot folds into.
    slot: Vec<usize>,
}

impl SlotMap {
    fn new<F>(t: &Triplets, majors: usize, proj: F) -> Self
    where
        F: Fn(&(usize, usize, f64)) -> (usize, usize),
    {
        let (indptr, indices, slot) = build_slot_map(majors, &t.entries, proj);
        SlotMap {
            rows: t.rows,
            cols: t.cols,
            indptr,
            indices,
            positions: t.entries.iter().map(|&(r, c, _)| (r, c)).collect(),
            slot,
        }
    }

    fn nnz(&self) -> usize {
        self.indices.len()
    }

    fn matches(&self, t: &Triplets) -> bool {
        t.rows == self.rows
            && t.cols == self.cols
            && t.entries.len() == self.positions.len()
            && t.entries
                .iter()
                .zip(&self.positions)
                .all(|(&(r, c, _), &(pr, pc))| r == pr && c == pc)
    }

    /// Scatters `t`'s values into `data` (duplicates summed), verifying the
    /// slot sequence entry by entry. `false` — with `data` unspecified — on
    /// the first mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `data` does not have this pattern's nnz.
    fn scatter_values(&self, t: &Triplets, data: &mut [f64]) -> bool {
        assert_eq!(data.len(), self.nnz(), "SlotMap::scatter_values: nnz");
        if t.entries.len() != self.positions.len() || t.rows != self.rows || t.cols != self.cols {
            return false;
        }
        data.fill(0.0);
        for (k, &(r, c, v)) in t.entries.iter().enumerate() {
            let (pr, pc) = self.positions[k];
            if r != pr || c != pc {
                return false;
            }
            data[self.slot[k]] += v;
        }
        true
    }
}

/// Pattern-caching CSC assembler: maps triplet slots to CSC value slots so
/// repeated Jacobian assemblies scatter in place with no sort, dedup or
/// allocation.
///
/// Build it once from a representative assembly, then call
/// [`CscAssembly::scatter`] with each fresh [`Triplets`] of the *same stamp
/// sequence*. The scatter verifies every entry's `(row, col)` against the
/// recorded sequence and returns `false` on the first mismatch (leaving the
/// output contents unspecified), so a caller can detect structural changes
/// and rebuild.
#[derive(Debug, Clone)]
pub struct CscAssembly {
    map: SlotMap,
}

impl CscAssembly {
    /// Records the pattern and slot map of `t`.
    pub fn new(t: &Triplets) -> Self {
        CscAssembly {
            map: SlotMap::new(t, t.cols, |&(r, c, _)| (c, r)),
        }
    }

    /// Stored entries in the compressed pattern (after summing duplicates).
    pub fn nnz(&self) -> usize {
        self.map.nnz()
    }

    /// Number of triplet slots the map was built from.
    pub fn num_slots(&self) -> usize {
        self.map.slot.len()
    }

    /// Fingerprint of the compressed CSC pattern this assembly scatters
    /// into (equal to the fingerprint of any matrix it produces).
    pub fn pattern_fingerprint(&self) -> PatternFingerprint {
        PatternFingerprint::of_parts(
            self.map.rows,
            self.map.cols,
            &self.map.indptr,
            &self.map.indices,
        )
    }

    /// A zero-valued matrix with this pattern, ready for [`Self::scatter`].
    pub fn zero_matrix(&self) -> CscMatrix {
        CscMatrix {
            rows: self.map.rows,
            cols: self.map.cols,
            indptr: self.map.indptr.clone(),
            indices: self.map.indices.clone(),
            data: vec![0.0; self.map.nnz()],
        }
    }

    /// Whether `t` still has the exact `(row, col)` slot sequence the map
    /// was built from.
    pub fn matches(&self, t: &Triplets) -> bool {
        self.map.matches(t)
    }

    /// Scatters `t`'s values into `out` in place (duplicates summed).
    ///
    /// Returns `false` — leaving `out`'s values unspecified — if `t`'s slot
    /// sequence no longer matches the recorded pattern; the caller should
    /// rebuild the assembly.
    ///
    /// # Panics
    ///
    /// Panics if `out` was not produced from this assembly's pattern
    /// (dimension or nnz mismatch).
    pub fn scatter(&self, t: &Triplets, out: &mut CscMatrix) -> bool {
        assert_eq!(out.rows, self.map.rows, "CscAssembly::scatter: rows");
        assert_eq!(out.cols, self.map.cols, "CscAssembly::scatter: cols");
        self.map.scatter_values(t, &mut out.data)
    }

    /// The scatter-or-rebuild idiom in one place: scatters `t` through the
    /// cached assembly into the cached matrix, rebuilding both on
    /// structural change (or first use). Returns `true` when a rebuild
    /// happened, so callers can invalidate anything derived from the old
    /// pattern (a cached factorisation, a preconditioner).
    pub fn assemble_cached(
        cache: &mut Option<CscAssembly>,
        matrix: &mut Option<CscMatrix>,
        t: &Triplets,
    ) -> bool {
        let scattered = match (&*cache, matrix.as_mut()) {
            (Some(asm), Some(m)) => asm.scatter(t, m),
            _ => false,
        };
        if !scattered {
            let asm = CscAssembly::new(t);
            let mut m = asm.zero_matrix();
            let ok = asm.scatter(t, &mut m);
            debug_assert!(ok, "fresh assembly must accept its own triplets");
            *cache = Some(asm);
            *matrix = Some(m);
        }
        !scattered
    }
}

/// Pattern-caching CSR assembler: the row-major sibling of [`CscAssembly`],
/// used for the Krylov path (matvecs and ILU(0)/block-Jacobi
/// preconditioners consume CSR).
#[derive(Debug, Clone)]
pub struct CsrAssembly {
    map: SlotMap,
}

impl CsrAssembly {
    /// Records the pattern and slot map of `t`.
    pub fn new(t: &Triplets) -> Self {
        CsrAssembly {
            map: SlotMap::new(t, t.rows, |&(r, c, _)| (r, c)),
        }
    }

    /// Stored entries in the compressed pattern (after summing duplicates).
    pub fn nnz(&self) -> usize {
        self.map.nnz()
    }

    /// A zero-valued matrix with this pattern, ready for [`Self::scatter`].
    pub fn zero_matrix(&self) -> CsrMatrix {
        CsrMatrix {
            rows: self.map.rows,
            cols: self.map.cols,
            indptr: self.map.indptr.clone(),
            indices: self.map.indices.clone(),
            data: vec![0.0; self.map.nnz()],
        }
    }

    /// Whether `t` still has the exact `(row, col)` slot sequence the map
    /// was built from.
    pub fn matches(&self, t: &Triplets) -> bool {
        self.map.matches(t)
    }

    /// Scatters `t`'s values into `out` in place (duplicates summed).
    ///
    /// Returns `false` — leaving `out`'s values unspecified — on slot
    /// sequence mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `out` was not produced from this assembly's pattern.
    pub fn scatter(&self, t: &Triplets, out: &mut CsrMatrix) -> bool {
        assert_eq!(out.rows, self.map.rows, "CsrAssembly::scatter: rows");
        assert_eq!(out.cols, self.map.cols, "CsrAssembly::scatter: cols");
        self.map.scatter_values(t, &mut out.data)
    }

    /// Row-major sibling of [`CscAssembly::assemble_cached`]; returns
    /// `true` when the caches were rebuilt.
    pub fn assemble_cached(
        cache: &mut Option<CsrAssembly>,
        matrix: &mut Option<CsrMatrix>,
        t: &Triplets,
    ) -> bool {
        let scattered = match (&*cache, matrix.as_mut()) {
            (Some(asm), Some(m)) => asm.scatter(t, m),
            _ => false,
        };
        if !scattered {
            let asm = CsrAssembly::new(t);
            let mut m = asm.zero_matrix();
            let ok = asm.scatter(t, &mut m);
            debug_assert!(ok, "fresh assembly must accept its own triplets");
            *cache = Some(asm);
            *matrix = Some(m);
        }
        !scattered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn example() -> Triplets {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(0, 2, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t
    }

    #[test]
    fn csr_roundtrip_values() {
        let a = example().to_csr();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 0), 3.5);
        let b = t.to_csc();
        assert_eq!(b.get(0, 0), 3.5);
    }

    #[test]
    fn zero_entries_kept_as_structural() {
        // Explicit zeros stay in the pattern: assembly-slot caches and
        // symbolic factorisations rely on a value-independent structure.
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 0.0);
        assert_eq!(t.len(), 1);
        let a = t.to_csc();
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn csr_matvec_matches_dense() {
        let a = example().to_csr();
        let x = vec![1.0, 2.0, 3.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn csc_matvec_matches_csr() {
        let t = example();
        let x = vec![-1.0, 0.5, 2.0];
        assert_eq!(t.to_csr().matvec(&x), t.to_csc().matvec(&x));
    }

    #[test]
    fn csr_csc_roundtrip() {
        let a = example().to_csr();
        let back = a.to_csc().to_csr();
        assert_eq!(a, back);
    }

    #[test]
    fn adjacency_symmetrizes() {
        // Asymmetric pattern: (0,2) present, (2,0) absent.
        let mut t = Triplets::new(3, 3);
        t.push(0, 2, 1.0);
        t.push(1, 1, 1.0);
        let adj = t.to_csc().symmetrized_adjacency().expect("square");
        assert_eq!(adj[0], vec![2]);
        assert_eq!(adj[2], vec![0]);
        assert!(adj[1].is_empty()); // diagonal ignored
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn csc_assembly_matches_to_csc() {
        let mut t = example();
        t.push(2, 0, -1.5); // duplicate of (2,0): must fold into one slot
        let asm = CscAssembly::new(&t);
        assert_eq!(asm.num_slots(), 6);
        assert_eq!(asm.nnz(), 5);
        let mut m = asm.zero_matrix();
        assert!(asm.scatter(&t, &mut m));
        assert_eq!(m, t.to_csc());
    }

    #[test]
    fn csc_assembly_rescatter_new_values() {
        let mut t = example();
        let asm = CscAssembly::new(&t);
        let mut m = asm.zero_matrix();
        // Re-stamp the same pattern with different values (one of them 0).
        t.clear();
        t.push(0, 0, 7.0);
        t.push(0, 2, 0.0);
        t.push(1, 1, -3.0);
        t.push(2, 0, 1.0);
        t.push(2, 2, 2.0);
        assert!(asm.matches(&t));
        assert!(asm.scatter(&t, &mut m));
        assert_eq!(m, t.to_csc());
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.nnz(), 5); // the zero stays structural
    }

    #[test]
    fn csc_assembly_detects_pattern_change() {
        let t = example();
        let asm = CscAssembly::new(&t);
        let mut m = asm.zero_matrix();
        // Different length.
        let mut t2 = example();
        t2.push(1, 0, 1.0);
        assert!(!asm.matches(&t2));
        assert!(!asm.scatter(&t2, &mut m));
        // Same length, different position sequence.
        let mut t3 = Triplets::new(3, 3);
        t3.push(0, 0, 1.0);
        t3.push(0, 2, 2.0);
        t3.push(1, 1, 3.0);
        t3.push(2, 0, 4.0);
        t3.push(2, 1, 5.0); // was (2,2)
        assert!(!asm.matches(&t3));
        assert!(!asm.scatter(&t3, &mut m));
    }

    #[test]
    fn csr_assembly_matches_to_csr() {
        let mut t = example();
        t.push(0, 0, 0.5); // duplicate
        let asm = CsrAssembly::new(&t);
        let mut m = asm.zero_matrix();
        assert!(asm.scatter(&t, &mut m));
        assert_eq!(m, t.to_csr());
        // New values, same pattern.
        t.clear();
        t.push(0, 0, 1.0);
        t.push(0, 2, 1.0);
        t.push(1, 1, 1.0);
        t.push(2, 0, 1.0);
        t.push(2, 2, 1.0);
        t.push(0, 0, 2.0);
        assert!(asm.scatter(&t, &mut m));
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn fingerprint_is_value_independent() {
        let t1 = example();
        // Same positions, different values, different push order.
        let mut t2 = Triplets::new(3, 3);
        t2.push(2, 2, -5.0);
        t2.push(1, 1, 0.0);
        t2.push(0, 0, 9.0);
        t2.push(2, 0, 4.5);
        t2.push(0, 2, 2.0);
        assert_eq!(t1.pattern_fingerprint(), t2.pattern_fingerprint());
        assert_eq!(
            t1.to_csc().pattern_fingerprint(),
            t2.to_csc().pattern_fingerprint()
        );
        // Duplicates fold into the same compressed slot.
        let mut t3 = example();
        t3.push(0, 0, 3.0);
        assert_eq!(t1.pattern_fingerprint(), t3.pattern_fingerprint());
        // Assembly, CSC matrix and triplets all agree on the fingerprint.
        let asm = CscAssembly::new(&t1);
        assert_eq!(asm.pattern_fingerprint(), t1.to_csc().pattern_fingerprint());
        assert_eq!(asm.pattern_fingerprint(), t1.pattern_fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_patterns() {
        let t1 = example();
        let mut t2 = example();
        t2.push(1, 0, 1.0); // extra structural entry
        assert_ne!(t1.pattern_fingerprint(), t2.pattern_fingerprint());
        // Different dimensions, same (empty) entry set.
        let e1 = Triplets::new(3, 3);
        let e2 = Triplets::new(3, 4);
        assert_ne!(e1.pattern_fingerprint(), e2.pattern_fingerprint());
        // `mix` derives distinct keys from the same base pattern.
        let f = t1.pattern_fingerprint();
        assert_ne!(f.mix(16), f.mix(8));
        assert_ne!(f.mix(16).mix(8), f.mix(8).mix(16));
    }

    proptest! {
        #[test]
        fn prop_assembly_equals_compression(entries in proptest::collection::vec(
            (0usize..8, 0usize..8, -10.0f64..10.0), 0..40)) {
            let mut t = Triplets::new(8, 8);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            let csc_asm = CscAssembly::new(&t);
            let mut csc = csc_asm.zero_matrix();
            prop_assert!(csc_asm.scatter(&t, &mut csc));
            prop_assert!(csc == t.to_csc());
            let csr_asm = CsrAssembly::new(&t);
            let mut csr = csr_asm.zero_matrix();
            prop_assert!(csr_asm.scatter(&t, &mut csr));
            prop_assert!(csr == t.to_csr());
        }
    }

    proptest! {
        #[test]
        fn prop_csr_csc_same_dense(entries in proptest::collection::vec(
            (0usize..8, 0usize..8, -10.0f64..10.0), 0..40)) {
            let mut t = Triplets::new(8, 8);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            let d1 = t.to_csr().to_dense();
            let d2 = t.to_csc().to_dense();
            for i in 0..8 {
                for j in 0..8 {
                    prop_assert!((d1[(i, j)] - d2[(i, j)]).abs() < 1e-12);
                }
            }
        }

        #[test]
        fn prop_matvec_linear(entries in proptest::collection::vec(
            (0usize..6, 0usize..6, -5.0f64..5.0), 0..30),
            x in proptest::collection::vec(-3.0f64..3.0, 6),
            alpha in -2.0f64..2.0) {
            let mut t = Triplets::new(6, 6);
            for (r, c, v) in entries {
                t.push(r, c, v);
            }
            let a = t.to_csr();
            let ax = a.matvec(&x);
            let sx: Vec<f64> = x.iter().map(|v| alpha * v).collect();
            let asx = a.matvec(&sx);
            for i in 0..6 {
                prop_assert!((asx[i] - alpha * ax[i]).abs() < 1e-9);
            }
        }
    }
}
