//! Dense matrices with LU factorisation.
//!
//! Used for the small systems in this workspace: per-device Jacobian blocks,
//! shooting monodromy solves, and harmonic-balance blocks. Row-major storage.

use crate::{NumericsError, Result};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::DimensionMismatch {
                context: format!(
                    "from_row_major: {} entries for {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major data slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// A single row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            y[i] = crate::vector::dot(row, x);
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }

    /// In-place LU factorisation with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] if a pivot is exactly zero,
    /// and [`NumericsError::DimensionMismatch`] for non-square input.
    pub fn lu(&self) -> Result<DenseLu> {
        if self.rows != self.cols {
            return Err(NumericsError::DimensionMismatch {
                context: format!("lu: matrix is {}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        lu_sweep(n, &mut a, &mut perm)?;
        Ok(DenseLu { n, lu: a, perm })
    }

    /// Solves `A·x = b` via a fresh LU factorisation.
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors; see [`DenseMatrix::lu`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        Ok(self.lu()?.solve(b))
    }

    /// Estimates the 1-norm condition number via explicit inverse columns
    /// (intended for small matrices in tests and diagnostics).
    ///
    /// # Errors
    ///
    /// Propagates factorisation errors.
    pub fn cond1_estimate(&self) -> Result<f64> {
        let n = self.rows;
        let lu = self.lu()?;
        let mut inv_norm1: f64 = 0.0;
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = lu.solve(&e);
            e[j] = 0.0;
            inv_norm1 = inv_norm1.max(col.iter().map(|v| v.abs()).sum());
        }
        let mut a_norm1: f64 = 0.0;
        for j in 0..self.cols {
            let s = (0..self.rows).map(|i| self[(i, j)].abs()).sum();
            a_norm1 = a_norm1.max(s);
        }
        Ok(a_norm1 * inv_norm1)
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// The in-place partial-pivoting LU sweep shared by [`DenseMatrix::lu`]
/// and [`DenseLu::refactor`]: `a` holds the matrix on entry and the packed
/// `L`/`U` factors on exit; `perm` must arrive as the identity.
fn lu_sweep(n: usize, a: &mut [f64], perm: &mut [usize]) -> Result<()> {
    for k in 0..n {
        // Partial pivoting: find the largest |a[i][k]| for i >= k.
        let mut piv_row = k;
        let mut piv_val = a[k * n + k].abs();
        for i in (k + 1)..n {
            let v = a[i * n + k].abs();
            if v > piv_val {
                piv_val = v;
                piv_row = i;
            }
        }
        if piv_val == 0.0 {
            return Err(NumericsError::SingularMatrix {
                index: k,
                pivot: piv_val,
            });
        }
        if piv_row != k {
            for j in 0..n {
                a.swap(k * n + j, piv_row * n + j);
            }
            perm.swap(k, piv_row);
        }
        let pivot = a[k * n + k];
        for i in (k + 1)..n {
            let m = a[i * n + k] / pivot;
            a[i * n + k] = m;
            if m != 0.0 {
                for j in (k + 1)..n {
                    a[i * n + j] -= m * a[k * n + j];
                }
            }
        }
    }
    Ok(())
}

/// LU factors of a dense matrix (`P·A = L·U`, unit lower-triangular `L`).
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl DenseLu {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Refactors in place from a same-dimension matrix, reusing this
    /// factor's storage: no allocation, fresh partial pivoting. The value
    /// refresh behind the block-Jacobi preconditioner's in-place numeric
    /// update.
    ///
    /// # Errors
    ///
    /// * [`NumericsError::DimensionMismatch`] if `m` is not `n × n`.
    /// * [`NumericsError::SingularMatrix`] if a pivot is exactly zero (the
    ///   factor's values are unspecified afterwards).
    pub fn refactor(&mut self, m: &DenseMatrix) -> Result<()> {
        if m.rows() != self.n || m.cols() != self.n {
            return Err(NumericsError::DimensionMismatch {
                context: format!(
                    "DenseLu::refactor: {}x{} matrix into factor of dim {}",
                    m.rows(),
                    m.cols(),
                    self.n
                ),
            });
        }
        self.lu.copy_from_slice(m.as_slice());
        for (i, p) in self.perm.iter_mut().enumerate() {
            *p = i;
        }
        lu_sweep(self.n, &mut self.lu, &mut self.perm)
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A·x = b` into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()` or `out.len() != self.dim()`.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64]) {
        assert_eq!(b.len(), self.n, "DenseLu::solve_into: dimension mismatch");
        assert_eq!(out.len(), self.n, "DenseLu::solve_into: output mismatch");
        let n = self.n;
        // Apply permutation, then forward/back substitution.
        for (xi, &p) in out.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        let x = out;
        for i in 1..n {
            let mut s = x[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * x[j];
            }
            x[i] = s / self.lu[i * n + i];
        }
    }

    /// Solves for several right-hand sides given as matrix columns.
    pub fn solve_matrix(&self, b: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.n, b.cols());
        let mut col = vec![0.0; self.n];
        for j in 0..b.cols() {
            for i in 0..self.n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col);
            for i in 0..self.n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Determinant of the original matrix (product of pivots with sign).
    pub fn determinant(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.n {
            det *= self.lu[i * self.n + i];
        }
        // Permutation parity.
        let mut perm = self.perm.clone();
        let mut sign = 1.0;
        for i in 0..perm.len() {
            while perm[i] != i {
                let j = perm[i];
                perm.swap(i, j);
                sign = -sign;
            }
        }
        det * sign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mat(rows: usize, cols: usize, v: &[f64]) -> DenseMatrix {
        DenseMatrix::from_row_major(rows, cols, v.to_vec()).expect("shape")
    }

    #[test]
    fn identity_solve_is_identity() {
        let a = DenseMatrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(a.solve(&b).expect("solve"), b);
    }

    #[test]
    fn solve_2x2() {
        let a = mat(2, 2, &[4.0, 1.0, 1.0, 3.0]);
        let x = a.solve(&[1.0, 2.0]).expect("solve");
        assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-14);
        assert!((x[0] + 3.0 * x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = mat(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 7.0]).expect("solve");
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = mat(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        match a.lu() {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected SingularMatrix, got {other:?}"),
        }
    }

    #[test]
    fn non_square_lu_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.lu(),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn determinant_of_permutation() {
        let a = mat(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let det = a.lu().expect("lu").determinant();
        assert!((det + 1.0).abs() < 1e-14);
    }

    #[test]
    fn matmul_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn solve_matrix_columns() {
        let a = mat(2, 2, &[2.0, 0.0, 0.0, 4.0]);
        let b = mat(2, 2, &[2.0, 4.0, 4.0, 8.0]);
        let x = a.lu().expect("lu").solve_matrix(&b);
        assert!((x[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((x[(1, 1)] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn cond_of_identity_is_one() {
        let c = DenseMatrix::identity(5).cond1_estimate().expect("cond");
        assert!((c - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_lu_solve_residual(seed in 0u64..1000) {
            // Build a diagonally dominant random matrix: always solvable.
            let n = 6;
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            };
            let mut a = DenseMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = next();
                }
                a[(i, i)] += n as f64; // dominance
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();
            let x = a.solve(&b).expect("solve");
            let r = crate::vector::sub(&a.matvec(&x), &b);
            prop_assert!(crate::vector::norm_inf(&r) < 1e-10);
        }
    }
}
