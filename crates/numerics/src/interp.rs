//! Periodic interpolation in one and two dimensions.
//!
//! Used to evaluate multitime grid solutions off-grid: the diagonal
//! reconstruction `x(t) = x̂(t mod T1, t mod T2)` of the MPDE method samples
//! the bivariate grid along a dense line, which needs periodic bilinear (or
//! bicubic) interpolation.

use crate::{NumericsError, Result};

/// Wraps `t` into `[0, period)`.
#[inline]
pub fn wrap(t: f64, period: f64) -> f64 {
    let r = t % period;
    if r < 0.0 {
        r + period
    } else {
        r
    }
}

/// Periodic linear interpolation of uniform samples over `[0, period)`.
///
/// `samples[i]` is the value at `t = i·period/len`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for empty samples or a
/// non-positive period.
pub fn periodic_lerp(samples: &[f64], period: f64, t: f64) -> Result<f64> {
    let n = samples.len();
    if n == 0 {
        return Err(NumericsError::InvalidArgument {
            context: "periodic_lerp: empty samples".into(),
        });
    }
    if period <= 0.0 {
        return Err(NumericsError::InvalidArgument {
            context: format!("periodic_lerp: period {period}"),
        });
    }
    let pos = wrap(t, period) / period * n as f64;
    let i0 = pos.floor() as usize % n;
    let i1 = (i0 + 1) % n;
    let frac = pos - pos.floor();
    Ok(samples[i0] * (1.0 - frac) + samples[i1] * frac)
}

/// Periodic cubic (Catmull–Rom) interpolation of uniform samples.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] for fewer than 4 samples or a
/// non-positive period.
pub fn periodic_cubic(samples: &[f64], period: f64, t: f64) -> Result<f64> {
    let n = samples.len();
    if n < 4 {
        return Err(NumericsError::InvalidArgument {
            context: format!("periodic_cubic: need ≥4 samples, got {n}"),
        });
    }
    if period <= 0.0 {
        return Err(NumericsError::InvalidArgument {
            context: format!("periodic_cubic: period {period}"),
        });
    }
    let pos = wrap(t, period) / period * n as f64;
    let i1 = pos.floor() as usize % n;
    let s = pos - pos.floor();
    let i0 = (i1 + n - 1) % n;
    let i2 = (i1 + 1) % n;
    let i3 = (i1 + 2) % n;
    let (p0, p1, p2, p3) = (samples[i0], samples[i1], samples[i2], samples[i3]);
    Ok(p1
        + 0.5
            * s
            * (p2 - p0
                + s * (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3 + s * (3.0 * (p1 - p2) + p3 - p0))))
}

/// Periodic bilinear interpolation on a uniform 2-D grid.
///
/// `values` is laid out row-major as `values[j * n1 + i]` for grid point
/// `(t1_i, t2_j)` with `t1_i = i·period1/n1`, `t2_j = j·period2/n2`.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on shape/period problems.
pub fn periodic_bilinear(
    values: &[f64],
    n1: usize,
    n2: usize,
    period1: f64,
    period2: f64,
    t1: f64,
    t2: f64,
) -> Result<f64> {
    if n1 == 0 || n2 == 0 || values.len() != n1 * n2 {
        return Err(NumericsError::InvalidArgument {
            context: format!(
                "periodic_bilinear: {} values for {n1}x{n2} grid",
                values.len()
            ),
        });
    }
    if period1 <= 0.0 || period2 <= 0.0 {
        return Err(NumericsError::InvalidArgument {
            context: format!("periodic_bilinear: periods {period1}, {period2}"),
        });
    }
    let p1 = wrap(t1, period1) / period1 * n1 as f64;
    let p2 = wrap(t2, period2) / period2 * n2 as f64;
    let i0 = p1.floor() as usize % n1;
    let j0 = p2.floor() as usize % n2;
    let i1 = (i0 + 1) % n1;
    let j1 = (j0 + 1) % n2;
    let fx = p1 - p1.floor();
    let fy = p2 - p2.floor();
    let v00 = values[j0 * n1 + i0];
    let v10 = values[j0 * n1 + i1];
    let v01 = values[j1 * n1 + i0];
    let v11 = values[j1 * n1 + i1];
    Ok(v00 * (1.0 - fx) * (1.0 - fy)
        + v10 * fx * (1.0 - fy)
        + v01 * (1.0 - fx) * fy
        + v11 * fx * fy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn wrap_handles_negatives() {
        assert!((wrap(-0.25, 1.0) - 0.75).abs() < 1e-15);
        assert!((wrap(2.5, 1.0) - 0.5).abs() < 1e-15);
        assert_eq!(wrap(0.0, 1.0), 0.0);
    }

    #[test]
    fn lerp_hits_grid_points() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        for (i, &v) in s.iter().enumerate() {
            let t = i as f64 / 4.0;
            assert!((periodic_lerp(&s, 1.0, t).expect("lerp") - v).abs() < 1e-14);
        }
    }

    #[test]
    fn lerp_wraps_around_the_seam() {
        let s = vec![0.0, 10.0];
        // halfway between last sample (10 at t=0.5) and first (0 at t=1≡0)
        let v = periodic_lerp(&s, 1.0, 0.75).expect("lerp");
        assert!((v - 5.0).abs() < 1e-14);
    }

    #[test]
    fn cubic_reproduces_smooth_function_better_than_lerp() {
        let n = 16;
        let s: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * i as f64 / n as f64).sin())
            .collect();
        let mut err_lin = 0.0f64;
        let mut err_cub = 0.0f64;
        for k in 0..200 {
            let t = k as f64 / 200.0;
            let exact = (2.0 * PI * t).sin();
            err_lin = err_lin.max((periodic_lerp(&s, 1.0, t).expect("l") - exact).abs());
            err_cub = err_cub.max((periodic_cubic(&s, 1.0, t).expect("c") - exact).abs());
        }
        assert!(
            err_cub < err_lin / 5.0,
            "cubic {err_cub} vs linear {err_lin}"
        );
    }

    #[test]
    fn bilinear_separable_product() {
        // f(t1,t2) = a(t1)·b(t2) with a, b linear-in-cell: exact for bilinear.
        let (n1, n2) = (4, 3);
        let mut v = vec![0.0; n1 * n2];
        for j in 0..n2 {
            for i in 0..n1 {
                v[j * n1 + i] = (i as f64) * (j as f64 + 1.0);
            }
        }
        let got = periodic_bilinear(&v, n1, n2, 1.0, 1.0, 0.125, 1.0 / 6.0).expect("bilinear");
        // halfway between i=0,1 (values scale i) and j=0,1: a = 0.5, b = 1.5
        assert!((got - 0.5 * 1.5).abs() < 1e-14);
    }

    #[test]
    fn bilinear_rejects_bad_shape() {
        assert!(periodic_bilinear(&[1.0; 5], 2, 3, 1.0, 1.0, 0.0, 0.0).is_err());
        assert!(periodic_bilinear(&[1.0; 6], 2, 3, 0.0, 1.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn empty_samples_rejected() {
        assert!(periodic_lerp(&[], 1.0, 0.0).is_err());
        assert!(periodic_cubic(&[1.0, 2.0, 3.0], 1.0, 0.0).is_err());
    }

    proptest! {
        #[test]
        fn prop_lerp_periodicity(t in -5.0f64..5.0, seed in 0u64..50) {
            let mut state = seed.wrapping_add(3).wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let s: Vec<f64> = (0..8).map(|_| next()).collect();
            let a = periodic_lerp(&s, 1.0, t).expect("a");
            let b = periodic_lerp(&s, 1.0, t + 3.0).expect("b");
            prop_assert!((a - b).abs() < 1e-10);
        }

        #[test]
        fn prop_lerp_bounded_by_extremes(t in 0.0f64..1.0, seed in 0u64..50) {
            let mut state = seed.wrapping_add(17).wrapping_mul(0x2545F4914F6CDD1D);
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
            };
            let s: Vec<f64> = (0..6).map(|_| next()).collect();
            let v = periodic_lerp(&s, 1.0, t).expect("lerp");
            let lo = s.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }

        #[test]
        fn prop_bilinear_matches_lerp_on_axis(t1 in 0.0f64..1.0, seed in 0u64..30) {
            // With n2 = 1 the grid is constant along t2: bilinear == 1-D lerp.
            let mut state = seed.wrapping_add(29).wrapping_mul(0x9E3779B97F4A7C15);
            let mut next = move || {
                state ^= state << 13; state ^= state >> 7; state ^= state << 17;
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let s: Vec<f64> = (0..8).map(|_| next()).collect();
            let a = periodic_bilinear(&s, 8, 1, 1.0, 1.0, t1, 0.37).expect("2d");
            let b = periodic_lerp(&s, 1.0, t1).expect("1d");
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
