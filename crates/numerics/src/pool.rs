//! A hand-rolled fixed-thread worker pool (no external dependencies).
//!
//! Two consumers share this pool. The sweep engine's unit of concurrency
//! is a *topology group* — a chain of warm-started solves that must run in
//! order on one thread; the parallel numeric refactorisation
//! ([`crate::sparse_lu::SparseLu::refactor_in_place_parallel`]) uses the same
//! width to size its column-pipeline workers. The job model is therefore
//! deliberately simple: `jobs` independent indexed tasks, executed by a
//! fixed number of scoped worker threads pulling from one atomic counter.
//! There is no work stealing, no channels and no queues to poison: a
//! worker that finishes early simply pulls the next index. Results come
//! back in job order.
//!
//! # Sizing
//!
//! [`WorkerPool::from_available_parallelism`] sizes the pool to the
//! machine; [`WorkerPool::new`] pins an explicit width. A pool of width 1
//! (or a single job) runs inline on the caller's thread, with no thread
//! spawned at all — useful both on single-core hosts, where scoped threads
//! only add context-switch overhead, and for bit-for-bit determinism
//! checks against sequential execution. Each extra worker holds one
//! checked-out linear-solver workspace alive, so memory scales with
//! `min(threads, concurrent topology groups)`, not with batch size.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width pool of scoped worker threads.
///
/// ```
/// use rfsim_numerics::pool::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let squares = pool.run(8, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::from_available_parallelism()
    }
}

impl WorkerPool {
    /// A pool running at most `threads` jobs concurrently (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to [`std::thread::available_parallelism`] (1 if the
    /// parallelism cannot be determined).
    pub fn from_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    }

    /// Configured pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0) … f(jobs − 1)` across the pool and returns the results
    /// in job order. Blocks until every job has finished. With a width-1
    /// pool or a single job, runs inline on the calling thread in index
    /// order (no threads spawned).
    ///
    /// # Panics
    ///
    /// A panicking job aborts the batch: the panic is propagated to the
    /// caller once the scope joins (remaining queued jobs are not started
    /// by the panicking worker; other workers finish the job they hold).
    pub fn run<T, F>(&self, jobs: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(jobs);
        if workers <= 1 {
            return (0..jobs).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let job = next.fetch_add(1, Ordering::Relaxed);
                    if job >= jobs {
                        return;
                    }
                    let out = f(job);
                    *results[job].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index below `jobs` is executed")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn empty_and_single_job_batches() {
        let pool = WorkerPool::new(4);
        let none: Vec<usize> = pool.run(0, |i| i);
        assert!(none.is_empty());
        assert_eq!(pool.run(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn results_arrive_in_job_order() {
        let pool = WorkerPool::new(3);
        // Uneven job durations scramble completion order; results must
        // still come back by index.
        let out = pool.run(17, |i| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 7
        });
        assert_eq!(out, (0..17).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let pool = WorkerPool::new(5);
        let count = AtomicUsize::new(0);
        let ids = pool.run(32, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
        assert_eq!(ids.iter().copied().collect::<HashSet<_>>().len(), 32);
    }

    #[test]
    fn width_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.run(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn default_pool_matches_machine() {
        assert!(WorkerPool::default().threads() >= 1);
    }
}
