//! Small vector kernels on `&[f64]` slices.
//!
//! These are deliberately plain functions rather than a vector newtype:
//! solution vectors flow between crates as `Vec<f64>`, and callers decide
//! the storage (C-CALLER-CONTROL).

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha·x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let amax = norm_inf(x);
    if amax == 0.0 || !amax.is_finite() {
        return amax;
    }
    let mut sum = 0.0;
    for &v in x {
        let s = v / amax;
        sum += s * s;
    }
    amax * sum.sqrt()
}

/// Max-magnitude norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    // NaN must propagate: `f64::max` *ignores* NaN operands, so a plain
    // max-fold reports an all-NaN vector as ‖x‖∞ = 0 — which upstream
    // convergence tests read as "converged". A Newton line search once
    // accepted a NaN iterate as residual-zero through exactly this hole.
    x.iter().fold(0.0_f64, |m, &v| {
        let a = v.abs();
        // Both operands checked: `max` would also discard an accumulated
        // NaN the moment a finite entry followed it.
        if m.is_nan() || a.is_nan() {
            f64::NAN
        } else {
            m.max(a)
        }
    })
}

/// Index and value of the entry with the largest magnitude, or `None` for an
/// empty slice.
#[inline]
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, b)) if v.abs() <= b.abs() => {}
            _ => best = Some((i, v)),
        }
    }
    best
}

/// Componentwise `z = x − y` into a fresh vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Root-mean-square of the entries (0 for empty input).
#[inline]
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Weighted convergence norm used by Newton loops:
/// `max_i |x_i| / (reltol·|ref_i| + abstol)`.
///
/// A value ≤ 1 means every component satisfies its mixed
/// absolute/relative tolerance, mirroring SPICE's convergence test.
///
/// # Panics
///
/// Panics if `x.len() != reference.len()`.
#[inline]
pub fn wrms_ratio(x: &[f64], reference: &[f64], reltol: f64, abstol: f64) -> f64 {
    assert_eq!(x.len(), reference.len(), "wrms_ratio: length mismatch");
    x.iter()
        .zip(reference)
        .map(|(&xi, &ri)| xi.abs() / (reltol * ri.abs() + abstol))
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_orthogonal() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
    }

    #[test]
    fn norm2_matches_definition() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm2_empty_is_zero() {
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norms_propagate_nan_instead_of_reporting_zero() {
        // `f64::max` ignores NaN: an all-NaN vector used to report
        // ‖x‖∞ = 0 (and so ‖x‖₂ = 0), reading as perfect convergence.
        assert!(norm_inf(&[f64::NAN]).is_nan());
        assert!(norm_inf(&[f64::NAN, 1.0]).is_nan());
        assert!(norm_inf(&[1.0, f64::NAN]).is_nan());
        assert!(norm2(&[f64::NAN]).is_nan());
        assert!(norm2(&[3.0, f64::NAN, 4.0]).is_nan());
        assert!(norm_inf(&[f64::INFINITY]).is_infinite());
    }

    #[test]
    fn norm2_no_overflow_for_huge_entries() {
        let big = 1e300;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n / big - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn argmax_abs_finds_negative_peak() {
        assert_eq!(argmax_abs(&[1.0, -7.0, 3.0]), Some((1, -7.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn wrms_ratio_unit_when_at_tolerance() {
        // |x| exactly reltol*|ref| + abstol => ratio 1.
        let r = wrms_ratio(&[1e-3 + 1e-9], &[1.0], 1e-3, 1e-9);
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[2.0; 10]) - 2.0).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn prop_cauchy_schwarz(x in proptest::collection::vec(-1e3f64..1e3, 1..20),
                               y in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            let lhs = dot(x, y).abs();
            let rhs = norm2(x) * norm2(y);
            prop_assert!(lhs <= rhs * (1.0 + 1e-12) + 1e-12);
        }

        #[test]
        fn prop_norm_inf_le_norm2(x in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            prop_assert!(norm_inf(&x) <= norm2(&x) * (1.0 + 1e-12));
        }

        #[test]
        fn prop_sub_then_add_roundtrip(x in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let z = sub(&x, &x);
            prop_assert!(norm_inf(&z) == 0.0);
        }
    }
}
