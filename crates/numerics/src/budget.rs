//! The solve control plane: cooperative cancellation, wall-clock
//! deadlines and stagnation guards shared by every iterative solver in
//! the workspace.
//!
//! A [`SolveBudget`] is an immutable bundle of limits a caller attaches
//! to a solve: an optional [`CancelToken`] (flip it from any thread and
//! every solver sharing it stops at its next check point), an optional
//! deadline, an optional stagnation guard (give up early when the best
//! residual stops improving), and an optional progress callback. The
//! solvers — Newton's iteration and damping loops, the GMRES/BiCGStab
//! inner loops, and everything stacked on them — poll the budget at
//! loop boundaries, so interruption is *cooperative*: a solve is never
//! torn down mid-factorisation, its workspace is never poisoned, and an
//! interrupted call returns a typed [`SolveInterrupted`] describing how
//! far it got, never a panic.
//!
//! Budgets are cheap to clone and [`SolveBudget::child`] fans one out
//! across concurrent sub-solves: children share the parent's cancel flag
//! and deadline, so one cancel stops a whole batch promptly.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag. Cloning yields a handle to the *same*
/// flag: cancel any clone and every solve budgeted on it interrupts at
/// its next check point.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a solve was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The budget's [`CancelToken`] was cancelled.
    Cancelled,
    /// The budget's wall-clock deadline passed.
    DeadlineExpired,
    /// The stagnation guard fired: the best residual stopped improving
    /// for a full window of iterations.
    Stagnated,
}

impl InterruptReason {
    /// Stable lowercase label (wire protocols, logs).
    pub fn label(&self) -> &'static str {
        match self {
            InterruptReason::Cancelled => "cancelled",
            InterruptReason::DeadlineExpired => "deadline_expired",
            InterruptReason::Stagnated => "stagnated",
        }
    }
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The typed outcome of an interrupted solve: what stopped it and how
/// far it had come. Carried inside
/// [`NumericsError::Interrupted`](crate::NumericsError::Interrupted)
/// (and the circuit layer's mirror variant) so callers can distinguish
/// "told to stop" from "failed to converge".
#[derive(Debug, Clone, PartialEq)]
pub struct SolveInterrupted {
    /// What fired.
    pub reason: InterruptReason,
    /// Iterations completed before the interruption.
    pub iterations: usize,
    /// Best residual norm seen (infinite if none was computed yet).
    pub best_residual: f64,
    /// Wall-clock time spent in the solve.
    pub elapsed: Duration,
}

impl fmt::Display for SolveInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "solve interrupted ({}) after {} iterations, best residual {:.3e}, {:.1} ms",
            self.reason,
            self.iterations,
            self.best_residual,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// A progress snapshot handed to [`SolveBudget::with_progress`]
/// callbacks once per outer (Newton) iteration.
#[derive(Debug, Clone, Copy)]
pub struct SolveProgress {
    /// Outer iterations completed so far.
    pub iteration: usize,
    /// Residual norm of the latest iteration.
    pub residual: f64,
    /// Best residual norm seen so far.
    pub best_residual: f64,
    /// Wall-clock time since the solve started.
    pub elapsed: Duration,
    /// The stage label the solve is running under
    /// ([`SolveBudget::with_stage`]) — e.g. a recovery-ladder rung name.
    pub stage: Option<&'static str>,
}

type ProgressFn = dyn Fn(&SolveProgress) + Send + Sync;

/// Limits on one solve (or one fanned-out batch of solves): cancel
/// token, deadline, stagnation guard, progress callback — all optional,
/// all off in [`SolveBudget::unlimited`]. See the module docs.
#[derive(Clone, Default)]
pub struct SolveBudget {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    /// 0 disables the guard.
    stagnation_window: usize,
    stagnation_rel_improvement: f64,
    progress: Option<Arc<ProgressFn>>,
    stage: Option<&'static str>,
}

impl fmt::Debug for SolveBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveBudget")
            .field("cancel", &self.cancel.is_some())
            .field("deadline", &self.deadline)
            .field("stagnation_window", &self.stagnation_window)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl SolveBudget {
    /// A budget with every limit off — the default every non-budgeted
    /// entry point delegates with. Checking it is (nearly) free.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Attaches a cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The attached cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Sets an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Arms the stagnation guard: interrupt with
    /// [`InterruptReason::Stagnated`] when `window` consecutive outer
    /// iterations fail to improve the best residual by at least the
    /// relative factor `min_rel_improvement` (e.g. `1e-2` = 1% better).
    /// Catches both flat plateaus and oscillating iterates, whose best
    /// residual plateaus even as the current residual bounces.
    #[must_use]
    pub fn with_stagnation_guard(mut self, window: usize, min_rel_improvement: f64) -> Self {
        self.stagnation_window = window;
        self.stagnation_rel_improvement = min_rel_improvement.max(0.0);
        self
    }

    /// Registers a progress callback, invoked once per outer iteration
    /// of a budgeted Newton solve. Keep it cheap: it runs on the solver
    /// thread. Replaces any callback already installed; to *add* an
    /// observer without dropping the existing one, use
    /// [`SolveBudget::observed`].
    #[must_use]
    pub fn with_progress(mut self, f: impl Fn(&SolveProgress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Adds a progress observer *in addition to* any callback already
    /// installed (both run, existing first). Lets a service layer watch
    /// a solve without severing a caller's own progress plumbing.
    #[must_use]
    pub fn observed(mut self, f: impl Fn(&SolveProgress) + Send + Sync + 'static) -> Self {
        self.progress = Some(match self.progress.take() {
            Some(prev) => Arc::new(move |p: &SolveProgress| {
                prev(p);
                f(p);
            }),
            None => Arc::new(f),
        });
        self
    }

    /// Labels the stage this budget's solves run under — a recovery-
    /// ladder rung name, a continuation phase. The label rides along on
    /// every [`SolveProgress`] snapshot so one progress callback can
    /// distinguish which rung is reporting. Children inherit it until
    /// re-labelled.
    #[must_use]
    pub fn with_stage(mut self, stage: &'static str) -> Self {
        self.stage = Some(stage);
        self
    }

    /// The stage label, if any.
    pub fn stage(&self) -> Option<&'static str> {
        self.stage
    }

    /// Emits one zero-iteration progress snapshot carrying the current
    /// stage label — a *stage announcement*. Recovery drivers call this
    /// on rung entry so observers (timelines, `poll` progress) see the
    /// transition even when the rung fails before completing a single
    /// iteration. No-op without a progress callback.
    pub fn announce_stage(&self) {
        if let Some(progress) = &self.progress {
            progress(&SolveProgress {
                iteration: 0,
                residual: f64::INFINITY,
                best_residual: f64::INFINITY,
                elapsed: Duration::ZERO,
                stage: self.stage,
            });
        }
    }

    /// A child budget for one sub-solve of a fanned-out batch: shares
    /// the parent's cancel flag, deadline and guard configuration, so
    /// cancelling the parent stops every child promptly.
    #[must_use]
    pub fn child(&self) -> Self {
        self.clone()
    }

    /// Whether every limit is off (checks are then skipped wholesale).
    pub fn is_unlimited(&self) -> bool {
        self.cancel.is_none()
            && self.deadline.is_none()
            && self.stagnation_window == 0
            && self.progress.is_none()
    }

    /// The stateless cancel/deadline check used by inner (Krylov) loops,
    /// which track their own iteration counts: `Some` describes the
    /// interruption, `None` means keep going. Stagnation is *not*
    /// checked here — that is outer-iteration state owned by a
    /// [`BudgetMeter`].
    pub fn interruption(
        &self,
        start: Instant,
        iterations: usize,
        best_residual: f64,
    ) -> Option<SolveInterrupted> {
        let reason = if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            InterruptReason::Cancelled
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            InterruptReason::DeadlineExpired
        } else {
            return None;
        };
        Some(SolveInterrupted {
            reason,
            iterations,
            best_residual,
            elapsed: start.elapsed(),
        })
    }

    /// Starts the per-solve clock and iteration meter.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            budget: self.clone(),
            start: Instant::now(),
            iterations: 0,
            best_residual: f64::INFINITY,
            since_improvement: 0,
        }
    }
}

/// Per-solve mutable state over a [`SolveBudget`]: the wall clock, the
/// outer-iteration count, the best residual, and the stagnation window.
/// One meter per outer (Newton) solve; inner loops use the stateless
/// [`SolveBudget::interruption`] instead.
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    budget: SolveBudget,
    start: Instant,
    iterations: usize,
    best_residual: f64,
    since_improvement: usize,
}

impl BudgetMeter {
    /// Cheap cancel/deadline check for loop tops and damping
    /// (line-search) trials.
    ///
    /// # Errors
    ///
    /// The interruption, if the token was cancelled or the deadline
    /// passed.
    pub fn check(&self) -> Result<(), SolveInterrupted> {
        if self.budget.is_unlimited() {
            return Ok(());
        }
        match self
            .budget
            .interruption(self.start, self.iterations, self.best_residual)
        {
            Some(i) => Err(i),
            None => Ok(()),
        }
    }

    /// Records one completed outer iteration ending at `residual`:
    /// updates the best residual and stagnation window, emits progress,
    /// then checks every limit.
    ///
    /// # Errors
    ///
    /// The interruption, if cancelled, past deadline, or stagnated.
    pub fn note_iteration(&mut self, residual: f64) -> Result<(), SolveInterrupted> {
        self.iterations += 1;
        let required = self.best_residual * (1.0 - self.budget.stagnation_rel_improvement);
        if residual < required || !self.best_residual.is_finite() {
            self.since_improvement = 0;
        } else {
            self.since_improvement += 1;
        }
        if residual < self.best_residual {
            self.best_residual = residual;
        }
        if self.budget.is_unlimited() {
            return Ok(());
        }
        if let Some(progress) = &self.budget.progress {
            progress(&SolveProgress {
                iteration: self.iterations,
                residual,
                best_residual: self.best_residual,
                elapsed: self.start.elapsed(),
                stage: self.budget.stage,
            });
        }
        if self.budget.stagnation_window > 0
            && self.since_improvement >= self.budget.stagnation_window
        {
            return Err(self.interrupt(InterruptReason::Stagnated));
        }
        self.check()
    }

    /// Builds the typed outcome for `reason` from the meter's current
    /// state — used by solvers that detect an interruption out-of-band
    /// (e.g. one bubbled up from an inner linear solve) and want to
    /// report it with outer-iteration context.
    pub fn interrupt(&self, reason: InterruptReason) -> SolveInterrupted {
        SolveInterrupted {
            reason,
            iterations: self.iterations,
            best_residual: self.best_residual,
            elapsed: self.start.elapsed(),
        }
    }

    /// Outer iterations recorded so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Best residual recorded so far (infinite before the first
    /// [`BudgetMeter::note_iteration`]).
    pub fn best_residual(&self) -> f64 {
        self.best_residual
    }

    /// Wall-clock time since the meter started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_interrupts() {
        let budget = SolveBudget::unlimited();
        assert!(budget.is_unlimited());
        let mut meter = budget.meter();
        for i in 0..10_000 {
            assert!(meter.check().is_ok());
            assert!(meter.note_iteration(1.0 + i as f64).is_ok());
        }
        assert_eq!(meter.iterations(), 10_000);
    }

    #[test]
    fn cancel_token_is_shared_across_clones_and_children() {
        let token = CancelToken::new();
        let budget = SolveBudget::unlimited().with_cancel(token.clone());
        let child = budget.child();
        let meter = child.meter();
        assert!(meter.check().is_ok());
        token.cancel();
        let err = meter.check().expect_err("cancelled");
        assert_eq!(err.reason, InterruptReason::Cancelled);
        assert!(budget.cancel_token().expect("token kept").is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let budget = SolveBudget::unlimited().with_timeout(Duration::from_millis(0));
        let meter = budget.meter();
        std::thread::sleep(Duration::from_millis(2));
        let err = meter.check().expect_err("expired");
        assert_eq!(err.reason, InterruptReason::DeadlineExpired);
        assert!(err.elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn stagnation_guard_fires_on_plateau() {
        let budget = SolveBudget::unlimited().with_stagnation_guard(3, 1e-2);
        let mut meter = budget.meter();
        // First sighting establishes the best residual.
        meter.note_iteration(1.0).expect("fresh");
        meter.note_iteration(0.999).expect("1 flat");
        meter.note_iteration(1.001).expect("2 flat");
        let err = meter.note_iteration(0.9999).expect_err("3 flat");
        assert_eq!(err.reason, InterruptReason::Stagnated);
        assert_eq!(err.iterations, 4);
        assert!((err.best_residual - 0.999).abs() < 1e-12);
    }

    #[test]
    fn stagnation_window_resets_on_improvement() {
        let budget = SolveBudget::unlimited().with_stagnation_guard(3, 1e-2);
        let mut meter = budget.meter();
        let mut r = 1.0;
        for _ in 0..20 {
            // Steady 5% improvement per iteration never stagnates.
            meter.note_iteration(r).expect("improving");
            r *= 0.95;
        }
        assert_eq!(meter.iterations(), 20);
    }

    #[test]
    fn progress_callback_sees_every_iteration() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let budget = SolveBudget::unlimited()
            .with_progress(move |p| sink.lock().unwrap().push((p.iteration, p.residual)));
        let mut meter = budget.meter();
        meter.note_iteration(2.0).unwrap();
        meter.note_iteration(1.0).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![(1, 2.0), (2, 1.0)]);
    }

    #[test]
    fn observed_chains_instead_of_replacing() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let (first, second) = (Arc::clone(&seen), Arc::clone(&seen));
        let budget = SolveBudget::unlimited()
            .with_progress(move |p| first.lock().unwrap().push(("a", p.iteration)))
            .observed(move |p| second.lock().unwrap().push(("b", p.iteration)));
        let mut meter = budget.meter();
        meter.note_iteration(1.0).unwrap();
        assert_eq!(*seen.lock().unwrap(), vec![("a", 1), ("b", 1)]);
    }

    #[test]
    fn stage_label_rides_on_progress_and_survives_children() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let budget = SolveBudget::unlimited()
            .with_progress(move |p| sink.lock().unwrap().push(p.stage))
            .with_stage("gmin_stepping");
        assert_eq!(budget.stage(), Some("gmin_stepping"));
        let child = budget.child();
        let mut meter = child.meter();
        meter.note_iteration(1.0).unwrap();
        // Re-labelling a child does not disturb the parent.
        let relabelled = budget.child().with_stage("source_stepping");
        let mut meter = relabelled.meter();
        meter.note_iteration(0.5).unwrap();
        assert_eq!(
            *seen.lock().unwrap(),
            vec![Some("gmin_stepping"), Some("source_stepping")]
        );
        assert_eq!(budget.stage(), Some("gmin_stepping"));
    }

    #[test]
    fn announce_stage_emits_a_zero_iteration_snapshot() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let budget = SolveBudget::unlimited()
            .with_progress(move |p| sink.lock().unwrap().push((p.iteration, p.stage)))
            .with_stage("gmin_stepping");
        budget.announce_stage();
        // Without a callback it is a no-op, not a panic.
        SolveBudget::unlimited().announce_stage();
        assert_eq!(*seen.lock().unwrap(), vec![(0, Some("gmin_stepping"))]);
    }

    #[test]
    fn interrupted_display_is_informative() {
        let i = SolveInterrupted {
            reason: InterruptReason::DeadlineExpired,
            iterations: 12,
            best_residual: 3.4e-2,
            elapsed: Duration::from_millis(250),
        };
        let s = i.to_string();
        assert!(s.contains("deadline_expired"));
        assert!(s.contains("12"));
    }
}
