//! Parallel-scaling tests for the worker pool and the pipelined numeric
//! refactorisation.
//!
//! These are `#[ignore]`d by default: they measure wall-clock speedup, so
//! they only mean something on a multi-core host and would be pure noise
//! on the single-core containers that run the main suite (PR 2 had to
//! leave pool scaling untested for exactly that reason). The CI
//! `multi-core` job runs them explicitly with `--ignored` on a 4-vCPU
//! runner; locally: `cargo test -p rfsim-numerics --test parallel_scaling
//! -- --ignored`. Each test skips itself (with a message) when fewer than
//! two cores are available.

use std::time::{Duration, Instant};

use rfsim_numerics::pool::WorkerPool;
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::sparse_lu::{LuOptions, Ordering, SparseLu};

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Pure CPU spin for a deterministic amount of work (no sleeping — sleep
/// parallelises perfectly even on one core and would prove nothing).
fn spin_work(iters: u64) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..iters {
        acc += (i as f64).sqrt().sin();
    }
    acc
}

/// Minimum elapsed time of `reps` runs of `f` (minimum filters scheduler
/// noise far better than the mean).
fn min_elapsed(reps: usize, mut f: impl FnMut()) -> Duration {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .expect("reps > 0")
}

#[test]
#[ignore = "wall-clock scaling: run on a multi-core host via the CI multi-core job"]
fn pool_speeds_up_cpu_bound_batches() {
    let cores = cores();
    if cores < 2 {
        eprintln!("skipping: single-core host (available_parallelism = {cores})");
        return;
    }
    let width = cores.min(4);
    let jobs = 4 * width;
    let per_job = 4_000_000u64;
    let sequential = min_elapsed(3, || {
        let out = WorkerPool::new(1).run(jobs, |_| spin_work(per_job));
        assert_eq!(out.len(), jobs);
    });
    let parallel = min_elapsed(3, || {
        let out = WorkerPool::new(width).run(jobs, |_| spin_work(per_job));
        assert_eq!(out.len(), jobs);
    });
    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    eprintln!("pool width {width}: sequential {sequential:?}, parallel {parallel:?}, speedup {speedup:.2}x");
    assert!(
        speedup > 1.3,
        "width-{width} pool should beat sequential on {cores} cores: {speedup:.2}x"
    );
}

#[test]
#[ignore = "wall-clock scaling: run on a multi-core host via the CI multi-core job"]
fn parallel_refactor_speeds_up_block_jacobians() {
    let cores = cores();
    if cores < 2 {
        eprintln!("skipping: single-core host (available_parallelism = {cores})");
        return;
    }
    // Many independent dense blocks: the elimination DAG is embarrassingly
    // parallel across blocks, so the column pipeline should approach the
    // pool width. This is the favourable end of real Jacobians — the MPDE
    // grid's per-point circuit blocks with weak inter-point coupling.
    let (nblocks, bs) = (192, 24);
    let n = nblocks * bs;
    let mut t = Triplets::new(n, n);
    for blk in 0..nblocks {
        let base = blk * bs;
        for i in 0..bs {
            for j in 0..bs {
                let v = if i == j {
                    (bs as f64) + 1.0 + (i as f64) * 0.1
                } else {
                    0.5 * (((i * 7 + j * 3) % 5) as f64) - 1.0
                };
                t.push(base + i, base + j, v);
            }
        }
    }
    let a = t.to_csc();
    let opts = LuOptions {
        ordering: Ordering::Natural,
        ..Default::default()
    };
    let mut seq = SparseLu::factor(&a, opts).expect("factor");
    let mut par = seq.clone();
    let pool = WorkerPool::new(cores.min(4));
    let sequential = min_elapsed(5, || {
        seq.refactor_in_place(&a).expect("sequential refactor");
    });
    let parallel = min_elapsed(5, || {
        let report = par
            .refactor_in_place_parallel(&a, &pool)
            .expect("parallel refactor");
        assert!(report.parallel);
    });
    let speedup = sequential.as_secs_f64() / parallel.as_secs_f64();
    eprintln!(
        "refactor n={n}: sequential {sequential:?}, pipelined {parallel:?}, speedup {speedup:.2}x"
    );
    // Values must agree bit-for-bit regardless of scheduling.
    let b: Vec<f64> = (0..n).map(|k| ((k * 31 % 17) as f64) - 8.0).collect();
    assert_eq!(seq.solve(&b), par.solve(&b));
    assert!(
        speedup > 1.2,
        "pipeline should beat sequential on {cores} cores: {speedup:.2}x"
    );
}
