//! The in-place preconditioner refreshes must be allocation-free and
//! bit-identical to a rebuild: a counting global allocator wraps the
//! system allocator, and the single test below (one test per binary, so no
//! concurrent test thread pollutes the counter) asserts that
//! `Ilu0::refactor_in_place`, `BlockJacobiPrecond::refactor_in_place` and
//! both `apply` paths allocate nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rfsim_numerics::krylov::{BlockJacobiPrecond, Ilu0, Preconditioner};
use rfsim_numerics::sparse::Triplets;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

/// A block-structured matrix in the shape of an MPDE grid Jacobian:
/// `nb` diagonal circuit blocks of size `bs` plus inter-block coupling on
/// the superdiagonal, with every row carrying its diagonal (so both ILU(0)
/// and block-Jacobi accept it).
fn grid_like(nb: usize, bs: usize, gain: f64) -> Triplets {
    let n = nb * bs;
    let mut t = Triplets::new(n, n);
    for b in 0..nb {
        let base = b * bs;
        for i in 0..bs {
            for j in 0..bs {
                let v = if i == j {
                    4.0 + gain + (base + i) as f64 * 0.01
                } else {
                    gain * 0.3 - 0.5
                };
                t.push(base + i, base + j, v);
            }
            if b + 1 < nb {
                t.push(base + i, base + bs + i, -0.25 * gain);
            }
        }
    }
    t
}

#[test]
fn precond_refresh_is_allocation_free_and_bit_identical() {
    let a1 = grid_like(6, 4, 1.0).to_csr();
    let a2 = grid_like(6, 4, 1.7).to_csr();
    let n = a1.rows();
    let r: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
    let mut z_refresh = vec![0.0; n];
    let mut z_rebuild = vec![0.0; n];

    // --- ILU(0): refresh ≡ rebuild, with zero allocations. ---
    let mut ilu = Ilu0::new(&a1).expect("ilu new");
    let before = allocations();
    ilu.refactor_in_place(&a2).expect("ilu refresh");
    assert_eq!(
        allocations(),
        before,
        "Ilu0::refactor_in_place must not allocate"
    );
    let rebuilt = Ilu0::new(&a2).expect("ilu rebuild");
    let before = allocations();
    ilu.apply(&r, &mut z_refresh);
    assert_eq!(allocations(), before, "Ilu0::apply must not allocate");
    rebuilt.apply(&r, &mut z_rebuild);
    assert_eq!(z_refresh, z_rebuild, "ILU(0) refresh must be bit-identical");

    // --- Block-Jacobi: refresh ≡ rebuild, with zero allocations. ---
    let mut bj = BlockJacobiPrecond::new(&a1, 4).expect("bj new");
    let before = allocations();
    bj.refactor_in_place(&a2).expect("bj refresh");
    assert_eq!(
        allocations(),
        before,
        "BlockJacobiPrecond::refactor_in_place must not allocate"
    );
    let rebuilt = BlockJacobiPrecond::new(&a2, 4).expect("bj rebuild");
    let before = allocations();
    bj.apply(&r, &mut z_refresh);
    assert_eq!(
        allocations(),
        before,
        "BlockJacobiPrecond::apply must not allocate"
    );
    rebuilt.apply(&r, &mut z_rebuild);
    assert_eq!(
        z_refresh, z_rebuild,
        "block-Jacobi refresh must be bit-identical"
    );

    // Pattern/dimension gates: a different structure is rejected, factors
    // left usable.
    let odd = grid_like(6, 4, 1.0);
    let mut odd_plus = Triplets::new(24, 24);
    {
        let csr = odd.to_csr();
        for i in 0..24 {
            let (cols, vals) = csr.row(i);
            for (c, v) in cols.iter().zip(vals) {
                odd_plus.push(i, *c, *v);
            }
        }
        odd_plus.push(0, 23, 0.125);
    }
    assert!(ilu.refactor_in_place(&odd_plus.to_csr()).is_err());
    assert!(bj
        .refactor_in_place(&grid_like(5, 4, 1.0).to_csr())
        .is_err());
}
