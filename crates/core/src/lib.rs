//! Sheared multi-time PDE (MPDE) steady-state engine for closely spaced
//! tones — the core contribution of Roychowdhury, *"A Time-domain RF
//! Steady-State Method for Closely Spaced Tones"*, DAC 2002.
//!
//! # The method in one paragraph
//!
//! A circuit driven by tones `f1 ≈ f2` has steady-state content at the tiny
//! difference frequency `fd = k·f1 − f2`. The multi-time idea rewrites the
//! circuit DAE `q̇ + f(x) + b = 0` as a PDE over two artificial time axes,
//! `∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂) + b̂(t1,t2) = 0`, whose diagonal
//! `x(t) = x̂(t,t)` solves the original problem. For closely spaced tones
//! the trick (the paper's contribution) is that `b̂` is **not unique**: by
//! *shearing* — representing the RF carrier as
//! `cos(2π(k·f1·t1 − fd·t2))` — the second axis becomes a
//! difference-frequency time scale of period `Td = 1/fd`, and the solution
//! grid `[0, 1/f1) × [0, Td)` directly exhibits baseband envelopes
//! (bit streams, conversion gain, distortion) on its slow axis. The grid
//! needs `N1·N2` points (40×30 = 1200 in the paper) instead of the
//! `~10·f1/fd` time steps (~300 000) a single-time method requires.
//!
//! # Modules
//!
//! * [`shear`] — shear maps and the ideal-mixing surfaces of Figs. 1–2.
//! * [`grid`] — multitime grids, solutions, envelope/harmonic extraction,
//!   and diagonal reconstruction.
//! * [`fdtd`] — the finite-difference MPDE system (residual + Jacobian).
//! * [`solver`] — the high-level solve: initial guess → Newton →
//!   continuation fallback.
//! * [`envelope`] — envelope-following (slow-axis time stepping), used both
//!   as a solver and as an initial-guess generator.
//! * [`continuation`] — source-ramping homotopy (the paper's "continuation
//!   reliably obtained solutions").
//!
//! # Example
//!
//! ```
//! use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, Waveform, GROUND};
//! use rfsim_mpde::solver::{solve_mpde, MpdeOptions};
//!
//! # fn main() -> Result<(), rfsim_circuit::CircuitError> {
//! // RC filter driven by a sheared carrier: f2 = f1 − fd.
//! let (f1, fd) = (1e6, 1e3);
//! let mut b = CircuitBuilder::new();
//! let inp = b.node("in");
//! let out = b.node("out");
//! b.vsource("VRF", inp, GROUND, BiWaveform::ShearedCarrier {
//!     amplitude: 1.0, k: 1, f1, fd, phase: 0.0, envelope: Envelope::Unit,
//! })?;
//! b.resistor("R1", inp, out, 1e3)?;
//! b.capacitor("C1", out, GROUND, 1e-9)?;
//! let circuit = b.build()?;
//! let sol = solve_mpde(&circuit, 1.0 / f1, 1.0 / fd, MpdeOptions {
//!     n1: 16, n2: 8, ..Default::default()
//! })?;
//! assert_eq!(sol.grid.shape(), (16, 8));
//! # Ok(())
//! # }
//! ```

pub mod continuation;
pub mod envelope;
pub mod fdtd;
pub mod grid;
pub mod shear;
pub mod solver;

pub use grid::{MultitimeGrid, MultitimeSolution};
pub use shear::ShearMap;
pub use solver::{solve_mpde, MpdeOptions, MpdeSolution, MpdeStats, MpdeStrategy};
