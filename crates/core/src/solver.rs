//! High-level MPDE solve: initial guess → global Newton → continuation.
//!
//! Mirrors the paper's workflow: with a good starting guess, global
//! Newton-Raphson on the 40×30 grid converged in 26 iterations; when it did
//! not converge, continuation reliably obtained solutions. Here the
//! "good starting guess" can be the replicated DC operating point or a few
//! envelope-following sweeps.

use std::cell::RefCell;

use rfsim_circuit::driver::{NewtonDriver, NewtonProfile, Rung, RungExec, RungKind};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions, NewtonSystem};
use rfsim_circuit::{Circuit, Result};
use rfsim_numerics::diff::DiffScheme;
use rfsim_numerics::sparse::{PatternFingerprint, Triplets};
use rfsim_numerics::SolveBudget;

use crate::continuation::{continuation_solve_rung, ContinuationOptions};
use crate::envelope::{envelope_follow_budgeted, EnvelopeOptions};
use crate::fdtd::MpdeSystem;
use crate::grid::{MultitimeGrid, MultitimeSolution};

/// How the Newton iteration is seeded.
#[derive(Debug, Clone)]
pub enum InitialGuess {
    /// Replicate the DC operating point across the grid (cheapest).
    DcReplicate,
    /// Run envelope-following sweeps first (most robust seed).
    EnvelopeFollowing {
        /// Number of slow-period sweeps.
        sweeps: usize,
    },
    /// Caller-provided flattened samples (e.g. a previous solution on the
    /// same grid, for warm-started parameter sweeps).
    Samples(Vec<f64>),
}

/// Options for [`solve_mpde`].
#[derive(Debug, Clone)]
pub struct MpdeOptions {
    /// Fast-axis grid points (paper: 40).
    pub n1: usize,
    /// Slow-axis grid points (paper: 30).
    pub n2: usize,
    /// Fast-axis differentiation scheme.
    pub scheme1: DiffScheme,
    /// Slow-axis differentiation scheme.
    pub scheme2: DiffScheme,
    /// Newton options for the global solve.
    pub newton: NewtonOptions,
    /// Initial guess strategy.
    pub initial_guess: InitialGuess,
    /// Fall back to source-ramping continuation if plain Newton fails.
    pub continuation_fallback: bool,
    /// Continuation options for the fallback.
    pub continuation: ContinuationOptions,
}

impl Default for MpdeOptions {
    fn default() -> Self {
        MpdeOptions {
            n1: 40,
            n2: 30,
            scheme1: DiffScheme::BackwardEuler,
            scheme2: DiffScheme::BackwardEuler,
            // Chord (modified-Newton) reuse amortises the large grid
            // factorisations — the driver's Grid profile.
            newton: NewtonProfile::Grid.options(),
            initial_guess: InitialGuess::DcReplicate,
            continuation_fallback: true,
            continuation: ContinuationOptions::default(),
        }
    }
}

/// Which strategy produced the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpdeStrategy {
    /// Plain Newton from the initial guess.
    Newton,
    /// Source-ramping continuation.
    Continuation,
}

/// Statistics of an MPDE solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpdeStats {
    /// Newton iterations of the final (or only) solve.
    pub newton_iterations: usize,
    /// Total Newton iterations including continuation inner solves.
    pub total_newton_iterations: usize,
    /// Continuation steps taken (0 for plain Newton).
    pub continuation_steps: usize,
    /// Strategy that succeeded.
    pub strategy: MpdeStrategy,
    /// Total grid unknowns (`n·N1·N2`).
    pub system_size: usize,
}

/// An MPDE solution with its statistics.
#[derive(Debug, Clone)]
pub struct MpdeSolution {
    /// The multitime grid (exposed for plotting/reconstruction).
    pub grid: MultitimeGrid,
    /// The solution data.
    pub solution: MultitimeSolution,
    /// Solve statistics.
    pub stats: MpdeStats,
}

/// Fingerprint of the MPDE grid Jacobian's CSC structure for `circuit`
/// under `options` — the exact pattern every Newton iteration of
/// [`solve_mpde`] assembles, so two solves with equal fingerprints can
/// share one warmed [`LinearSolverWorkspace`].
///
/// The structure depends on the circuit's element connectivity, the grid
/// shape `n1 × n2` and both differentiation stencils, but not on element
/// values, source amplitudes or the periods (stamps keep exact zeros, so
/// the pattern is value-independent). Costs one Jacobian assembly at the
/// zero state — pay it once per topology group, not per sweep point.
///
/// # Errors
///
/// Propagates [`crate::fdtd::MpdeSystem`] construction failures (e.g. a
/// source without a bivariate waveform).
pub fn mpde_jacobian_fingerprint(
    circuit: &Circuit,
    t1_period: f64,
    t2_period: f64,
    options: &MpdeOptions,
) -> Result<PatternFingerprint> {
    let grid = MultitimeGrid::new(options.n1, options.n2, t1_period, t2_period);
    let system = MpdeSystem::new(circuit, grid, options.scheme1, options.scheme2)?;
    let dim = system.dim();
    let x0 = vec![0.0; dim];
    let mut residual = vec![0.0; dim];
    let mut jac = Triplets::with_capacity(dim, dim, 16 * dim);
    system.residual_and_jacobian(&x0, &mut residual, &mut jac);
    Ok(jac.pattern_fingerprint())
}

/// Solves the sheared MPDE of a circuit over `[0, t1_period) ×
/// [0, t2_period)`.
///
/// `t1_period` is the LO period `1/f1` and `t2_period` the difference
/// period `Td = 1/fd`; the shearing itself is carried by the circuit's
/// bivariate sources (see [`rfsim_circuit::BiWaveform::ShearedCarrier`]).
///
/// # Errors
///
/// * Missing bivariate waveforms on time-varying sources.
/// * Convergence failure of both Newton and (if enabled) continuation.
pub fn solve_mpde(
    circuit: &Circuit,
    t1_period: f64,
    t2_period: f64,
    options: MpdeOptions,
) -> Result<MpdeSolution> {
    let mut workspace = LinearSolverWorkspace::new();
    solve_mpde_with_workspace(circuit, t1_period, t2_period, options, &mut workspace)
}

/// [`solve_mpde`] with caller-owned linear-solver state.
///
/// The grid Jacobian's structure depends only on the circuit and the grid,
/// so warm-started parameter sweeps (same circuit, same `n1 × n2`) that
/// pass one workspace across calls pay for the RCM ordering, symbolic
/// reach and pivot search exactly once; the workspace is also shared with
/// the continuation fallback inside each call.
///
/// # Errors
///
/// See [`solve_mpde`].
pub fn solve_mpde_with_workspace(
    circuit: &Circuit,
    t1_period: f64,
    t2_period: f64,
    options: MpdeOptions,
    workspace: &mut LinearSolverWorkspace,
) -> Result<MpdeSolution> {
    solve_mpde_budgeted(
        circuit,
        t1_period,
        t2_period,
        options,
        workspace,
        &SolveBudget::unlimited(),
    )
}

/// [`solve_mpde_with_workspace`] under a [`SolveBudget`].
///
/// The budget covers the initial-guess construction (DC solve or envelope
/// sweeps), the global Newton solve and the continuation fallback. An
/// interrupted Newton attempt aborts the call instead of falling back to
/// continuation: cancellation is a control-plane stop, not a convergence
/// failure.
///
/// # Errors
///
/// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops a
/// solve, plus everything [`solve_mpde`] returns.
pub fn solve_mpde_budgeted(
    circuit: &Circuit,
    t1_period: f64,
    t2_period: f64,
    options: MpdeOptions,
    workspace: &mut LinearSolverWorkspace,
    budget: &SolveBudget,
) -> Result<MpdeSolution> {
    let grid = MultitimeGrid::new(options.n1, options.n2, t1_period, t2_period);
    let n = circuit.num_unknowns();
    let system = MpdeSystem::new(circuit, grid, options.scheme1, options.scheme2)?;
    let kinds = system.kinds().to_vec();
    let dim = system.dim();
    // Both rung closures need the system — the continuation rung mutably
    // (it ramps λ) — so it lives in a RefCell shared by the ladder.
    let system = RefCell::new(system);

    let x0: Vec<f64> = match &options.initial_guess {
        InitialGuess::DcReplicate => {
            let op = rfsim_circuit::dcop::dc_operating_point_budgeted(
                circuit,
                Default::default(),
                budget,
            )?;
            let mut v = Vec::with_capacity(grid.num_points() * n);
            for _ in 0..grid.num_points() {
                v.extend_from_slice(&op.solution);
            }
            v
        }
        InitialGuess::EnvelopeFollowing { sweeps } => {
            let env = envelope_follow_budgeted(
                circuit,
                grid,
                EnvelopeOptions {
                    scheme1: options.scheme1,
                    sweeps: *sweeps,
                    newton: options.newton,
                },
                budget,
            )?;
            env.data
        }
        InitialGuess::Samples(s) => s.clone(),
    };

    // The paper's two-rung ladder: global Newton from the seed, then
    // source-ramping continuation. The driver classifies the failure —
    // interruptions and structural errors abort without falling back.
    let mut rungs: Vec<Rung<'_, (Vec<f64>, MpdeStats)>> =
        vec![Rung::new(RungKind::Plain, |exec: &mut RungExec<'_>| {
            let sys = system.borrow();
            let (data, stats) = exec.newton(&*sys, &x0, &kinds)?;
            Ok((
                data,
                MpdeStats {
                    newton_iterations: stats.iterations,
                    total_newton_iterations: stats.iterations,
                    continuation_steps: 0,
                    strategy: MpdeStrategy::Newton,
                    system_size: dim,
                },
            ))
        })];
    if options.continuation_fallback {
        rungs.push(Rung::new(
            RungKind::Continuation,
            |exec: &mut RungExec<'_>| {
                let mut sys = system.borrow_mut();
                let (data, cstats) =
                    continuation_solve_rung(&mut sys, &x0, options.continuation, exec)?;
                Ok((
                    data,
                    MpdeStats {
                        newton_iterations: 0,
                        total_newton_iterations: cstats.newton_iterations,
                        continuation_steps: cstats.accepted_steps,
                        strategy: MpdeStrategy::Continuation,
                        system_size: dim,
                    },
                ))
            },
        ));
    }
    let outcome =
        NewtonDriver::new(options.newton).solve_ladder("mpde", workspace, budget, rungs)?;
    let (data, stats) = outcome.value;
    Ok(MpdeSolution {
        grid,
        solution: MultitimeSolution::new(grid, n, data),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, Waveform, GROUND};
    use std::f64::consts::PI;

    fn rc_sheared(f1: f64, fd: f64, r: f64, c: f64) -> (Circuit, usize) {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )
        .expect("v");
        b.resistor("R1", inp, out, r).expect("r");
        b.capacitor("C1", out, GROUND, c).expect("c");
        let ckt = b.build().expect("build");
        let idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        (ckt, idx)
    }

    #[test]
    fn linear_rc_matches_analytic_response_at_f2() {
        // The MPDE solution of a linear filter driven by the sheared carrier
        // cos(2π(f1·t1 − fd·t2)) is the response at the *diagonal* frequency
        // f2 = f1 − fd: amplitude |H(f2)|, phase ∠H(f2).
        let (f1, fd) = (1e6, 10e3);
        let (r, c) = (1e3, 160e-12); // pole ≈ 1 MHz
        let (ckt, out) = rc_sheared(f1, fd, r, c);
        let sol = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 64,
                n2: 16,
                scheme1: DiffScheme::Central2,
                scheme2: DiffScheme::Central2,
                ..Default::default()
            },
        )
        .expect("mpde");
        let f2 = f1 - fd;
        let w = 2.0 * PI * f2 * r * c;
        let mag = 1.0 / (1.0 + w * w).sqrt();
        // Fast-axis fundamental amplitude (incoherent average over t2 rows —
        // the sheared carrier's phase rotates with t2) should be |H(f2)|.
        let a = sol.solution.fast_harmonic_magnitude(out, 1);
        assert!(
            (a - mag).abs() < 0.02,
            "MPDE amplitude {a} vs analytic |H(f2)| = {mag}"
        );
        assert_eq!(sol.stats.strategy, MpdeStrategy::Newton);
    }

    #[test]
    fn ideal_multiplier_mixer_downconverts() {
        // LO on axis 1, RF sheared with k=1: the multiplier output contains
        // the difference tone cos(2π·fd·t2) visible directly on the t2 axis.
        let (f1, fd) = (1e6, 10e3);
        let mut b = CircuitBuilder::new();
        let lo = b.node("lo");
        let rf = b.node("rf");
        let out = b.node("out");
        b.vsource(
            "VLO",
            lo,
            GROUND,
            BiWaveform::Axis1(Waveform::cosine(1.0, f1)),
        )
        .expect("vlo");
        b.vsource(
            "VRF",
            rf,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )
        .expect("vrf");
        b.multiplier("MIX", out, GROUND, lo, GROUND, rf, GROUND, 1e-3)
            .expect("mix");
        b.resistor("RL", out, GROUND, 1e3).expect("rl");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let sol = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 32,
                n2: 16,
                scheme1: DiffScheme::Central2,
                scheme2: DiffScheme::Central2,
                ..Default::default()
            },
        )
        .expect("mpde");
        // v_out = −K·R·cos(2πf1t1)·cos(2π(f1t1−fd·t2))
        //       = −½KR[cos(2πfd·t2) + cos(2π(2f1t1 − fd·t2))].
        // The baseband envelope (t1-average) is −½KR·cos(2π·fd·t2) = −0.5·cos.
        let env = sol.solution.envelope(out_idx);
        let n2 = env.len();
        for (j, v) in env.iter().enumerate() {
            let expect = -0.5 * (2.0 * PI * j as f64 / n2 as f64).cos();
            assert!(
                (v - expect).abs() < 0.01,
                "envelope[{j}] = {v}, expect {expect}"
            );
        }
        // Conversion "gain" via the harmonic extractor: |env harmonic 1| = ½KR.
        let h1 = sol.solution.baseband_harmonic(out_idx, 1).abs();
        assert!((h1 - 0.5).abs() < 0.01, "baseband fundamental {h1}");
    }

    #[test]
    fn bit_envelope_appears_on_slow_axis() {
        // Modulated carrier through the multiplier: the bit pattern is
        // readable from the sign of the baseband envelope (the paper's
        // "time-domain shape of the bit-stream", Fig. 4).
        let (f1, fd) = (1e6, 10e3);
        let bits = vec![true, false, true, true];
        let mut b = CircuitBuilder::new();
        let lo = b.node("lo");
        let rf = b.node("rf");
        let out = b.node("out");
        b.vsource(
            "VLO",
            lo,
            GROUND,
            BiWaveform::Axis1(Waveform::cosine(1.0, f1)),
        )
        .expect("vlo");
        b.vsource(
            "VRF",
            rf,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::bits(bits.clone(), 0.05),
            },
        )
        .expect("vrf");
        b.multiplier("MIX", out, GROUND, lo, GROUND, rf, GROUND, 1e-3)
            .expect("mix");
        b.resistor("RL", out, GROUND, 1e3).expect("rl");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let sol = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 32,
                n2: 40,
                scheme1: DiffScheme::Central2,
                scheme2: DiffScheme::BackwardEuler,
                ..Default::default()
            },
        )
        .expect("mpde");
        let env = sol.solution.envelope(out_idx);
        // Mixing with cos·cos gives envelope −½·m(fd·t2)·cos(2π·fd·t2)…
        // No: carrier-phase product means env_j = −½·m_j·cos(2π·j/n2).
        // Check sign pattern at bit centres where cos ≠ 0 is messy; instead
        // demodulate: divide by −½cos(2πj/n2) where |cos| > 0.3.
        let n2 = env.len();
        let mut ok = 0;
        let mut checked = 0;
        for j in 0..n2 {
            let phase = 2.0 * PI * j as f64 / n2 as f64;
            let c = phase.cos();
            if c.abs() < 0.3 {
                continue;
            }
            let m = env[j] / (-0.5 * c);
            let bit_idx = (j * bits.len()) / n2;
            // Skip transition regions.
            let pos_in_bit = (j * bits.len()) as f64 / n2 as f64 - bit_idx as f64;
            if pos_in_bit < 0.15 {
                continue;
            }
            let expect = if bits[bit_idx] { 1.0 } else { -1.0 };
            checked += 1;
            if (m - expect).abs() < 0.2 {
                ok += 1;
            }
        }
        assert!(checked >= 10, "enough demodulation points: {checked}");
        assert!(
            ok as f64 >= 0.9 * checked as f64,
            "bit pattern recovered at {ok}/{checked} points"
        );
    }

    #[test]
    fn diagonal_reconstruction_matches_long_transient() {
        // Small disparity so a full transient to steady state is cheap.
        let (f1, fd) = (1e5, 1e4); // disparity 10
        let (r, c) = (1e3, 1.6e-9); // pole ≈ 100 kHz
        let (ckt, out) = rc_sheared(f1, fd, r, c);
        let sol = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 64,
                n2: 64,
                scheme1: DiffScheme::Central2,
                scheme2: DiffScheme::Central2,
                ..Default::default()
            },
        )
        .expect("mpde");
        // Transient for 5 slow periods; compare the last one.
        let res = rfsim_circuit::transient::transient(
            &ckt,
            rfsim_circuit::transient::TransientOptions {
                t_stop: 5.0 / fd,
                dt_init: 0.02 / f1,
                dt_max: 0.05 / f1,
                integrator: rfsim_circuit::transient::Integrator::Trapezoidal,
                ..Default::default()
            },
        )
        .expect("transient");
        let t0 = 4.0 / fd;
        let pts = sol
            .solution
            .reconstruct_diagonal(out, t0, t0 + 1.0 / fd, 200);
        let mut worst = 0.0f64;
        for &(t, v) in &pts {
            let tr = res.sample(out, t);
            worst = worst.max((v - tr).abs());
        }
        assert!(
            worst < 0.05,
            "diagonal reconstruction vs transient: worst {worst}"
        );
    }

    #[test]
    fn warm_start_from_previous_solution() {
        let (f1, fd) = (1e6, 10e3);
        let (ckt, _) = rc_sheared(f1, fd, 1e3, 160e-12);
        let base = MpdeOptions {
            n1: 16,
            n2: 8,
            ..Default::default()
        };
        let first = solve_mpde(&ckt, 1.0 / f1, 1.0 / fd, base.clone()).expect("cold");
        let warm = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                initial_guess: InitialGuess::Samples(first.solution.data.clone()),
                ..base
            },
        )
        .expect("warm");
        assert!(
            warm.stats.newton_iterations <= 2,
            "warm start converges immediately: {}",
            warm.stats.newton_iterations
        );
    }

    #[test]
    fn gmres_block_jacobi_matches_direct() {
        // The paper's "iterative linear solution methods": GMRES with a
        // per-grid-point block-Jacobi preconditioner must reproduce the
        // direct-LU solution.
        let (f1, fd) = (1e6, 10e3);
        let (ckt, out) = rc_sheared(f1, fd, 1e3, 160e-12);
        let n = ckt.num_unknowns();
        let base = MpdeOptions {
            n1: 16,
            n2: 8,
            ..Default::default()
        };
        let direct = solve_mpde(&ckt, 1.0 / f1, 1.0 / fd, base.clone()).expect("direct");
        let gmres = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                newton: rfsim_circuit::newton::NewtonOptions {
                    linear: rfsim_circuit::newton::LinearSolver::GmresBlockJacobi {
                        block_size: n,
                        rtol: 1e-10,
                        restart: 60,
                        max_iters: 4000,
                    },
                    ..Default::default()
                },
                ..base
            },
        )
        .expect("gmres");
        let d = rfsim_numerics::vector::norm_inf(&rfsim_numerics::vector::sub(
            &direct.solution.surface(out),
            &gmres.solution.surface(out),
        ));
        assert!(d < 1e-5, "direct vs GMRES surfaces differ by {d}");
    }

    #[test]
    fn envelope_following_guess_works() {
        let (f1, fd) = (1e6, 10e3);
        let (ckt, out) = rc_sheared(f1, fd, 1e3, 160e-12);
        let sol = solve_mpde(
            &ckt,
            1.0 / f1,
            1.0 / fd,
            MpdeOptions {
                n1: 16,
                n2: 8,
                initial_guess: InitialGuess::EnvelopeFollowing { sweeps: 1 },
                ..Default::default()
            },
        )
        .expect("mpde");
        let peak = sol
            .solution
            .surface(out)
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak > 0.3 && peak <= 1.0, "plausible output: {peak}");
    }
}
