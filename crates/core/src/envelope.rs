//! Envelope following: time stepping along the slow axis.
//!
//! One of the time-domain MPDE solution methods of [Roychowdhury 2001]:
//! discretise `∂/∂t2` by backward Euler and march row by row; each row is a
//! 1-D periodic problem along `t1` (same structure as
//! `rfsim_shooting::periodic_fd`, plus the slow-derivative term).
//! Marching one full slow period gives an approximately `t2`-periodic
//! solution; repeated sweeps converge to the steady state for contracting
//! (dissipative) circuits. The global-Newton solver uses a sweep or two as
//! a high-quality initial guess.

use rfsim_circuit::driver::{NewtonDriver, NewtonProfile};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions, NewtonSystem};
use rfsim_circuit::{Circuit, Result, UnknownKind};
use rfsim_numerics::diff::DiffScheme;
use rfsim_numerics::sparse::Triplets;
use rfsim_numerics::SolveBudget;

use crate::grid::{MultitimeGrid, MultitimeSolution};

/// Options for [`envelope_follow`].
#[derive(Debug, Clone, Copy)]
pub struct EnvelopeOptions {
    /// Fast-axis differentiation scheme.
    pub scheme1: DiffScheme,
    /// Sweeps over the slow period (≥1). More sweeps → better
    /// `t2`-periodicity.
    pub sweeps: usize,
    /// Newton options for the per-row solves.
    pub newton: NewtonOptions,
}

impl Default for EnvelopeOptions {
    fn default() -> Self {
        EnvelopeOptions {
            scheme1: DiffScheme::default(),
            sweeps: 2,
            // Each row is a 1-D periodic boundary-value problem — the
            // steady-state profile's deeper budget.
            newton: NewtonProfile::SteadyState.options(),
        }
    }
}

/// One slow-axis row's nonlinear system: periodic in `t1`, backward-Euler
/// coupled to the previous row in `t2`.
struct RowSystem<'a> {
    circuit: &'a Circuit,
    n1: usize,
    t1_period: f64,
    scheme1: DiffScheme,
    /// `1/h2`, or 0 for the quasi-static initial row (no slow derivative).
    inv_h2: f64,
    /// Charge at the previous row, flattened `n1 × n`.
    q_prev: Vec<f64>,
    /// Excitation at this row, flattened `n1 × n`.
    b_row: Vec<f64>,
}

impl RowSystem<'_> {
    fn n(&self) -> usize {
        self.circuit.num_unknowns()
    }
}

impl NewtonSystem for RowSystem<'_> {
    fn dim(&self) -> usize {
        self.n() * self.n1
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n();
        let h1 = self.t1_period / self.n1 as f64;
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for i in 0..self.n1 {
            let src = i * n;
            let xi = &x[src..src + n];
            self.circuit.eval_q(xi, &mut q, None);
            for &(off, w) in self.scheme1.stencil() {
                let row = (i as isize - off).rem_euclid(self.n1 as isize) as usize;
                for u in 0..n {
                    out[row * n + u] += w / h1 * q[u];
                }
            }
            self.circuit.eval_f(xi, &mut f, None);
            for u in 0..n {
                out[src + u] +=
                    f[u] + self.b_row[src + u] + self.inv_h2 * (q[u] - self.q_prev[src + u]);
            }
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = self.n();
        let h1 = self.t1_period / self.n1 as f64;
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for i in 0..self.n1 {
            let src = i * n;
            let xi = &x[src..src + n];
            let mut c_trip = Triplets::with_capacity(n, n, 8 * n);
            let mut g_trip = Triplets::with_capacity(n, n, 8 * n);
            self.circuit.eval_q(xi, &mut q, Some(&mut c_trip));
            self.circuit.eval_f(xi, &mut f, Some(&mut g_trip));
            let c = c_trip.to_csr();
            for &(off, w) in self.scheme1.stencil() {
                let row_blk = (i as isize - off).rem_euclid(self.n1 as isize) as usize;
                for u in 0..n {
                    out[row_blk * n + u] += w / h1 * q[u];
                }
                for r in 0..n {
                    let (cols, vals) = c.row(r);
                    for (cc, v) in cols.iter().zip(vals) {
                        jac.push(row_blk * n + r, src + cc, w / h1 * v);
                    }
                }
            }
            // Slow BE term: ∂/∂x of inv_h2·q(x_i) on the diagonal block.
            if self.inv_h2 != 0.0 {
                for r in 0..n {
                    let (cols, vals) = c.row(r);
                    for (cc, v) in cols.iter().zip(vals) {
                        jac.push(src + r, src + cc, self.inv_h2 * v);
                    }
                }
            }
            let g = g_trip.to_csr();
            for r in 0..n {
                let (cols, vals) = g.row(r);
                for (cc, v) in cols.iter().zip(vals) {
                    jac.push(src + r, src + cc, *v);
                }
            }
            for u in 0..n {
                out[src + u] +=
                    f[u] + self.b_row[src + u] + self.inv_h2 * (q[u] - self.q_prev[src + u]);
            }
        }
    }
}

/// Solves the MPDE by envelope following over `sweeps` slow periods and
/// returns the last sweep as a multitime solution.
///
/// # Errors
///
/// Propagates DC and Newton failures (including missing bivariate sources).
pub fn envelope_follow(
    circuit: &Circuit,
    grid: MultitimeGrid,
    options: EnvelopeOptions,
) -> Result<MultitimeSolution> {
    envelope_follow_budgeted(circuit, grid, options, &SolveBudget::unlimited())
}

/// [`envelope_follow`] under a [`SolveBudget`]: the budget covers the DC
/// seed and every per-row Newton solve of every sweep.
///
/// # Errors
///
/// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops a
/// solve, plus everything [`envelope_follow`] returns.
pub fn envelope_follow_budgeted(
    circuit: &Circuit,
    grid: MultitimeGrid,
    options: EnvelopeOptions,
    budget: &SolveBudget,
) -> Result<MultitimeSolution> {
    let n = circuit.num_unknowns();
    let (n1, n2) = grid.shape();
    let h2 = grid.h2();
    let mut kinds: Vec<UnknownKind> = Vec::with_capacity(n1 * n);
    for _ in 0..n1 {
        kinds.extend_from_slice(circuit.unknown_kinds());
    }

    // Excitation rows.
    let mut b_rows = Vec::with_capacity(n2);
    let mut b = vec![0.0; n];
    for j in 0..n2 {
        let mut row = vec![0.0; n1 * n];
        for i in 0..n1 {
            circuit.eval_b_bi(grid.t1(i), grid.t2(j), &mut b)?;
            row[i * n..(i + 1) * n].copy_from_slice(&b);
        }
        b_rows.push(row);
    }

    // Quasi-static initial row (no slow derivative) at j = 0.
    let dc = rfsim_circuit::dcop::dc_operating_point_budgeted(circuit, Default::default(), budget)?;
    let mut row_guess = Vec::with_capacity(n1 * n);
    for _ in 0..n1 {
        row_guess.extend_from_slice(&dc.solution);
    }
    let sys0 = RowSystem {
        circuit,
        n1,
        t1_period: grid.t1_period(),
        scheme1: options.scheme1,
        inv_h2: 0.0,
        q_prev: vec![0.0; n1 * n],
        b_row: b_rows[0].clone(),
    };
    // All row systems share one Jacobian structure (inv_h2 only scales
    // values): one workspace serves the whole sweep.
    let mut workspace = LinearSolverWorkspace::new();
    let driver = NewtonDriver::new(options.newton);
    let (mut row, _) = driver.solve(&sys0, &row_guess, &kinds, &mut workspace, budget)?;

    let mut data = vec![0.0; n1 * n2 * n];
    let mut q_prev = row_charge(circuit, &row, n1);
    for sweep in 0..options.sweeps.max(1) {
        for j in 0..n2 {
            // Row 0 of later sweeps wraps around from the last row, which is
            // what enforces t2-periodicity.
            if !(sweep == 0 && j == 0) {
                let sys = RowSystem {
                    circuit,
                    n1,
                    t1_period: grid.t1_period(),
                    scheme1: options.scheme1,
                    inv_h2: 1.0 / h2,
                    q_prev: q_prev.clone(),
                    b_row: b_rows[j].clone(),
                };
                let (new_row, _) = driver.solve(&sys, &row, &kinds, &mut workspace, budget)?;
                row = new_row;
                q_prev = row_charge(circuit, &row, n1);
            }
            // Store this row (grid layout: point(i,j)*n).
            for i in 0..n1 {
                let dst = grid.point(i, j) * n;
                data[dst..dst + n].copy_from_slice(&row[i * n..(i + 1) * n]);
            }
        }
    }
    Ok(MultitimeSolution::new(grid, n, data))
}

fn row_charge(circuit: &Circuit, row: &[f64], n1: usize) -> Vec<f64> {
    let n = circuit.num_unknowns();
    let mut out = vec![0.0; n1 * n];
    let mut q = vec![0.0; n];
    for i in 0..n1 {
        circuit.eval_q(&row[i * n..(i + 1) * n], &mut q, None);
        out[i * n..(i + 1) * n].copy_from_slice(&q);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, GROUND};
    use std::f64::consts::PI;

    #[test]
    fn rc_envelope_tracks_slow_modulation() {
        // RC low-pass (fast pole) driven by a sheared carrier with a slow
        // envelope: after following, the t2 axis shows the modulation.
        let (f1, fd) = (10e6, 10e3);
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )
        .expect("v");
        b.resistor("R1", inp, out, 100.0).expect("r");
        b.capacitor("C1", out, GROUND, 10e-12).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let grid = MultitimeGrid::new(32, 16, 1.0 / f1, 1.0 / fd);
        let sol = envelope_follow(
            &ckt,
            grid,
            EnvelopeOptions {
                scheme1: DiffScheme::Central2,
                sweeps: 3,
                ..Default::default()
            },
        )
        .expect("envelope");
        // RC pole at 1/(2π·100·10p) ≈ 159 MHz ≫ f1: output ≈ input.
        // At t1 = 0: x̂(0, t2) ≈ cos(−2π·fd·t2) = cos(2π·fd·t2).
        let slice = sol.t2_slice(out_idx, 0);
        for (j, v) in slice.iter().enumerate() {
            let expect = (2.0 * PI * j as f64 / 16.0).cos();
            assert!((v - expect).abs() < 0.12, "j={j}: got {v}, expect {expect}");
        }
    }

    #[test]
    fn sweeps_improve_t2_periodicity() {
        let (f1, fd) = (10e6, 100e3);
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::bits(vec![true, false], 0.2),
            },
        )
        .expect("v");
        // Slow RC: time constant comparable to Td → real envelope dynamics.
        b.resistor("R1", inp, out, 1e3).expect("r");
        b.capacitor("C1", out, GROUND, 2e-9).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let grid = MultitimeGrid::new(16, 32, 1.0 / f1, 1.0 / fd);
        let mismatch = |sweeps: usize| {
            let sol = envelope_follow(
                &ckt,
                grid,
                EnvelopeOptions {
                    sweeps,
                    ..Default::default()
                },
            )
            .expect("envelope");
            // t2-periodicity proxy: row 0 vs a backward-Euler step from the
            // final row (they should coincide at steady state). Compare the
            // first and last rows' envelope values.
            let env = sol.envelope(out_idx);
            (env[0] - env[31]).abs()
        };
        let m1 = mismatch(1);
        let m3 = mismatch(3);
        assert!(
            m3 <= m1 + 1e-12,
            "more sweeps should not worsen periodicity: {m1} -> {m3}"
        );
    }
}
