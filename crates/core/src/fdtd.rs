//! The finite-difference MPDE system (the paper's §2, discretised).
//!
//! On the periodic grid `[0,T1) × [0,T2)` the MPDE
//!
//! ```text
//! ∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂) + b̂(t1,t2) = 0
//! ```
//!
//! is collocated with sparse periodic difference stencils along each axis
//! (backward Euler by default — the robust choice for switching circuits;
//! central or BDF2 for higher accuracy). The resulting `n·N1·N2` nonlinear
//! system is handed to the damped Newton solver; its Jacobian couples each
//! grid point to its stencil neighbours only, so sparse LU with RCM
//! ordering (or GMRES+ILU(0)) stays tractable — this is the structural
//! reason the method beats 300 000-step shooting.
//!
//! Two homotopy knobs support the continuation solver:
//! * `lambda` scales the AC part of the excitation
//!   (`b_eff = b_dc + λ·(b̂ − b_dc)`),
//! * `gmin` adds a shunt conductance on every node-voltage row.

use rfsim_circuit::newton::NewtonSystem;
use rfsim_circuit::{Circuit, Result, UnknownKind};
use rfsim_numerics::diff::DiffScheme;
use rfsim_numerics::sparse::Triplets;

use crate::grid::MultitimeGrid;

/// The assembled MPDE collocation system for a given circuit and grid.
pub struct MpdeSystem<'a> {
    circuit: &'a Circuit,
    grid: MultitimeGrid,
    scheme1: DiffScheme,
    scheme2: DiffScheme,
    /// Bivariate excitation at each grid point (flattened like solutions).
    b_full: Vec<f64>,
    /// DC excitation (one circuit-sized vector).
    b_dc: Vec<f64>,
    /// Homotopy parameter scaling the AC excitation.
    lambda: f64,
    /// Shunt conductance added on node-voltage rows.
    gmin: f64,
    kinds: Vec<UnknownKind>,
}

impl<'a> MpdeSystem<'a> {
    /// Builds the system, caching the excitation on the grid.
    ///
    /// # Errors
    ///
    /// Fails if some time-varying source lacks a bivariate waveform.
    pub fn new(
        circuit: &'a Circuit,
        grid: MultitimeGrid,
        scheme1: DiffScheme,
        scheme2: DiffScheme,
    ) -> Result<Self> {
        let n = circuit.num_unknowns();
        let (n1, n2) = grid.shape();
        let mut b_full = vec![0.0; n1 * n2 * n];
        let mut b = vec![0.0; n];
        for j in 0..n2 {
            for i in 0..n1 {
                circuit.eval_b_bi(grid.t1(i), grid.t2(j), &mut b)?;
                let base = grid.point(i, j) * n;
                b_full[base..base + n].copy_from_slice(&b);
            }
        }
        let mut b_dc = vec![0.0; n];
        circuit.eval_b_dc(&mut b_dc);
        let mut kinds = Vec::with_capacity(n1 * n2 * n);
        for _ in 0..n1 * n2 {
            kinds.extend_from_slice(circuit.unknown_kinds());
        }
        Ok(MpdeSystem {
            circuit,
            grid,
            scheme1,
            scheme2,
            b_full,
            b_dc,
            lambda: 1.0,
            gmin: 0.0,
            kinds,
        })
    }

    /// The grid this system is collocated on.
    pub fn grid(&self) -> MultitimeGrid {
        self.grid
    }

    /// Per-unknown kinds replicated over the grid (for Newton tolerances).
    pub fn kinds(&self) -> &[UnknownKind] {
        &self.kinds
    }

    /// Sets the source homotopy parameter (`1.0` = full excitation).
    pub fn set_lambda(&mut self, lambda: f64) {
        self.lambda = lambda;
    }

    /// Sets the shunt conductance homotopy parameter (`0.0` = none).
    pub fn set_gmin(&mut self, gmin: f64) {
        self.gmin = gmin;
    }

    /// Effective excitation at a grid point under the current `lambda`.
    #[inline]
    fn b_eff(&self, flat_base: usize, u: usize) -> f64 {
        let full = self.b_full[flat_base + u];
        let dc = self.b_dc[u];
        dc + self.lambda * (full - dc)
    }

    fn n(&self) -> usize {
        self.circuit.num_unknowns()
    }
}

impl NewtonSystem for MpdeSystem<'_> {
    fn dim(&self) -> usize {
        self.n() * self.grid.num_points()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n();
        let (n1, n2) = self.grid.shape();
        let (h1, h2) = (self.grid.h1(), self.grid.h2());
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for j in 0..n2 {
            for i in 0..n1 {
                let src = self.grid.point(i, j) * n;
                let xj = &x[src..src + n];
                self.circuit.eval_q(xj, &mut q, None);
                // ∂/∂t1 stencil: q(x_{i,j}) feeds rows (i − off, j).
                for &(off, w) in self.scheme1.stencil() {
                    let row_i = (i as isize - off).rem_euclid(n1 as isize) as usize;
                    let dst = self.grid.point(row_i, j) * n;
                    let c = w / h1;
                    for u in 0..n {
                        out[dst + u] += c * q[u];
                    }
                }
                // ∂/∂t2 stencil: rows (i, j − off).
                for &(off, w) in self.scheme2.stencil() {
                    let row_j = (j as isize - off).rem_euclid(n2 as isize) as usize;
                    let dst = self.grid.point(i, row_j) * n;
                    let c = w / h2;
                    for u in 0..n {
                        out[dst + u] += c * q[u];
                    }
                }
                self.circuit.eval_f(xj, &mut f, None);
                for u in 0..n {
                    out[src + u] += f[u] + self.b_eff(src, u);
                    if self.gmin != 0.0 && self.kinds[src + u] == UnknownKind::NodeVoltage {
                        out[src + u] += self.gmin * xj[u];
                    }
                }
            }
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = self.n();
        let (n1, n2) = self.grid.shape();
        let (h1, h2) = (self.grid.h1(), self.grid.h2());
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for j in 0..n2 {
            for i in 0..n1 {
                let src = self.grid.point(i, j) * n;
                let xj = &x[src..src + n];
                let mut c_trip = Triplets::with_capacity(n, n, 8 * n);
                let mut g_trip = Triplets::with_capacity(n, n, 8 * n);
                self.circuit.eval_q(xj, &mut q, Some(&mut c_trip));
                self.circuit.eval_f(xj, &mut f, Some(&mut g_trip));
                let c = c_trip.to_csr();
                let scatter = |dst_gp: usize, coeff: f64, out: &mut [f64], jac: &mut Triplets| {
                    let dst = dst_gp * n;
                    for u in 0..n {
                        out[dst + u] += coeff * q[u];
                    }
                    for r in 0..n {
                        let (cols, vals) = c.row(r);
                        for (cc, v) in cols.iter().zip(vals) {
                            jac.push(dst + r, src + cc, coeff * v);
                        }
                    }
                };
                for &(off, w) in self.scheme1.stencil() {
                    let row_i = (i as isize - off).rem_euclid(n1 as isize) as usize;
                    scatter(self.grid.point(row_i, j), w / h1, out, jac);
                }
                for &(off, w) in self.scheme2.stencil() {
                    let row_j = (j as isize - off).rem_euclid(n2 as isize) as usize;
                    scatter(self.grid.point(i, row_j), w / h2, out, jac);
                }
                let g = g_trip.to_csr();
                for r in 0..n {
                    let (cols, vals) = g.row(r);
                    for (cc, v) in cols.iter().zip(vals) {
                        jac.push(src + r, src + cc, *v);
                    }
                }
                for u in 0..n {
                    out[src + u] += f[u] + self.b_eff(src, u);
                    if self.gmin != 0.0 && self.kinds[src + u] == UnknownKind::NodeVoltage {
                        out[src + u] += self.gmin * xj[u];
                        jac.push(src + u, src + u, self.gmin);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, GROUND};
    use rfsim_numerics::vector::norm_inf;

    fn rc_sheared(f1: f64, fd: f64) -> Circuit {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource(
            "VRF",
            inp,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1.0,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )
        .expect("v");
        b.resistor("R1", inp, out, 1e3).expect("r");
        b.capacitor("C1", out, GROUND, 1e-9).expect("c");
        b.build().expect("build")
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let ckt = rc_sheared(1e6, 1e3);
        let grid = MultitimeGrid::new(4, 3, 1e-6, 1e-3);
        let sys = MpdeSystem::new(
            &ckt,
            grid,
            DiffScheme::BackwardEuler,
            DiffScheme::BackwardEuler,
        )
        .expect("system");
        let dim = sys.dim();
        let x0: Vec<f64> = (0..dim)
            .map(|k| ((k * 13 % 7) as f64) * 0.1 - 0.3)
            .collect();
        let mut f0 = vec![0.0; dim];
        let mut jac = Triplets::new(dim, dim);
        sys.residual_and_jacobian(&x0, &mut f0, &mut jac);
        let jm = jac.to_csr();
        let h = 1e-6;
        let mut fp = vec![0.0; dim];
        for col in (0..dim).step_by(5) {
            let mut xp = x0.clone();
            xp[col] += h;
            sys.residual(&xp, &mut fp);
            for row in 0..dim {
                let fd = (fp[row] - f0[row]) / h;
                let j = jm.get(row, col);
                assert!(
                    (j - fd).abs() < 1e-3 * (1.0 + j.abs()),
                    "J[{row}][{col}] = {j} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn residual_and_jacobian_agree_on_residual() {
        let ckt = rc_sheared(1e6, 1e3);
        let grid = MultitimeGrid::new(6, 4, 1e-6, 1e-3);
        let sys = MpdeSystem::new(&ckt, grid, DiffScheme::Central2, DiffScheme::BackwardEuler)
            .expect("system");
        let dim = sys.dim();
        let x: Vec<f64> = (0..dim).map(|k| (k as f64 * 0.7).sin()).collect();
        let mut r1 = vec![0.0; dim];
        let mut r2 = vec![0.0; dim];
        let mut jac = Triplets::new(dim, dim);
        sys.residual(&x, &mut r1);
        sys.residual_and_jacobian(&x, &mut r2, &mut jac);
        let d: Vec<f64> = r1.iter().zip(&r2).map(|(a, b)| a - b).collect();
        assert!(norm_inf(&d) < 1e-12);
    }

    #[test]
    fn lambda_zero_removes_ac_excitation() {
        let ckt = rc_sheared(1e6, 1e3);
        let grid = MultitimeGrid::new(4, 4, 1e-6, 1e-3);
        let mut sys = MpdeSystem::new(
            &ckt,
            grid,
            DiffScheme::BackwardEuler,
            DiffScheme::BackwardEuler,
        )
        .expect("system");
        sys.set_lambda(0.0);
        // With λ=0 the excitation is DC (here: zero) → x = 0 solves exactly.
        let dim = sys.dim();
        let x = vec![0.0; dim];
        let mut r = vec![0.0; dim];
        sys.residual(&x, &mut r);
        assert!(norm_inf(&r) < 1e-14, "residual at λ=0: {}", norm_inf(&r));
    }

    #[test]
    fn gmin_adds_diagonal_on_voltage_rows() {
        let ckt = rc_sheared(1e6, 1e3);
        let grid = MultitimeGrid::new(2, 2, 1e-6, 1e-3);
        let mut sys = MpdeSystem::new(
            &ckt,
            grid,
            DiffScheme::BackwardEuler,
            DiffScheme::BackwardEuler,
        )
        .expect("system");
        sys.set_gmin(1e-3);
        sys.set_lambda(0.0);
        let dim = sys.dim();
        let x = vec![1.0; dim];
        let mut r_on = vec![0.0; dim];
        sys.residual(&x, &mut r_on);
        sys.set_gmin(0.0);
        let mut r_off = vec![0.0; dim];
        sys.residual(&x, &mut r_off);
        // Voltage rows differ by exactly gmin·1.0.
        let n = ckt.num_unknowns();
        for p in 0..grid.num_points() {
            for u in 0..n {
                let diff = r_on[p * n + u] - r_off[p * n + u];
                match ckt.unknown_kinds()[u] {
                    UnknownKind::NodeVoltage => assert!((diff - 1e-3).abs() < 1e-15),
                    UnknownKind::BranchCurrent => assert!(diff.abs() < 1e-15),
                }
            }
        }
    }
}
