//! Time-scale shearing: the paper's key construction (§2).
//!
//! The bivariate representation of a two-tone signal is not unique. Given a
//! scaled representation `ẑs(t1s, t2s)` (1-periodic in both arguments), the
//! *unsheared* form `ẑ1(t1,t2) = ẑs(f1·t1, f2·t2)` (eq. 9) has two nearly
//! equal fast periods and carries no difference-frequency information on
//! either axis. The *sheared* form
//!
//! ```text
//! ẑ2(t1, t2) = ẑs(f1·t1, k·f1·t1 − fd·t2)        (eqs. 11, 13)
//! ```
//!
//! with `fd = k·f1 − f2` keeps `ẑ2(t,t) = z(t)` while making the second
//! axis a difference-frequency time scale of period `Td = 1/fd`.

use std::f64::consts::PI;

/// A shear map between tone pairs and the (fast, difference) axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShearMap {
    /// Fast (LO) frequency `f1` in Hz.
    pub f1: f64,
    /// Harmonic multiple `k` of `f1` mixed against the second tone
    /// (`k = 2` for the LO-doubling mixer of §3).
    pub k: u32,
    /// Difference frequency `fd = k·f1 − f2` in Hz (positive).
    pub fd: f64,
}

impl ShearMap {
    /// Builds the shear for tones `(f1, f2)` with internal harmonic `k`,
    /// i.e. `fd = |k·f1 − f2|`.
    ///
    /// # Panics
    ///
    /// Panics if the tones coincide exactly (`fd = 0`) or frequencies are
    /// non-positive.
    pub fn from_tones(k: u32, f1: f64, f2: f64) -> Self {
        assert!(f1 > 0.0 && f2 > 0.0, "frequencies must be positive");
        let fd = (k as f64 * f1 - f2).abs();
        assert!(fd > 0.0, "tones coincide: difference frequency is zero");
        ShearMap { f1, k, fd }
    }

    /// The second tone `f2 = k·f1 − fd`.
    pub fn f2(&self) -> f64 {
        self.k as f64 * self.f1 - self.fd
    }

    /// Fast-axis period `T1 = 1/f1`.
    pub fn t1_period(&self) -> f64 {
        1.0 / self.f1
    }

    /// Difference-axis period `Td = 1/fd`.
    pub fn t2_period(&self) -> f64 {
        1.0 / self.fd
    }

    /// Frequency disparity `f1/fd` — the factor by which single-time methods
    /// are penalised (the paper quotes break-even near 200).
    pub fn disparity(&self) -> f64 {
        self.f1 / self.fd
    }

    /// Maps multitime coordinates to the scaled (1-periodic) arguments of
    /// the underlying representation: `(f1·t1, k·f1·t1 − fd·t2)`.
    pub fn scaled_args(&self, t1: f64, t2: f64) -> (f64, f64) {
        (self.f1 * t1, self.k as f64 * self.f1 * t1 - self.fd * t2)
    }
}

/// The paper's ideal mixing example (eqs. 5–8): `z(t) = cos(2πf1t)·cos(2πf2t)`
/// and its two bivariate representations.
#[derive(Debug, Clone, Copy)]
pub struct IdealMixing {
    /// First tone (Hz).
    pub f1: f64,
    /// Second tone (Hz), closely spaced to `f1`.
    pub f2: f64,
}

impl IdealMixing {
    /// The paper's running example: `f1 = 1 GHz`, `f2 = f1 − 10 kHz`.
    pub fn paper_example() -> Self {
        IdealMixing {
            f1: 1e9,
            f2: 1e9 - 10e3,
        }
    }

    /// The scaled representation `ẑs(u, v) = cos(2πu)·cos(2πv)` (eq. 8).
    pub fn zs(u: f64, v: f64) -> f64 {
        (2.0 * PI * u).cos() * (2.0 * PI * v).cos()
    }

    /// The one-time signal `z(t)` (eq. 5/6).
    pub fn z(&self, t: f64) -> f64 {
        (2.0 * PI * self.f1 * t).cos() * (2.0 * PI * self.f2 * t).cos()
    }

    /// Unsheared bivariate form `ẑ1(t1,t2) = ẑs(f1·t1, f2·t2)` (eq. 9),
    /// periodic with the two nearly equal fast periods — Figure 1.
    pub fn zhat1(&self, t1: f64, t2: f64) -> f64 {
        Self::zs(self.f1 * t1, self.f2 * t2)
    }

    /// Sheared bivariate form
    /// `ẑ2(t1,t2) = ẑs(f1·t1, f1·t1 − fd·t2)` (eq. 11), whose second axis
    /// is the difference-frequency time scale — Figure 2.
    pub fn zhat2(&self, t1: f64, t2: f64) -> f64 {
        let shear = self.shear();
        let (u, v) = shear.scaled_args(t1, t2);
        Self::zs(u, v)
    }

    /// The associated shear map (`k = 1`).
    pub fn shear(&self) -> ShearMap {
        ShearMap::from_tones(1, self.f1, self.f2)
    }

    /// Samples `ẑ1` on an `n1 × n2` grid over `[0,T1]×[0,T2]` (Figure 1
    /// data; row-major `[j][i]`).
    pub fn sample_zhat1(&self, n1: usize, n2: usize) -> Vec<f64> {
        let (p1, p2) = (1.0 / self.f1, 1.0 / self.f2);
        let mut out = Vec::with_capacity(n1 * n2);
        for j in 0..n2 {
            for i in 0..n1 {
                out.push(self.zhat1(p1 * i as f64 / n1 as f64, p2 * j as f64 / n2 as f64));
            }
        }
        out
    }

    /// Samples `ẑ2` on an `n1 × n2` grid over `[0,T1]×[0,Td]` (Figure 2
    /// data; row-major `[j][i]`).
    pub fn sample_zhat2(&self, n1: usize, n2: usize) -> Vec<f64> {
        let shear = self.shear();
        let (p1, pd) = (shear.t1_period(), shear.t2_period());
        let mut out = Vec::with_capacity(n1 * n2);
        for j in 0..n2 {
            for i in 0..n1 {
                out.push(self.zhat2(p1 * i as f64 / n1 as f64, pd * j as f64 / n2 as f64));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_difference_frequency() {
        let m = IdealMixing::paper_example();
        let s = m.shear();
        assert!((s.fd - 10e3).abs() < 1e-6);
        assert!((s.t2_period() - 0.1e-3).abs() < 1e-12, "Td = 0.1 ms");
        assert!((s.disparity() - 1e5).abs() < 1.0);
    }

    #[test]
    fn lo_doubling_shear() {
        // §3: f1 = 450 MHz doubled internally, fd = 15 kHz at baseband.
        let s = ShearMap::from_tones(2, 450e6, 900e6 - 15e3);
        assert!((s.fd - 15e3).abs() < 1e-6);
        assert!((s.f2() - (900e6 - 15e3)).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn zero_difference_rejected() {
        let _ = ShearMap::from_tones(1, 1e6, 1e6);
    }

    #[test]
    fn zhat2_has_slow_t2_variation() {
        // Along t2 at fixed t1, ẑ2 oscillates exactly once per Td.
        let m = IdealMixing::paper_example();
        let td = m.shear().t2_period();
        let v0 = m.zhat2(0.0, 0.0);
        let vq = m.zhat2(0.0, td / 2.0);
        assert!((v0 - 1.0).abs() < 1e-12);
        assert!(
            (vq + 1.0).abs() < 1e-12,
            "half a difference period flips sign"
        );
    }

    #[test]
    fn zhat1_has_no_slow_variation() {
        // ẑ1's axes are both fast: moving t2 by Td/2 (= 5000.25 fast
        // periods) does NOT track the difference tone.
        let m = IdealMixing::paper_example();
        let td = m.shear().t2_period();
        // ẑ1 is periodic in t2 with period 1/f2 ≈ 1 ns — sample within it.
        let p2 = 1.0 / m.f2;
        let samples: Vec<f64> = (0..16)
            .map(|k| m.zhat1(0.0, p2 * k as f64 / 16.0))
            .collect();
        // Full swing over a nanosecond-scale period: fast variation only.
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.9 && min < -0.9);
        let _ = td;
    }

    #[test]
    fn sample_grids_have_right_shape() {
        let m = IdealMixing::paper_example();
        assert_eq!(m.sample_zhat1(40, 30).len(), 1200);
        assert_eq!(m.sample_zhat2(40, 30).len(), 1200);
    }

    proptest! {
        #[test]
        fn prop_diagonal_identity_both_forms(t_ns in 0.0f64..100.0) {
            // The defining property: ẑ1(t,t) = ẑ2(t,t) = z(t)  (within
            // rounding of the large arguments involved).
            let m = IdealMixing::paper_example();
            let t = t_ns * 1e-9;
            let z = m.z(t);
            prop_assert!((m.zhat1(t, t) - z).abs() < 1e-6);
            prop_assert!((m.zhat2(t, t) - z).abs() < 1e-6);
        }

        #[test]
        fn prop_zhat2_periodicity(t1 in 0.0f64..2e-9, t2 in 0.0f64..2e-4) {
            let m = IdealMixing::paper_example();
            let s = m.shear();
            let a = m.zhat2(t1, t2);
            let b = m.zhat2(t1 + s.t1_period(), t2);
            let c = m.zhat2(t1, t2 + s.t2_period());
            prop_assert!((a - b).abs() < 1e-7);
            prop_assert!((a - c).abs() < 1e-7);
        }

        #[test]
        fn prop_difference_tone_visible_on_t2_axis(frac in 0.0f64..1.0) {
            // ẑ2(0, t2) = cos(2π·fd·t2): the difference tone, directly.
            let m = IdealMixing::paper_example();
            let s = m.shear();
            let t2 = s.t2_period() * frac;
            let expect = (2.0 * PI * s.fd * t2).cos();
            prop_assert!((m.zhat2(0.0, t2) - expect).abs() < 1e-9);
        }
    }
}
