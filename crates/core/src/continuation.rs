//! Source-ramping continuation (homotopy) for the MPDE Newton solve.
//!
//! The paper (§3, *Computational speedup*): "In cases where
//! Newton-Raphson did not converge, using continuation reliably obtained
//! solutions." This module implements the natural continuation used there:
//! the excitation is deformed from its DC component (`λ = 0`, solved by the
//! replicated DC operating point) to the full bivariate excitation
//! (`λ = 1`), with adaptive step control and warm-started Newton solves.

use rfsim_circuit::driver::{NewtonDriver, NewtonProfile, Rung, RungExec, RungKind};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions};
use rfsim_circuit::{CircuitError, Result};
use rfsim_numerics::SolveBudget;

use crate::fdtd::MpdeSystem;

/// Options for [`continuation_solve`].
#[derive(Debug, Clone, Copy)]
pub struct ContinuationOptions {
    /// Initial λ step.
    pub step_init: f64,
    /// Smallest λ step before giving up.
    pub step_min: f64,
    /// Largest λ step.
    pub step_max: f64,
    /// Maximum accepted + rejected continuation steps.
    pub max_steps: usize,
    /// Newton options for each λ solve.
    pub newton: NewtonOptions,
}

impl Default for ContinuationOptions {
    fn default() -> Self {
        ContinuationOptions {
            step_init: 0.25,
            step_min: 1e-4,
            step_max: 0.5,
            max_steps: 200,
            newton: NewtonProfile::ContinuationStep.options(),
        }
    }
}

/// Statistics of a continuation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContinuationStats {
    /// Accepted λ steps.
    pub accepted_steps: usize,
    /// Rejected (halved) λ steps.
    pub rejected_steps: usize,
    /// Total Newton iterations across all solves.
    pub newton_iterations: usize,
}

/// Solves the MPDE system by ramping the AC excitation from `λ = 0` to
/// `λ = 1`.
///
/// The system's λ is left at 1 on success. `x0` seeds the `λ = 0` solve
/// (the replicated DC operating point is the natural choice).
///
/// # Errors
///
/// Returns [`CircuitError::ConvergenceFailure`] if the step size collapses
/// below `step_min` or the step budget is exhausted.
pub fn continuation_solve(
    system: &mut MpdeSystem<'_>,
    x0: &[f64],
    options: ContinuationOptions,
) -> Result<(Vec<f64>, ContinuationStats)> {
    let mut workspace = LinearSolverWorkspace::new();
    continuation_solve_with_workspace(system, x0, options, &mut workspace)
}

/// [`continuation_solve`] with caller-owned linear-solver state.
///
/// λ scales the excitation, never the Jacobian structure, so every Newton
/// solve along the homotopy shares one symbolic factorisation: pass the
/// workspace that already served the plain-Newton attempt and the whole
/// continuation runs on numeric-only refactorisations.
///
/// # Errors
///
/// See [`continuation_solve`].
pub fn continuation_solve_with_workspace(
    system: &mut MpdeSystem<'_>,
    x0: &[f64],
    options: ContinuationOptions,
    workspace: &mut LinearSolverWorkspace,
) -> Result<(Vec<f64>, ContinuationStats)> {
    continuation_solve_budgeted(system, x0, options, workspace, &SolveBudget::unlimited())
}

/// [`continuation_solve_with_workspace`] under a [`SolveBudget`].
///
/// The budget covers every Newton solve along the homotopy. An
/// interruption aborts the whole continuation — λ-step halving is for
/// convergence failures, not control-plane stops.
///
/// # Errors
///
/// [`CircuitError::Interrupted`] when the budget stops a solve, plus
/// everything [`continuation_solve`] returns.
pub fn continuation_solve_budgeted(
    system: &mut MpdeSystem<'_>,
    x0: &[f64],
    options: ContinuationOptions,
    workspace: &mut LinearSolverWorkspace,
    budget: &SolveBudget,
) -> Result<(Vec<f64>, ContinuationStats)> {
    // A one-rung ladder: standalone continuation still goes through the
    // driver so its iterations are staged ("continuation") and its rung
    // is counted. As the fallback rung of the MPDE solve the body runs
    // directly inside that ladder's exec (`continuation_solve_rung`),
    // avoiding nested rung accounting.
    let driver = NewtonDriver::new(options.newton);
    let outcome = driver.solve_ladder(
        "mpde continuation",
        workspace,
        budget,
        vec![Rung::new(
            RungKind::Continuation,
            move |exec: &mut RungExec<'_>| continuation_solve_rung(system, x0, options, exec),
        )],
    )?;
    Ok(outcome.value)
}

/// The continuation body, running as one rung of a
/// [`NewtonDriver`] ladder: every Newton solve goes through `exec` (and
/// so the ladder's staged budget and shared workspace) with the
/// continuation's own inner-step options. λ-step halving absorbs
/// *recoverable* sub-solve failures; interruptions and structural errors
/// propagate.
///
/// # Errors
///
/// See [`continuation_solve`].
pub fn continuation_solve_rung(
    system: &mut MpdeSystem<'_>,
    x0: &[f64],
    options: ContinuationOptions,
    exec: &mut RungExec<'_>,
) -> Result<(Vec<f64>, ContinuationStats)> {
    let kinds = system.kinds().to_vec();
    let mut stats = ContinuationStats {
        accepted_steps: 0,
        rejected_steps: 0,
        newton_iterations: 0,
    };

    // λ = 0 anchor.
    system.set_lambda(0.0);
    let (mut x, s0) = exec.newton_with(options.newton, system, x0, &kinds)?;
    stats.newton_iterations += s0.iterations;

    let mut lambda: f64 = 0.0;
    let mut step: f64 = options.step_init.clamp(options.step_min, options.step_max);
    while lambda < 1.0 {
        if stats.accepted_steps + stats.rejected_steps >= options.max_steps {
            system.set_lambda(1.0);
            return Err(CircuitError::ConvergenceFailure {
                analysis: "mpde continuation (step budget)".into(),
                iterations: stats.newton_iterations,
                residual: f64::NAN,
            });
        }
        let target = (lambda + step).min(1.0);
        system.set_lambda(target);
        match exec.newton_with(options.newton, system, &x, &kinds) {
            Ok((x_new, s)) => {
                stats.newton_iterations += s.iterations;
                stats.accepted_steps += 1;
                x = x_new;
                lambda = target;
                // Grow the step if Newton was comfortable.
                if s.iterations <= 8 {
                    step = (step * 1.7).min(options.step_max);
                }
            }
            Err(e) if e.is_recoverable() => {
                stats.rejected_steps += 1;
                step *= 0.5;
                if step < options.step_min {
                    system.set_lambda(1.0);
                    return Err(CircuitError::ConvergenceFailure {
                        analysis: "mpde continuation (step collapse)".into(),
                        iterations: stats.newton_iterations,
                        residual: f64::NAN,
                    });
                }
            }
            Err(e) => {
                system.set_lambda(1.0);
                return Err(e);
            }
        }
    }
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::MultitimeGrid;
    use rfsim_circuit::{BiWaveform, CircuitBuilder, Envelope, MosfetParams, Waveform, GROUND};
    use rfsim_numerics::diff::DiffScheme;

    fn switching_stage() -> rfsim_circuit::Circuit {
        // A MOSFET switch driven hard by the LO: cold-start Newton on the
        // full excitation is fragile; continuation should always work.
        let (f1, fd) = (1e6, 10e3);
        let mut b = CircuitBuilder::new();
        let vdd = b.node("vdd");
        let gate = b.node("g");
        let drain = b.node("d");
        b.vsource("VDD", vdd, GROUND, Waveform::Dc(2.0))
            .expect("vdd");
        b.vsource(
            "VLO",
            gate,
            GROUND,
            BiWaveform::Axis1(Waveform::Sine {
                amplitude: 1.5,
                freq: f1,
                phase: 0.0,
                offset: 0.6,
            }),
        )
        .expect("vlo");
        b.isource(
            "IRF",
            drain,
            GROUND,
            BiWaveform::ShearedCarrier {
                amplitude: 1e-4,
                k: 1,
                f1,
                fd,
                phase: 0.0,
                envelope: Envelope::Unit,
            },
        )
        .expect("irf");
        b.resistor("RD", vdd, drain, 5e3).expect("rd");
        b.capacitor("CD", drain, GROUND, 20e-12).expect("cd");
        b.mosfet("M1", drain, gate, GROUND, MosfetParams::default())
            .expect("m1");
        b.build().expect("build")
    }

    #[test]
    fn continuation_reaches_full_drive() {
        let ckt = switching_stage();
        let grid = MultitimeGrid::new(16, 8, 1e-6, 1e-4);
        let mut sys = crate::fdtd::MpdeSystem::new(
            &ckt,
            grid,
            DiffScheme::BackwardEuler,
            DiffScheme::BackwardEuler,
        )
        .expect("system");
        let dim = rfsim_circuit::newton::NewtonSystem::dim(&sys);
        let (x, stats) =
            continuation_solve(&mut sys, &vec![0.0; dim], ContinuationOptions::default())
                .expect("continuation");
        assert!(stats.accepted_steps >= 2, "multiple λ steps used");
        // Sanity: the solution is a converged residual at λ=1.
        let mut r = vec![0.0; dim];
        rfsim_circuit::newton::NewtonSystem::residual(&sys, &x, &mut r);
        let rn = rfsim_numerics::vector::norm_inf(&r);
        assert!(rn < 1e-5, "residual at λ=1: {rn}");
    }

    #[test]
    fn step_budget_is_enforced() {
        let ckt = switching_stage();
        let grid = MultitimeGrid::new(8, 4, 1e-6, 1e-4);
        let mut sys = crate::fdtd::MpdeSystem::new(
            &ckt,
            grid,
            DiffScheme::BackwardEuler,
            DiffScheme::BackwardEuler,
        )
        .expect("system");
        let dim = rfsim_circuit::newton::NewtonSystem::dim(&sys);
        let opts = ContinuationOptions {
            max_steps: 1,
            step_init: 1e-3,
            ..Default::default()
        };
        assert!(matches!(
            continuation_solve(&mut sys, &vec![0.0; dim], opts),
            Err(CircuitError::ConvergenceFailure { .. })
        ));
    }
}
