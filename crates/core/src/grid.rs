//! Multitime grids and solutions.
//!
//! A [`MultitimeGrid`] discretises `[0, T1) × [0, T2)` uniformly and
//! periodically; a [`MultitimeSolution`] stores all circuit unknowns on the
//! grid and provides the paper's post-processing operations:
//!
//! * bivariate surfaces (Figures 3 and 5),
//! * the baseband envelope along the difference axis (Figure 4),
//! * harmonic extraction on either axis (conversion gain, HD2/HD3),
//! * diagonal reconstruction `x(t) = x̂(t, t)` (Figure 6).

use rfsim_numerics::fft::{goertzel, Complex};
use rfsim_numerics::interp::periodic_bilinear;

/// A uniform periodic grid over the two artificial time scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultitimeGrid {
    n1: usize,
    n2: usize,
    t1_period: f64,
    t2_period: f64,
}

impl MultitimeGrid {
    /// Creates a grid with `n1 × n2` points over `[0,T1) × [0,T2)`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or a period non-positive.
    pub fn new(n1: usize, n2: usize, t1_period: f64, t2_period: f64) -> Self {
        assert!(n1 > 0 && n2 > 0, "grid dimensions must be positive");
        assert!(
            t1_period > 0.0 && t2_period > 0.0,
            "grid periods must be positive"
        );
        MultitimeGrid {
            n1,
            n2,
            t1_period,
            t2_period,
        }
    }

    /// Grid dimensions `(n1, n2)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> usize {
        self.n1 * self.n2
    }

    /// Fast-axis period `T1`.
    pub fn t1_period(&self) -> f64 {
        self.t1_period
    }

    /// Slow-axis period `T2`.
    pub fn t2_period(&self) -> f64 {
        self.t2_period
    }

    /// Fast-axis coordinate of column `i`.
    pub fn t1(&self, i: usize) -> f64 {
        self.t1_period * i as f64 / self.n1 as f64
    }

    /// Slow-axis coordinate of row `j`.
    pub fn t2(&self, j: usize) -> f64 {
        self.t2_period * j as f64 / self.n2 as f64
    }

    /// Fast-axis step `h1`.
    pub fn h1(&self) -> f64 {
        self.t1_period / self.n1 as f64
    }

    /// Slow-axis step `h2`.
    pub fn h2(&self) -> f64 {
        self.t2_period / self.n2 as f64
    }

    /// Flat index of grid point `(i, j)`.
    #[inline]
    pub fn point(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n1 && j < self.n2);
        j * self.n1 + i
    }
}

/// A solution of the MPDE on a [`MultitimeGrid`]: every circuit unknown at
/// every grid point.
#[derive(Debug, Clone)]
pub struct MultitimeSolution {
    /// The grid the data lives on.
    pub grid: MultitimeGrid,
    /// Unknowns per grid point.
    pub num_unknowns: usize,
    /// Flattened data: `data[(grid.point(i,j))*n + u]`.
    pub data: Vec<f64>,
}

impl MultitimeSolution {
    /// Wraps flattened data produced by the solvers.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != grid.num_points() * num_unknowns`.
    pub fn new(grid: MultitimeGrid, num_unknowns: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            grid.num_points() * num_unknowns,
            "solution data size mismatch"
        );
        MultitimeSolution {
            grid,
            num_unknowns,
            data,
        }
    }

    /// State vector at grid point `(i, j)`.
    pub fn state(&self, i: usize, j: usize) -> &[f64] {
        let base = self.grid.point(i, j) * self.num_unknowns;
        &self.data[base..base + self.num_unknowns]
    }

    /// Value of one unknown at grid point `(i, j)`.
    pub fn value(&self, unknown: usize, i: usize, j: usize) -> f64 {
        self.state(i, j)[unknown]
    }

    /// Bivariate surface of one unknown, row-major `[j][i]` — the data of
    /// Figures 3 and 5.
    pub fn surface(&self, unknown: usize) -> Vec<f64> {
        let (n1, n2) = self.grid.shape();
        let mut out = Vec::with_capacity(n1 * n2);
        for j in 0..n2 {
            for i in 0..n1 {
                out.push(self.value(unknown, i, j));
            }
        }
        out
    }

    /// Waveform along the fast axis at slow-row `j`.
    pub fn t1_slice(&self, unknown: usize, j: usize) -> Vec<f64> {
        (0..self.grid.shape().0)
            .map(|i| self.value(unknown, i, j))
            .collect()
    }

    /// Waveform along the slow (difference) axis at fast-column `i`.
    pub fn t2_slice(&self, unknown: usize, i: usize) -> Vec<f64> {
        (0..self.grid.shape().1)
            .map(|j| self.value(unknown, i, j))
            .collect()
    }

    /// The baseband envelope: the fast-axis average at each slow point —
    /// the "actual baseband voltage" of Figure 4.
    pub fn envelope(&self, unknown: usize) -> Vec<f64> {
        let (n1, n2) = self.grid.shape();
        (0..n2)
            .map(|j| (0..n1).map(|i| self.value(unknown, i, j)).sum::<f64>() / n1 as f64)
            .collect()
    }

    /// Complex amplitude of harmonic `m` of the baseband envelope along the
    /// slow axis (the `m·fd` component). `m = 1` gives the down-converted
    /// fundamental used for conversion gain; `m = 2, 3` give HD2/HD3.
    pub fn baseband_harmonic(&self, unknown: usize, m: usize) -> Complex {
        goertzel(&self.envelope(unknown), m)
    }

    /// Complex amplitude of harmonic `m` along the *fast* axis, averaged
    /// coherently over the slow axis (e.g. LO feedthrough at `m·f1`,
    /// which is phase-locked across rows).
    pub fn fast_harmonic(&self, unknown: usize, m: usize) -> Complex {
        let (_, n2) = self.grid.shape();
        let mut acc = Complex::ZERO;
        for j in 0..n2 {
            acc = acc + goertzel(&self.t1_slice(unknown, j), m);
        }
        acc * (1.0 / n2 as f64)
    }

    /// Magnitude of harmonic `m` along the fast axis, averaged
    /// *incoherently* (per-row magnitudes). Sheared carriers rotate their
    /// fast-harmonic phase once per slow period, so the coherent average
    /// vanishes — this is the right extractor for carrier-amplitude
    /// measurements.
    pub fn fast_harmonic_magnitude(&self, unknown: usize, m: usize) -> f64 {
        let (_, n2) = self.grid.shape();
        (0..n2)
            .map(|j| goertzel(&self.t1_slice(unknown, j), m).abs())
            .sum::<f64>()
            / n2 as f64
    }

    /// Evaluates the bivariate solution off-grid by periodic bilinear
    /// interpolation.
    pub fn interpolate(&self, unknown: usize, t1: f64, t2: f64) -> f64 {
        let surf = self.surface(unknown);
        let (n1, n2) = self.grid.shape();
        periodic_bilinear(
            &surf,
            n1,
            n2,
            self.grid.t1_period(),
            self.grid.t2_period(),
            t1,
            t2,
        )
        .expect("surface dimensions are consistent by construction")
    }

    /// Reconstructs the one-time waveform `x(t) = x̂(t, t)` over
    /// `[t_start, t_end]` with `num_points` samples — Figure 6.
    pub fn reconstruct_diagonal(
        &self,
        unknown: usize,
        t_start: f64,
        t_end: f64,
        num_points: usize,
    ) -> Vec<(f64, f64)> {
        let surf = self.surface(unknown);
        let (n1, n2) = self.grid.shape();
        (0..num_points)
            .map(|k| {
                let t = t_start + (t_end - t_start) * k as f64 / (num_points.max(2) - 1) as f64;
                let v = periodic_bilinear(
                    &surf,
                    n1,
                    n2,
                    self.grid.t1_period(),
                    self.grid.t2_period(),
                    t,
                    t,
                )
                .expect("consistent dimensions");
                (t, v)
            })
            .collect()
    }

    /// Root-mean-square of the difference to another solution on the same
    /// grid (convergence studies).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn rms_difference(&self, other: &MultitimeSolution) -> f64 {
        assert_eq!(self.grid, other.grid, "grids differ");
        assert_eq!(
            self.num_unknowns, other.num_unknowns,
            "unknown counts differ"
        );
        let d: Vec<f64> = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        rfsim_numerics::vector::rms(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn product_solution(n1: usize, n2: usize) -> MultitimeSolution {
        // x̂(t1,t2) = cos(2π t1/T1)·cos(2π t2/T2), plus a constant unknown.
        let grid = MultitimeGrid::new(n1, n2, 1e-6, 1e-3);
        let mut data = Vec::with_capacity(n1 * n2 * 2);
        for j in 0..n2 {
            for i in 0..n1 {
                let u = i as f64 / n1 as f64;
                let v = j as f64 / n2 as f64;
                data.push((2.0 * PI * u).cos() * (2.0 * PI * v).cos());
                data.push(42.0);
            }
        }
        MultitimeSolution::new(grid, 2, data)
    }

    #[test]
    fn grid_coordinates() {
        let g = MultitimeGrid::new(4, 5, 2.0, 10.0);
        assert_eq!(g.shape(), (4, 5));
        assert_eq!(g.num_points(), 20);
        assert!((g.t1(1) - 0.5).abs() < 1e-15);
        assert!((g.t2(1) - 2.0).abs() < 1e-15);
        assert!((g.h1() - 0.5).abs() < 1e-15);
        assert!((g.h2() - 2.0).abs() < 1e-15);
        assert_eq!(g.point(3, 4), 19);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = MultitimeGrid::new(0, 4, 1.0, 1.0);
    }

    #[test]
    fn surface_and_slices() {
        let s = product_solution(8, 6);
        let surf = s.surface(0);
        assert_eq!(surf.len(), 48);
        assert!((surf[0] - 1.0).abs() < 1e-12);
        let row = s.t1_slice(0, 0);
        assert_eq!(row.len(), 8);
        assert!((row[2] - (2.0 * PI * 0.25).cos()).abs() < 1e-12);
        let col = s.t2_slice(0, 0);
        assert_eq!(col.len(), 6);
        assert!((col[3] - (2.0 * PI * 0.5).cos()).abs() < 1e-10);
    }

    #[test]
    fn envelope_of_product_is_zero_mean_times_cos() {
        // Fast-average of cos(2πu) is 0, so the envelope vanishes.
        let s = product_solution(16, 8);
        for v in s.envelope(0) {
            assert!(v.abs() < 1e-12);
        }
        // The constant unknown's envelope is the constant.
        for v in s.envelope(1) {
            assert!((v - 42.0).abs() < 1e-12);
        }
    }

    #[test]
    fn baseband_harmonic_extraction() {
        // Build x̂ = (1 + cos(2π t2/T2)) so the envelope is 1 + cos.
        let grid = MultitimeGrid::new(8, 16, 1e-6, 1e-3);
        let mut data = Vec::new();
        for j in 0..16 {
            for _i in 0..8 {
                let v = j as f64 / 16.0;
                data.push(1.0 + (2.0 * PI * v).cos());
            }
        }
        let s = MultitimeSolution::new(grid, 1, data);
        let h0 = s.baseband_harmonic(0, 0);
        let h1 = s.baseband_harmonic(0, 1);
        let h2 = s.baseband_harmonic(0, 2);
        assert!((h0.re - 1.0).abs() < 1e-12);
        assert!((h1.abs() - 1.0).abs() < 1e-12);
        assert!(h2.abs() < 1e-12);
    }

    #[test]
    fn fast_harmonic_extraction() {
        let s = product_solution(16, 8);
        // x̂ row j: cos(2πu)·cos(2πv_j) → fast harmonic 1 amplitude |cos(2πv_j)|,
        // averaged over j with signs… the *complex* average is
        // (1/n2)Σ cos(2πv_j) = 0. Use a solution without sign flips instead:
        let grid = MultitimeGrid::new(16, 4, 1e-6, 1e-3);
        let mut data = Vec::new();
        for _j in 0..4 {
            for i in 0..16 {
                let u = i as f64 / 16.0;
                data.push(0.5 * (2.0 * PI * u).cos());
            }
        }
        let sol = MultitimeSolution::new(grid, 1, data);
        assert!((sol.fast_harmonic(0, 1).abs() - 0.5).abs() < 1e-12);
        let _ = s;
    }

    #[test]
    fn diagonal_reconstruction_matches_function() {
        // x̂(t1,t2) separable and band-limited: bilinear interpolation on a
        // fine grid tracks the true diagonal well.
        let s = product_solution(64, 64);
        let pts = s.reconstruct_diagonal(0, 0.0, 2e-6, 41);
        for &(t, v) in &pts {
            let expect = (2.0 * PI * t / 1e-6).cos() * (2.0 * PI * t / 1e-3).cos();
            assert!((v - expect).abs() < 5e-3, "t={t}: got {v}, expect {expect}");
        }
    }

    #[test]
    fn rms_difference_of_identical_is_zero() {
        let a = product_solution(8, 4);
        let b = product_solution(8, 4);
        assert_eq!(a.rms_difference(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_data_size_rejected() {
        let grid = MultitimeGrid::new(2, 2, 1.0, 1.0);
        let _ = MultitimeSolution::new(grid, 1, vec![0.0; 3]);
    }
}
