//! Periodic steady state by 1-D finite-difference collocation.
//!
//! Discretises one period `[0, T)` on `N` uniform points with a periodic
//! difference stencil for `d/dt` and solves the coupled system
//!
//! ```text
//! Σ_k (w_k/h)·q(x_{i+k})  +  f(x_i)  +  b(t_i)  =  0,   i = 0..N
//! ```
//!
//! by global Newton. This is exactly the `N2 = 1` slice of the MPDE grid
//! solver — the MPDE engine in `rfsim-mpde` extends the same structure with
//! a second (difference-frequency) axis.

use rfsim_circuit::driver::{NewtonDriver, NewtonProfile};
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions, NewtonStats, NewtonSystem};
use rfsim_circuit::{Circuit, Result, UnknownKind};
use rfsim_numerics::diff::DiffScheme;
use rfsim_numerics::sparse::Triplets;

/// Options for [`periodic_fd_pss`].
#[derive(Debug, Clone, Copy)]
pub struct PeriodicFdOptions {
    /// Number of collocation points over one period.
    pub n_samples: usize,
    /// Periodic differentiation stencil.
    pub scheme: DiffScheme,
    /// Newton options for the global solve.
    pub newton: NewtonOptions,
}

impl Default for PeriodicFdOptions {
    fn default() -> Self {
        PeriodicFdOptions {
            n_samples: 64,
            scheme: DiffScheme::default(),
            // Global collocation solve — the steady-state profile.
            newton: NewtonProfile::SteadyState.options(),
        }
    }
}

/// Result of a periodic finite-difference solve.
#[derive(Debug, Clone)]
pub struct PeriodicFdResult {
    /// Collocation times `t_i = i·T/N`.
    pub times: Vec<f64>,
    /// Flattened solution: `samples[i*n .. (i+1)*n]` is the state at `t_i`.
    pub samples: Vec<f64>,
    /// Unknowns per time point.
    pub num_unknowns: usize,
    /// Newton statistics.
    pub stats: NewtonStats,
}

impl PeriodicFdResult {
    /// State at collocation index `i`.
    pub fn state(&self, i: usize) -> &[f64] {
        &self.samples[i * self.num_unknowns..(i + 1) * self.num_unknowns]
    }

    /// Waveform of one unknown over the period.
    pub fn signal(&self, unknown: usize) -> Vec<f64> {
        (0..self.times.len())
            .map(|i| self.state(i)[unknown])
            .collect()
    }
}

/// The collocation system over all grid points.
struct PeriodicFdSystem<'a> {
    circuit: &'a Circuit,
    period: f64,
    n_samples: usize,
    scheme: DiffScheme,
    b_cache: Vec<f64>, // N*n excitation samples
}

impl PeriodicFdSystem<'_> {
    fn n(&self) -> usize {
        self.circuit.num_unknowns()
    }
}

impl NewtonSystem for PeriodicFdSystem<'_> {
    fn dim(&self) -> usize {
        self.n() * self.n_samples
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n();
        let ns = self.n_samples;
        let h = self.period / ns as f64;
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        // Charge terms through the periodic stencil.
        for i in 0..ns {
            let xi = &x[i * n..(i + 1) * n];
            self.circuit.eval_q(xi, &mut q, None);
            for &(off, w) in self.scheme.stencil() {
                // q(x_i) appears in the derivative at rows i − off… i.e. the
                // stencil row j uses x_{j+off}; scatter from the column side:
                let row = (i as isize - off).rem_euclid(ns as isize) as usize;
                for u in 0..n {
                    out[row * n + u] += w / h * q[u];
                }
            }
            self.circuit.eval_f(xi, &mut f, None);
            for u in 0..n {
                out[i * n + u] += f[u] + self.b_cache[i * n + u];
            }
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = self.n();
        let ns = self.n_samples;
        let h = self.period / ns as f64;
        out.fill(0.0);
        let mut q = vec![0.0; n];
        let mut f = vec![0.0; n];
        for i in 0..ns {
            let xi = &x[i * n..(i + 1) * n];
            let mut c_trip = Triplets::with_capacity(n, n, 8 * n);
            let mut g_trip = Triplets::with_capacity(n, n, 8 * n);
            self.circuit.eval_q(xi, &mut q, Some(&mut c_trip));
            self.circuit.eval_f(xi, &mut f, Some(&mut g_trip));
            let c = c_trip.to_csr();
            for &(off, w) in self.scheme.stencil() {
                let row_blk = (i as isize - off).rem_euclid(ns as isize) as usize;
                for u in 0..n {
                    out[row_blk * n + u] += w / h * q[u];
                }
                for r in 0..n {
                    let (cols, vals) = c.row(r);
                    for (cc, v) in cols.iter().zip(vals) {
                        jac.push(row_blk * n + r, i * n + cc, w / h * v);
                    }
                }
            }
            let g = g_trip.to_csr();
            for r in 0..n {
                let (cols, vals) = g.row(r);
                for (cc, v) in cols.iter().zip(vals) {
                    jac.push(i * n + r, i * n + cc, *v);
                }
            }
            for u in 0..n {
                out[i * n + u] += f[u] + self.b_cache[i * n + u];
            }
        }
    }
}

/// Fingerprint of the periodic-collocation Jacobian's CSC structure for
/// `circuit` under `options` — the pattern every Newton iteration of
/// [`periodic_fd_pss`] assembles. Depends on element connectivity, the
/// (clamped) sample count and the stencil, not on element values or the
/// period, so warm-started PSS sweeps route workspaces by it. Costs one
/// Jacobian assembly at the zero state; pay it once per topology group.
pub fn periodic_fd_jacobian_fingerprint(
    circuit: &Circuit,
    period: f64,
    options: &PeriodicFdOptions,
) -> rfsim_numerics::sparse::PatternFingerprint {
    let n = circuit.num_unknowns();
    let ns = options.n_samples.max(options.scheme.min_points());
    let sys = PeriodicFdSystem {
        circuit,
        period,
        n_samples: ns,
        scheme: options.scheme,
        // The excitation does not shape the Jacobian; zeros keep this a
        // pure structure probe.
        b_cache: vec![0.0; ns * n],
    };
    let dim = sys.dim();
    let x0 = vec![0.0; dim];
    let mut residual = vec![0.0; dim];
    let mut jac = Triplets::with_capacity(dim, dim, 16 * dim);
    sys.residual_and_jacobian(&x0, &mut residual, &mut jac);
    jac.pattern_fingerprint()
}

/// Solves for the periodic steady state of `circuit` with period `period`.
///
/// `initial_guess` (flattened `N·n`, same layout as the result) seeds the
/// Newton iteration; pass `None` to start from the DC operating point
/// replicated across the grid.
///
/// # Errors
///
/// Propagates DC and Newton convergence failures.
pub fn periodic_fd_pss(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: PeriodicFdOptions,
) -> Result<PeriodicFdResult> {
    let mut workspace = LinearSolverWorkspace::new();
    periodic_fd_pss_with_workspace(circuit, period, initial_guess, options, &mut workspace)
}

/// [`periodic_fd_pss`] with caller-owned linear-solver state: warm-started
/// re-solves (parameter sweeps, refinement studies on the same `n_samples`)
/// reuse the collocation Jacobian's symbolic factorisation across calls.
///
/// # Errors
///
/// See [`periodic_fd_pss`].
pub fn periodic_fd_pss_with_workspace(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: PeriodicFdOptions,
    workspace: &mut LinearSolverWorkspace,
) -> Result<PeriodicFdResult> {
    periodic_fd_pss_budgeted(
        circuit,
        period,
        initial_guess,
        options,
        workspace,
        &rfsim_numerics::SolveBudget::unlimited(),
    )
}

/// [`periodic_fd_pss_with_workspace`] under a
/// [`SolveBudget`](rfsim_numerics::SolveBudget): the budget covers the DC
/// seed and the global collocation Newton solve.
///
/// # Errors
///
/// [`rfsim_circuit::CircuitError::Interrupted`] when the budget stops a
/// solve, plus everything [`periodic_fd_pss`] returns.
pub fn periodic_fd_pss_budgeted(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: PeriodicFdOptions,
    workspace: &mut LinearSolverWorkspace,
    budget: &rfsim_numerics::SolveBudget,
) -> Result<PeriodicFdResult> {
    let n = circuit.num_unknowns();
    let ns = options.n_samples.max(options.scheme.min_points());
    let times: Vec<f64> = (0..ns).map(|i| period * i as f64 / ns as f64).collect();

    // Cache the excitation on the grid.
    let mut b_cache = vec![0.0; ns * n];
    let mut b = vec![0.0; n];
    for (i, &t) in times.iter().enumerate() {
        circuit.eval_b(t, &mut b);
        b_cache[i * n..(i + 1) * n].copy_from_slice(&b);
    }

    let sys = PeriodicFdSystem {
        circuit,
        period,
        n_samples: ns,
        scheme: options.scheme,
        b_cache,
    };

    let x0: Vec<f64> = match initial_guess {
        Some(g) => g.to_vec(),
        None => {
            let op = rfsim_circuit::dcop::dc_operating_point_budgeted(
                circuit,
                Default::default(),
                budget,
            )?;
            let mut x0 = Vec::with_capacity(ns * n);
            for _ in 0..ns {
                x0.extend_from_slice(&op.solution);
            }
            x0
        }
    };

    let mut kinds = Vec::with_capacity(ns * n);
    for _ in 0..ns {
        kinds.extend_from_slice(circuit.unknown_kinds());
    }
    let kinds: Vec<UnknownKind> = kinds;

    let (samples, stats) =
        NewtonDriver::new(options.newton).solve(&sys, &x0, &kinds, workspace, budget)?;
    Ok(PeriodicFdResult {
        times,
        samples,
        num_unknowns: n,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{CircuitBuilder, Waveform, GROUND};
    use std::f64::consts::PI;

    fn rc_lowpass(r: f64, c: f64, amp: f64, freq: f64) -> (Circuit, usize) {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(amp, freq))
            .expect("v");
        b.resistor("R1", inp, out, r).expect("r");
        b.capacitor("C1", out, GROUND, c).expect("c");
        let ckt = b.build().expect("build");
        let idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        (ckt, idx)
    }

    /// Analytic RC low-pass response amplitude and phase at `freq`.
    fn rc_response(r: f64, c: f64, freq: f64) -> (f64, f64) {
        let w = 2.0 * PI * freq * r * c;
        let mag = 1.0 / (1.0 + w * w).sqrt();
        let ph = -w.atan();
        (mag, ph)
    }

    #[test]
    fn rc_pss_matches_analytic_central() {
        let (r, c, f) = (1e3, 1e-9, 200e3);
        let (ckt, out) = rc_lowpass(r, c, 1.0, f);
        let res = periodic_fd_pss(
            &ckt,
            1.0 / f,
            None,
            PeriodicFdOptions {
                n_samples: 128,
                scheme: DiffScheme::Central2,
                ..Default::default()
            },
        )
        .expect("pss");
        let (mag, ph) = rc_response(r, c, f);
        for (i, &t) in res.times.iter().enumerate() {
            let expect = mag * (2.0 * PI * f * t + ph).sin();
            let got = res.state(i)[out];
            assert!(
                (got - expect).abs() < 5e-3,
                "t={t}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn backward_euler_damps_but_converges_with_resolution() {
        let (r, c, f) = (1e3, 1e-9, 100e3);
        let (ckt, out) = rc_lowpass(r, c, 1.0, f);
        let amp_with = |ns: usize| {
            let res = periodic_fd_pss(
                &ckt,
                1.0 / f,
                None,
                PeriodicFdOptions {
                    n_samples: ns,
                    scheme: DiffScheme::BackwardEuler,
                    ..Default::default()
                },
            )
            .expect("pss");
            res.signal(out).iter().fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let (mag, _) = rc_response(r, c, f);
        let e_coarse = (amp_with(32) - mag).abs();
        let e_fine = (amp_with(256) - mag).abs();
        assert!(
            e_fine < e_coarse / 4.0,
            "BE refines: {e_coarse} -> {e_fine}"
        );
    }

    #[test]
    fn bdf2_beats_backward_euler() {
        let (r, c, f) = (1e3, 1e-9, 100e3);
        let (ckt, out) = rc_lowpass(r, c, 1.0, f);
        let err_with = |scheme: DiffScheme| {
            let res = periodic_fd_pss(
                &ckt,
                1.0 / f,
                None,
                PeriodicFdOptions {
                    n_samples: 64,
                    scheme,
                    ..Default::default()
                },
            )
            .expect("pss");
            let (mag, ph) = rc_response(r, c, f);
            let mut err = 0.0f64;
            for (i, &t) in res.times.iter().enumerate() {
                let expect = mag * (2.0 * PI * f * t + ph).sin();
                err = err.max((res.state(i)[out] - expect).abs());
            }
            err
        };
        let e_be = err_with(DiffScheme::BackwardEuler);
        let e_bdf2 = err_with(DiffScheme::Bdf2);
        assert!(e_bdf2 < e_be / 3.0, "BDF2 {e_bdf2} vs BE {e_be}");
    }

    #[test]
    fn diode_rectifier_dc_shift() {
        // Half-wave rectifier into an RC tank: PSS output has positive mean.
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(2.0, 1e6))
            .expect("v");
        b.diode("D1", inp, out, Default::default()).expect("d");
        b.resistor("RL", out, GROUND, 10e3).expect("r");
        b.capacitor("CL", out, GROUND, 1e-9).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let res = periodic_fd_pss(
            &ckt,
            1e-6,
            None,
            PeriodicFdOptions {
                n_samples: 128,
                scheme: DiffScheme::Bdf2,
                ..Default::default()
            },
        )
        .expect("pss");
        let sig = res.signal(out_idx);
        let mean: f64 = sig.iter().sum::<f64>() / sig.len() as f64;
        assert!(mean > 0.8, "rectified mean should be near the peak: {mean}");
        let min = sig.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > 0.5, "ripple floor stays high: {min}");
    }

    #[test]
    fn workspace_symbolic_survives_sharp_drive_jump() {
        // A rectifier's Jacobian values swing exponentially with drive.
        // One workspace carried across a 40× amplitude jump must keep the
        // symbolic factorisation alive: one full factorisation total, no
        // restricted-pivoting fallback, everything after the first
        // iteration a numeric-only refresh.
        let rectifier = |amp: f64| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource("V1", inp, GROUND, Waveform::sine(amp, 1e6))
                .expect("v");
            b.diode("D1", inp, out, Default::default()).expect("d");
            b.resistor("RL", out, GROUND, 10e3).expect("r");
            b.capacitor("CL", out, GROUND, 1e-9).expect("c");
            b.build().expect("build")
        };
        let opts = PeriodicFdOptions {
            n_samples: 32,
            scheme: DiffScheme::Bdf2,
            ..Default::default()
        };
        let mut ws = LinearSolverWorkspace::new();
        let low = periodic_fd_pss_with_workspace(&rectifier(0.05), 1e-6, None, opts, &mut ws)
            .expect("low drive");
        periodic_fd_pss_with_workspace(&rectifier(2.0), 1e-6, Some(&low.samples), opts, &mut ws)
            .expect("high drive");
        assert_eq!(
            ws.stats.full_factorizations, 1,
            "the jump must not discard the symbolic analysis: {:?}",
            ws.stats
        );
        assert_eq!(ws.stats.full_fallbacks, 0, "{:?}", ws.stats);
        assert!(ws.stats.refactorizations >= 2, "{:?}", ws.stats);
    }

    #[test]
    fn warm_start_reuses_solution() {
        let (ckt, _) = rc_lowpass(1e3, 1e-9, 1.0, 100e3);
        let opts = PeriodicFdOptions {
            n_samples: 32,
            scheme: DiffScheme::Central2,
            ..Default::default()
        };
        let first = periodic_fd_pss(&ckt, 1e-5, None, opts).expect("cold");
        let warm = periodic_fd_pss(&ckt, 1e-5, Some(&first.samples), opts).expect("warm");
        assert!(
            warm.stats.iterations <= 2,
            "warm start converges immediately, took {}",
            warm.stats.iterations
        );
    }
}
