//! Periodic steady-state (PSS) baselines: shooting and 1-D periodic
//! finite-difference collocation.
//!
//! These are the "traditional time-domain approaches" the paper compares
//! against (§3, *Computational speedup*): Newton shooting across one period
//! — applied to the *difference-frequency* period for closely spaced tones,
//! which forces ~10 time steps per LO period × the full difference period,
//! i.e. hundreds of thousands of steps — and the 1-D collocation solver
//! that the MPDE engine generalises to two time axes.

pub mod periodic_fd;
pub mod shooting;

pub use periodic_fd::{
    periodic_fd_jacobian_fingerprint, periodic_fd_pss, periodic_fd_pss_budgeted,
    periodic_fd_pss_with_workspace, PeriodicFdOptions, PeriodicFdResult,
};
pub use shooting::{
    difference_period_steps, shooting_pss, shooting_pss_budgeted, ShootingMethod, ShootingOptions,
    ShootingResult,
};
