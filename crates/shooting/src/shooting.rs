//! Newton shooting for periodic steady state.
//!
//! Integrates the circuit across one period with fixed-step backward Euler,
//! propagating the sensitivity (monodromy) matrix `M = ∂x(T)/∂x(0)`, and
//! Newton-iterates on the boundary residual `r(x₀) = x(T; x₀) − x₀`.
//! Both a dense-monodromy variant (Aprille–Trick) and a matrix-free
//! GMRES variant (Telichevesky–Kundert–White style) are provided.
//!
//! Applied to the *difference-frequency* period of a closely-spaced-tone
//! problem, this is the paper's baseline: with ≥10 steps per LO period it
//! needs `~10·f_LO/fd` time steps (≈300 000 for the paper's mixer), which
//! is what the sheared-MPDE method's 1200-point grid replaces.

use rfsim_circuit::dcop::dc_operating_point_budgeted;
use rfsim_circuit::driver::NewtonDriver;
use rfsim_circuit::newton::{LinearSolverWorkspace, NewtonOptions, NewtonSystem};
use rfsim_circuit::{Circuit, CircuitError, Result, UnknownKind};
use rfsim_numerics::dense::DenseMatrix;
use rfsim_numerics::krylov::{gmres_budgeted, FnOperator, GmresOptions, IdentityPrecond};
use rfsim_numerics::sparse::{CscAssembly, CscMatrix, CsrAssembly, CsrMatrix, Triplets};
use rfsim_numerics::sparse_lu::{LuOptions, SparseLu, SymbolicLu};
use rfsim_numerics::vector::wrms_ratio;
use rfsim_numerics::SolveBudget;
use std::sync::Arc;

/// How the shooting update equation `(M − I)·δ = −r` is solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShootingMethod {
    /// Build the monodromy matrix densely by propagating unit vectors.
    #[default]
    DenseMonodromy,
    /// Matrix-free GMRES using stored per-step factorisations.
    MatrixFree,
}

/// Options for [`shooting_pss`].
#[derive(Debug, Clone, Copy)]
pub struct ShootingOptions {
    /// Fixed backward-Euler steps per period.
    pub steps_per_period: usize,
    /// Maximum outer (shooting) Newton iterations.
    pub max_outer: usize,
    /// Newton options for the inner per-step solves.
    pub newton: NewtonOptions,
    /// Linear-solve strategy for the shooting update.
    pub method: ShootingMethod,
}

impl Default for ShootingOptions {
    fn default() -> Self {
        ShootingOptions {
            steps_per_period: 200,
            max_outer: 40,
            newton: NewtonOptions::default(),
            method: ShootingMethod::default(),
        }
    }
}

/// Result of a shooting solve.
#[derive(Debug, Clone)]
pub struct ShootingResult {
    /// The periodic initial state `x(0) = x(T)`.
    pub initial_state: Vec<f64>,
    /// Time points of the final trajectory (length `steps + 1`).
    pub times: Vec<f64>,
    /// Flattened trajectory over the final period.
    pub states: Vec<f64>,
    /// Unknowns per state.
    pub num_unknowns: usize,
    /// Outer shooting iterations used.
    pub outer_iterations: usize,
    /// Total inner Newton iterations across all time steps.
    pub inner_newton_iterations: usize,
    /// Total time steps integrated (all outer iterations).
    pub total_steps: usize,
}

impl ShootingResult {
    /// State at trajectory index `k`.
    pub fn state(&self, k: usize) -> &[f64] {
        &self.states[k * self.num_unknowns..(k + 1) * self.num_unknowns]
    }

    /// Waveform of one unknown over the final period.
    pub fn signal(&self, unknown: usize) -> Vec<f64> {
        (0..self.times.len())
            .map(|k| self.state(k)[unknown])
            .collect()
    }
}

/// Number of shooting time steps the paper's baseline needs: one
/// difference-frequency period resolved with `steps_per_lo` points per
/// LO period.
///
/// For the paper's mixer (`f_lo = 450 MHz`, `fd = 15 kHz`,
/// `steps_per_lo = 10`) this gives 300 000 steps.
pub fn difference_period_steps(f_lo: f64, fd: f64, steps_per_lo: usize) -> usize {
    ((f_lo / fd).ceil() as usize) * steps_per_lo
}

/// One backward-Euler step's nonlinear system.
struct BeStep<'a> {
    circuit: &'a Circuit,
    inv_h: f64,
    q_prev_over_h: &'a [f64],
    b_new: &'a [f64],
}

impl NewtonSystem for BeStep<'_> {
    fn dim(&self) -> usize {
        self.circuit.num_unknowns()
    }

    fn residual(&self, x: &[f64], out: &mut [f64]) {
        let n = out.len();
        let mut q = vec![0.0; n];
        self.circuit.eval_q(x, &mut q, None);
        self.circuit.eval_f(x, out, None);
        for i in 0..n {
            out[i] += self.inv_h * q[i] - self.q_prev_over_h[i] + self.b_new[i];
        }
    }

    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
        let n = out.len();
        let mut q = vec![0.0; n];
        let mut c = Triplets::with_capacity(n, n, 8 * n);
        self.circuit.eval_q(x, &mut q, Some(&mut c));
        self.circuit.eval_f(x, out, Some(jac));
        for i in 0..n {
            out[i] += self.inv_h * q[i] - self.q_prev_over_h[i] + self.b_new[i];
        }
        let cm = c.to_csr();
        for r in 0..n {
            let (cols, vals) = cm.row(r);
            for (cc, v) in cols.iter().zip(vals) {
                jac.push(r, *cc, self.inv_h * v);
            }
        }
    }
}

/// One integrated period: trajectory plus per-step sensitivity operators.
struct PeriodSweep {
    times: Vec<f64>,
    states: Vec<f64>,
    /// Per step: factored `J = C/h + G` at the accepted point and `C_prev/h`.
    step_ops: Vec<(SparseLu, CsrMatrix)>,
    inner_iterations: usize,
}

/// Caches carried across every time step (and outer iteration) of a
/// shooting run: the sensitivity Jacobian and `C/h` operators share one
/// structure for the whole run, so slot maps and the symbolic
/// factorisation are built once and every step is an in-place scatter plus
/// a numeric-only refactorisation.
#[derive(Default)]
struct SensitivityCache {
    jac_assembly: Option<CscAssembly>,
    jac_csc: Option<CscMatrix>,
    symbolic: Option<Arc<SymbolicLu>>,
    c_assembly: Option<CsrAssembly>,
}

fn integrate_period(
    circuit: &Circuit,
    x0: &[f64],
    period: f64,
    steps: usize,
    kinds: &[UnknownKind],
    newton: NewtonOptions,
    keep_ops: bool,
    workspace: &mut LinearSolverWorkspace,
    cache: &mut SensitivityCache,
    budget: &SolveBudget,
) -> Result<PeriodSweep> {
    let n = circuit.num_unknowns();
    let h = period / steps as f64;
    let inv_h = 1.0 / h;
    let mut x = x0.to_vec();
    let mut times = Vec::with_capacity(steps + 1);
    let mut states = Vec::with_capacity((steps + 1) * n);
    times.push(0.0);
    states.extend_from_slice(&x);
    let mut step_ops = Vec::new();
    let mut inner_iterations = 0;
    let mut q_prev = vec![0.0; n];
    let mut b_new = vec![0.0; n];
    let mut res = vec![0.0; n];
    let mut jac = Triplets::with_capacity(n, n, 16 * n);
    let mut c_prev = Triplets::with_capacity(n, n, 8 * n);

    for k in 0..steps {
        let t_new = period * (k + 1) as f64 / steps as f64;
        c_prev.clear();
        circuit.eval_q(&x, &mut q_prev, Some(&mut c_prev));
        let q_prev_over_h: Vec<f64> = q_prev.iter().map(|q| q * inv_h).collect();
        circuit.eval_b(t_new, &mut b_new);
        let sys = BeStep {
            circuit,
            inv_h,
            q_prev_over_h: &q_prev_over_h,
            b_new: &b_new,
        };
        let (x_new, stats) = NewtonDriver::new(newton).solve(&sys, &x, kinds, workspace, budget)?;
        inner_iterations += stats.iterations;

        if keep_ops {
            // Jacobian at the accepted point, factored for sensitivity use.
            // Every step shares one structure: slot maps and the symbolic
            // factorisation are built on the first step; later steps scatter
            // in place and refactor numerically. A step whose values kill a
            // recorded pivot is repaired by an in-pattern row exchange when
            // admissible (restricted pivoting), with a full factorisation
            // only as the last resort.
            jac.clear();
            sys.residual_and_jacobian(&x_new, &mut res, &mut jac);
            if CscAssembly::assemble_cached(&mut cache.jac_assembly, &mut cache.jac_csc, &jac) {
                cache.symbolic = None;
            }
            let csc = cache.jac_csc.as_ref().expect("assembled above");
            let lu = match cache
                .symbolic
                .as_ref()
                .and_then(|sym| sym.refactor_shared(csc).ok())
            {
                Some(lu) => lu,
                None => {
                    let lu = SparseLu::factor(csc, LuOptions::default())?;
                    cache.symbolic = Some(lu.symbolic_shared());
                    lu
                }
            };
            // C_prev/h as an explicit operator (each step keeps its own
            // copy in step_ops; only the compression order is cached).
            if !cache
                .c_assembly
                .as_ref()
                .is_some_and(|asm| asm.matches(&c_prev))
            {
                cache.c_assembly = Some(CsrAssembly::new(&c_prev));
            }
            let c_asm = cache.c_assembly.as_ref().expect("built above");
            let mut c_over_h = c_asm.zero_matrix();
            let ok = c_asm.scatter(&c_prev, &mut c_over_h);
            debug_assert!(ok, "matching assembly must scatter");
            for v in c_over_h.data_mut() {
                *v *= inv_h;
            }
            step_ops.push((lu, c_over_h));
        }

        x = x_new;
        times.push(t_new);
        states.extend_from_slice(&x);
    }
    Ok(PeriodSweep {
        times,
        states,
        step_ops,
        inner_iterations,
    })
}

/// Applies the monodromy operator: `v ← J_k⁻¹ · (C_{k-1}/h) · v` per step.
fn apply_monodromy(step_ops: &[(SparseLu, CsrMatrix)], v: &[f64]) -> Vec<f64> {
    let mut cur = v.to_vec();
    for (lu, c_over_h) in step_ops {
        let rhs = c_over_h.matvec(&cur);
        cur = lu.solve(&rhs);
    }
    cur
}

/// Finds the periodic steady state `x(0) = x(T)` of a forced circuit.
///
/// Starts from the DC operating point unless `initial_guess` is given.
///
/// # Errors
///
/// * Propagates DC/inner Newton failures.
/// * [`CircuitError::ConvergenceFailure`] if the outer iteration stalls.
pub fn shooting_pss(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: ShootingOptions,
) -> Result<ShootingResult> {
    shooting_pss_budgeted(
        circuit,
        period,
        initial_guess,
        options,
        &SolveBudget::unlimited(),
    )
}

/// [`shooting_pss`] under a [`SolveBudget`]: the budget covers the DC
/// seed, every inner per-step Newton solve of every outer iteration, and
/// the matrix-free GMRES update.
///
/// # Errors
///
/// [`CircuitError::Interrupted`] when the budget stops a solve, plus
/// everything [`shooting_pss`] returns.
pub fn shooting_pss_budgeted(
    circuit: &Circuit,
    period: f64,
    initial_guess: Option<&[f64]>,
    options: ShootingOptions,
    budget: &SolveBudget,
) -> Result<ShootingResult> {
    let n = circuit.num_unknowns();
    let kinds = circuit.unknown_kinds().to_vec();
    let mut x0: Vec<f64> = match initial_guess {
        Some(g) => g.to_vec(),
        None => dc_operating_point_budgeted(circuit, Default::default(), budget)?.solution,
    };
    let mut total_steps = 0;
    let mut inner_newton = 0;
    // Shared across every time step of every outer iteration: the BE step
    // Jacobian has one structure for the whole shooting run.
    let mut workspace = LinearSolverWorkspace::new();
    let mut sensitivity_cache = SensitivityCache::default();

    for outer in 1..=options.max_outer {
        let sweep = integrate_period(
            circuit,
            &x0,
            period,
            options.steps_per_period,
            &kinds,
            options.newton,
            true,
            &mut workspace,
            &mut sensitivity_cache,
            budget,
        )?;
        total_steps += options.steps_per_period;
        inner_newton += sweep.inner_iterations;
        let x_t = sweep.states[options.steps_per_period * n..].to_vec();
        let r: Vec<f64> = x_t.iter().zip(&x0).map(|(a, b)| a - b).collect();

        // Converged?
        if wrms_ratio(&r, &x0, options.newton.reltol, options.newton.abstol_v) <= 1.0 {
            return Ok(ShootingResult {
                initial_state: x0,
                times: sweep.times,
                states: sweep.states,
                num_unknowns: n,
                outer_iterations: outer,
                inner_newton_iterations: inner_newton,
                total_steps,
            });
        }

        // Outer Newton update: (M − I)·δ = −r.
        let delta = match options.method {
            ShootingMethod::DenseMonodromy => {
                let mut m = DenseMatrix::zeros(n, n);
                let mut e = vec![0.0; n];
                for j in 0..n {
                    e[j] = 1.0;
                    let col = apply_monodromy(&sweep.step_ops, &e);
                    e[j] = 0.0;
                    for i in 0..n {
                        m[(i, j)] = col[i];
                    }
                }
                for i in 0..n {
                    m[(i, i)] -= 1.0;
                }
                let neg_r: Vec<f64> = r.iter().map(|v| -v).collect();
                m.solve(&neg_r).map_err(CircuitError::from)?
            }
            ShootingMethod::MatrixFree => {
                // (I − M)·δ = r  ⇔  (M − I)·δ = −r.
                let op = FnOperator::new(n, |v: &[f64], y: &mut [f64]| {
                    let mv = apply_monodromy(&sweep.step_ops, v);
                    for i in 0..n {
                        y[i] = v[i] - mv[i];
                    }
                });
                let (delta, _) = gmres_budgeted(
                    &op,
                    &IdentityPrecond,
                    &r,
                    &vec![0.0; n],
                    GmresOptions {
                        rtol: 1e-10,
                        restart: n.min(60),
                        max_iters: 10 * n + 50,
                        ..Default::default()
                    },
                    budget,
                )
                .map_err(CircuitError::from)?;
                delta
            }
        };
        for i in 0..n {
            x0[i] += delta[i];
        }
    }
    Err(CircuitError::ConvergenceFailure {
        analysis: "shooting".into(),
        iterations: options.max_outer,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfsim_circuit::{CircuitBuilder, Waveform, GROUND};
    use std::f64::consts::PI;

    fn rc_lowpass(r: f64, c: f64, amp: f64, freq: f64) -> (Circuit, usize) {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(amp, freq))
            .expect("v");
        b.resistor("R1", inp, out, r).expect("r");
        b.capacitor("C1", out, GROUND, c).expect("c");
        let ckt = b.build().expect("build");
        let idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        (ckt, idx)
    }

    #[test]
    fn difference_period_steps_matches_paper() {
        // 450 MHz LO, 15 kHz difference, 10 steps per LO period → 300 000.
        assert_eq!(difference_period_steps(450e6, 15e3, 10), 300_000);
    }

    #[test]
    fn rc_shooting_amplitude() {
        let (r, c, f) = (1e3, 1e-9, 100e3);
        let (ckt, out) = rc_lowpass(r, c, 1.0, f);
        let res = shooting_pss(
            &ckt,
            1.0 / f,
            None,
            ShootingOptions {
                steps_per_period: 400,
                ..Default::default()
            },
        )
        .expect("shooting");
        let w = 2.0 * PI * f * r * c;
        let mag = 1.0 / (1.0 + w * w).sqrt();
        let peak = res.signal(out).iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(
            (peak - mag).abs() < 0.02,
            "shooting amplitude {peak} vs analytic {mag}"
        );
    }

    #[test]
    fn linear_circuit_converges_in_two_outer_iterations() {
        // For a linear circuit the boundary map is affine: one Newton step
        // lands on the fixed point, the second confirms convergence.
        let (ckt, _) = rc_lowpass(1e3, 1e-9, 1.0, 100e3);
        let res = shooting_pss(
            &ckt,
            1e-5,
            None,
            ShootingOptions {
                steps_per_period: 100,
                ..Default::default()
            },
        )
        .expect("shooting");
        assert!(res.outer_iterations <= 3, "got {}", res.outer_iterations);
    }

    #[test]
    fn periodicity_of_solution() {
        let (ckt, _) = rc_lowpass(2e3, 2e-9, 1.0, 50e3);
        let res = shooting_pss(
            &ckt,
            2e-5,
            None,
            ShootingOptions {
                steps_per_period: 256,
                ..Default::default()
            },
        )
        .expect("shooting");
        let n = res.num_unknowns;
        let first = res.state(0).to_vec();
        let last = res.state(res.times.len() - 1).to_vec();
        for i in 0..n {
            assert!(
                (first[i] - last[i]).abs() < 1e-4 * (1.0 + first[i].abs()),
                "x(0)[{i}]={} vs x(T)[{i}]={}",
                first[i],
                last[i]
            );
        }
    }

    #[test]
    fn matrix_free_matches_dense() {
        let (ckt, out) = rc_lowpass(1e3, 1e-9, 1.0, 100e3);
        let mk = |method| {
            shooting_pss(
                &ckt,
                1e-5,
                None,
                ShootingOptions {
                    steps_per_period: 128,
                    method,
                    ..Default::default()
                },
            )
            .expect("shooting")
        };
        let dense = mk(ShootingMethod::DenseMonodromy);
        let free = mk(ShootingMethod::MatrixFree);
        let sd = dense.signal(out);
        let sf = free.signal(out);
        for (a, b) in sd.iter().zip(&sf) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn diode_rectifier_matches_periodic_fd() {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(2.0, 1e6))
            .expect("v");
        b.diode("D1", inp, out, Default::default()).expect("d");
        b.resistor("RL", out, GROUND, 10e3).expect("r");
        b.capacitor("CL", out, GROUND, 1e-9).expect("c");
        let ckt = b.build().expect("build");
        let out_idx = ckt
            .unknown_index_of_node(ckt.node_by_name("out").expect("out"))
            .expect("idx");
        let shoot = shooting_pss(
            &ckt,
            1e-6,
            None,
            ShootingOptions {
                steps_per_period: 512,
                ..Default::default()
            },
        )
        .expect("shooting");
        let fd = crate::periodic_fd::periodic_fd_pss(
            &ckt,
            1e-6,
            None,
            crate::periodic_fd::PeriodicFdOptions {
                n_samples: 256,
                scheme: rfsim_numerics::diff::DiffScheme::Bdf2,
                ..Default::default()
            },
        )
        .expect("fd pss");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let m_shoot = mean(&shoot.signal(out_idx));
        let m_fd = mean(&fd.signal(out_idx));
        assert!(
            (m_shoot - m_fd).abs() < 0.02,
            "shooting mean {m_shoot} vs collocation mean {m_fd}"
        );
    }
}
