//! Control-plane robustness: cancellation over the wire, deadline-based
//! scheduler-slot reclamation, retry-with-backoff for transient solve
//! failures, and panic isolation — all driven by deterministic injected
//! faults ([`rfsim_circuit::fault`]), so every scenario is a real hung /
//! failing solve going through the production dispatch path, not a mock.

use std::time::{Duration, Instant};

use rfsim_circuit::fault::SolveFault;
use rfsim_numerics::InterruptReason;
use rfsim_serve::service::{JobStatus, ServeConfig, SimService};
use rfsim_serve::spec::{BackendKind, JobSpec};
use rfsim_serve::wire::WireServer;
use rfsim_serve::ServeClient;

const WAIT: Duration = Duration::from_secs(120);

fn small_config() -> ServeConfig {
    ServeConfig {
        threads: 1,
        ..Default::default()
    }
}

fn spec(amplitude: f64) -> JobSpec {
    let mut s = JobSpec::mpde("rc_lowpass", 1e6, vec![amplitude], vec![10e3]);
    s.n1 = 8;
    s.n2 = 4;
    s
}

/// Polls `id` over the wire until its status matches `want` (bounded).
fn poll_until(client: &mut ServeClient, id: u64, want: &str) -> rfsim_serve::client::PollOutcome {
    let deadline = Instant::now() + WAIT;
    loop {
        let outcome = client.poll(id, 50).expect("poll");
        if outcome.status == want {
            return outcome;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck in '{}' waiting for '{want}'",
            outcome.status
        );
    }
}

/// No leaked engine workspaces: everything a solve checked out — hung,
/// cancelled, failed, or finished — made it back to the parked pool.
fn assert_zero_leaked_workspaces(service: &SimService) {
    let cache = service.stats().engine_cache;
    assert_eq!(
        cache.parked, cache.misses,
        "every created workspace must be parked again: {cache:?}"
    );
}

/// The acceptance scenario: a deliberately-hung (fault-injected) job is
/// cancelled over the wire, its scheduler slot is reused by a follow-up
/// job, and no workspace leaks.
#[test]
fn hung_job_cancelled_over_wire_frees_its_slot() {
    let service = SimService::start(small_config());
    // Every rc_lowpass solve now hangs: sleeps per residual evaluation,
    // never converges, safety-bounded at 60 s.
    service.inject_fault("rc_lowpass", SolveFault::stall(5, 60_000));
    let server = WireServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let id = client.submit(&spec(0.1)).expect("submit");
    poll_until(&mut client, id, "running");
    // Cancel the hung solve over the wire. It is mid-solve, so the token
    // fires and the settlement arrives via poll.
    let status = client.cancel(id).expect("cancel");
    assert_eq!(status, "running", "a mid-solve cancel settles async");
    let outcome = poll_until(&mut client, id, "failed");
    assert_eq!(
        outcome.interrupt_reason.as_deref(),
        Some("cancelled"),
        "typed interruption on the wire: {outcome:?}"
    );
    // Cancel is idempotent: a settled job reports its settled status.
    assert_eq!(client.cancel(id).expect("re-cancel"), "failed");

    // The slot is free again: un-fault the family and run a real job
    // through the same scheduler and the same (single-thread) engine.
    assert!(service.clear_fault("rc_lowpass"), "fault was installed");
    let (_, follow_up) = client.run(&spec(0.2), WAIT).expect("follow-up job");
    assert_eq!(follow_up.status, "done");

    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.failed, 1);
    assert_eq!(q.completed, 1);
    assert_zero_leaked_workspaces(&service);
    drop(client);
    server.stop();
    server.join();
}

/// Cancelling a still-queued job settles it — and every submit coalesced
/// onto the same execution — immediately, with the typed cancellation
/// outcome, and frees the queue slot without waiting for the scheduler.
#[test]
fn cancel_before_dispatch_settles_every_coalesced_waiter() {
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    let request = spec(0.15);
    let a = service.submit(&request).expect("submit a");
    let b = service.submit(&request).expect("submit b");
    assert_eq!(
        service.stats().counters.queue(BackendKind::Mpde).coalesced,
        1
    );

    // Cancelling either id cancels the shared execution; both waiters
    // get the cancellation outcome.
    let settled = service.cancel(b).expect("cancel");
    assert_eq!(settled.label(), "failed");
    for id in [a, b] {
        match service.poll(id).expect("poll") {
            JobStatus::Failed { interrupted, .. } => {
                let i = interrupted.expect("typed cancellation outcome");
                assert_eq!(i.reason, InterruptReason::Cancelled);
                assert_eq!(i.iterations, 0, "never dispatched");
            }
            other => panic!("expected cancelled failure for {id}, got {other:?}"),
        }
    }
    let stats = service.stats();
    assert_eq!(stats.queue_depth, 0, "the queue slot is free immediately");
    assert_eq!(stats.counters.queue(BackendKind::Mpde).failed, 2);

    // The stale heap entry does not confuse the scheduler: resume and
    // run a fresh job end to end.
    service.resume();
    let done = service
        .wait(service.submit(&spec(0.25)).expect("submit"), WAIT)
        .expect("fresh job after cancel");
    assert!(!done.points.is_empty());
    assert_zero_leaked_workspaces(&service);
}

/// With a default deadline configured, hung jobs expire instead of
/// pinning engine workers forever — the slots come back and later jobs
/// run normally.
#[test]
fn default_deadline_reclaims_slots_under_load() {
    let service = SimService::start(ServeConfig {
        default_deadline_ms: Some(300),
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::stall(5, 60_000));
    // Two distinct hung executions dispatched as one single-threaded
    // batch: both must expire, in order, on the one worker.
    let ids = [
        service.submit(&spec(0.1)).expect("submit"),
        service.submit(&spec(0.2)).expect("submit"),
    ];
    for id in ids {
        let err = service.wait(id, WAIT).expect_err("deadline must fire");
        let why = err.to_string();
        assert!(
            why.contains("deadline_expired"),
            "expected deadline expiry, got: {why}"
        );
        match service.poll(id).expect("poll") {
            JobStatus::Failed { interrupted, .. } => {
                assert_eq!(
                    interrupted.expect("typed interruption").reason,
                    InterruptReason::DeadlineExpired
                );
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }
    // Both slots reclaimed: a real job still fits under the default
    // deadline and completes.
    service.clear_fault("rc_lowpass");
    let mut fast = spec(0.3);
    fast.deadline_ms = Some(60_000); // per-job override beats the default
    let done = service
        .wait(service.submit(&fast).expect("submit"), WAIT)
        .expect("job after reclamation");
    assert!(!done.points.is_empty());
    assert_zero_leaked_workspaces(&service);
}

/// A transient solver failure (diverges once, then recovers) is retried
/// with backoff and ultimately succeeds; the retry is counted.
#[test]
fn transient_failure_is_retried_and_recovers() {
    let service = SimService::start(ServeConfig {
        retry_max: 2,
        retry_backoff_ms: 10,
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::diverge().times(1));
    let done = service
        .wait(service.submit(&spec(0.1)).expect("submit"), WAIT)
        .expect("retry must recover the job");
    assert!(!done.points.is_empty());
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.retried, 1, "exactly one re-dispatch");
    assert_eq!(q.failed, 0);
    assert_eq!(q.completed, 1);
    assert_zero_leaked_workspaces(&service);
}

/// Retries are bounded: a fault outlasting `retry_max` fails the job
/// with the final error, after exactly `retry_max` re-dispatches.
#[test]
fn retries_exhaust_and_fail() {
    let service = SimService::start(ServeConfig {
        retry_max: 2,
        retry_backoff_ms: 5,
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::diverge());
    let id = service.submit(&spec(0.1)).expect("submit");
    service.wait(id, WAIT).expect_err("must fail");
    match service.poll(id).expect("poll") {
        JobStatus::Failed { interrupted, .. } => {
            assert!(interrupted.is_none(), "a divergence is not an interruption");
        }
        other => panic!("expected failure, got {other:?}"),
    }
    assert_eq!(service.stats().counters.queue(BackendKind::Mpde).retried, 2);
    assert_zero_leaked_workspaces(&service);
}

/// A panicking solve is isolated by the scheduler and is *not* treated
/// as transient: no retries, immediate failure, scheduler stays alive.
#[test]
fn panics_fail_immediately_without_retry() {
    let service = SimService::start(ServeConfig {
        retry_max: 3,
        retry_backoff_ms: 5,
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::panicking());
    let id = service.submit(&spec(0.1)).expect("submit");
    let err = service.wait(id, WAIT).expect_err("panic fails the job");
    assert!(err.to_string().contains("panicked"), "{err}");
    assert_eq!(service.stats().counters.queue(BackendKind::Mpde).retried, 0);

    // The scheduler survived: clear the fault and solve for real.
    service.clear_fault("rc_lowpass");
    let done = service
        .wait(service.submit(&spec(0.2)).expect("submit"), WAIT)
        .expect("job after panic");
    assert!(!done.points.is_empty());
}

/// A running job's poll carries a `progress` object naming the active
/// recovery-ladder rung, its Newton iteration depth and the best
/// residual — published by the per-job budget's observer from the
/// NewtonDriver's staged rungs, all the way out over the wire.
#[test]
fn running_job_reports_rung_progress_over_wire() {
    let service = SimService::start(small_config());
    // A stalling solve iterates forever without converging: plenty of
    // time to observe mid-solve snapshots.
    service.inject_fault("rc_lowpass", SolveFault::stall(2, 60_000));
    let server = WireServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let id = client.submit(&spec(0.1)).expect("submit");
    let deadline = Instant::now() + WAIT;
    let progress = loop {
        let outcome = client.poll(id, 50).expect("poll");
        assert!(
            outcome.status == "queued" || outcome.status == "running",
            "the stalled job must not settle on its own: {outcome:?}"
        );
        if outcome.status == "running" {
            if let Some(p) = outcome.progress {
                break p;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no progress snapshot arrived while running"
        );
    };
    assert_eq!(progress.rung, "plain", "the fault solves on the first rung");
    assert!(progress.iteration >= 1, "snapshot: {progress:?}");
    let best = progress.best_residual.expect("a finite best residual");
    assert!(best.is_finite() && best > 0.0, "snapshot: {progress:?}");

    // Settle the hung job; its progress snapshot dies with it.
    client.cancel(id).expect("cancel");
    let settled = poll_until(&mut client, id, "failed");
    assert!(
        settled.progress.is_none(),
        "settled jobs report no progress"
    );
    drop(client);
    server.stop();
    server.join();
}

/// The diverge fault's *typed* outcome — `Diverged`, produced by the
/// Newton driver when every damping trial is non-finite — survives all
/// the way to a wire poll as the failure message, and is never confused
/// with a budget interruption.
#[test]
fn diverge_fault_typed_outcome_reaches_wire_poll() {
    let service = SimService::start(small_config());
    service.inject_fault("rc_lowpass", SolveFault::diverge());
    let server = WireServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let id = client.submit(&spec(0.1)).expect("submit");
    let outcome = poll_until(&mut client, id, "failed");
    let error = outcome.error.as_deref().expect("failure message");
    assert!(
        error.contains("diverged"),
        "typed divergence on the wire: {outcome:?}"
    );
    assert!(
        outcome.interrupt_reason.is_none(),
        "a divergence is not an interruption: {outcome:?}"
    );
    assert_zero_leaked_workspaces(&service);
    drop(client);
    server.stop();
    server.join();
}

/// The control plane is shard-transparent: on a 2-shard pool a hung job
/// is cancelled over the wire exactly as on a single scheduler — the
/// cancel routes to the owning shard by job id, the typed outcome comes
/// back, and the other shard keeps solving throughout.
#[test]
fn sharded_cancel_over_wire_matches_single_shard_semantics() {
    let service = SimService::start(ServeConfig {
        shards: 2,
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::stall(5, 60_000));
    let server = WireServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let id = client.submit(&spec(0.1)).expect("submit");
    poll_until(&mut client, id, "running");
    client.cancel(id).expect("cancel");
    let outcome = poll_until(&mut client, id, "failed");
    assert_eq!(outcome.interrupt_reason.as_deref(), Some("cancelled"));

    // The cancellation is attributed to exactly one shard's counters —
    // the one that owns the id — and surfaces in the new `cancelled`
    // field of both the per-shard and the aggregate views.
    let stats = service.stats();
    let cancelled_per_shard: Vec<usize> = stats
        .shards
        .iter()
        .map(|s| s.counters.queue(BackendKind::Mpde).cancelled)
        .collect();
    assert_eq!(cancelled_per_shard.iter().sum::<usize>(), 1);
    assert_eq!(stats.counters.queue(BackendKind::Mpde).cancelled, 1);

    // Both shards still take and finish real work after the cancel.
    service.clear_fault("rc_lowpass");
    for amplitude in [0.2, 0.3, 0.4, 0.5] {
        let (_, outcome) = client.run(&spec(amplitude), WAIT).expect("follow-up");
        assert_eq!(outcome.status, "done");
    }
    assert_zero_leaked_workspaces(&service);
    drop(client);
    server.stop();
    server.join();
}

/// Deadlines and retries behave identically per shard: hung jobs expire
/// on whichever shard owns them, and a transient failure retries and
/// recovers without crossing shards.
#[test]
fn sharded_deadline_and_retry_are_unchanged() {
    let service = SimService::start(ServeConfig {
        shards: 4,
        default_deadline_ms: Some(300),
        retry_max: 2,
        retry_backoff_ms: 10,
        ..small_config()
    });
    // Hung jobs on several shards: all must expire independently.
    service.inject_fault("rc_lowpass", SolveFault::stall(5, 60_000));
    let hung = [
        service.submit(&spec(0.1)).expect("submit"),
        service.submit(&spec(0.2)).expect("submit"),
        service.submit(&spec(0.3)).expect("submit"),
    ];
    for id in hung {
        let err = service.wait(id, WAIT).expect_err("deadline must fire");
        assert!(err.to_string().contains("deadline_expired"), "{err}");
    }
    service.clear_fault("rc_lowpass");

    // A transient diverge-once fault is retried and recovers, exactly as
    // on one shard; the retry is counted on the owning shard only.
    service.inject_fault("rc_lowpass", SolveFault::diverge().times(1));
    let mut patient = spec(0.4);
    patient.deadline_ms = Some(60_000);
    let done = service
        .wait(service.submit(&patient).expect("submit"), WAIT)
        .expect("retry must recover");
    assert!(!done.points.is_empty());
    let stats = service.stats();
    assert_eq!(stats.counters.queue(BackendKind::Mpde).retried, 1);
    let retried_shards = stats
        .shards
        .iter()
        .filter(|s| s.counters.queue(BackendKind::Mpde).retried > 0)
        .count();
    assert_eq!(retried_shards, 1, "one shard owns the retried job");
    assert_zero_leaked_workspaces(&service);
}

/// A cancel for a job that already finished changes nothing and returns
/// the settled status (wire-level idempotency contract).
#[test]
fn cancel_after_completion_is_a_no_op() {
    let service = SimService::start(small_config());
    let id = service.submit(&spec(0.1)).expect("submit");
    let result = service.wait(id, WAIT).expect("solve");
    match service.cancel(id).expect("cancel") {
        JobStatus::Done { result: kept, .. } => {
            assert_eq!(kept.digest(), result.digest());
        }
        other => panic!("expected the settled Done status, got {other:?}"),
    }
    // And the result is still pollable, untouched.
    match service.poll(id).expect("poll") {
        JobStatus::Done { result: kept, .. } => assert_eq!(kept.digest(), result.digest()),
        other => panic!("poll after no-op cancel: {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Timeline telemetry: the control-plane paths above, replayed with the
// trace surface asserted — event ordering, outcome labels, and offsets.
// ---------------------------------------------------------------------

/// The labels of a trace's events, in recorded order, with offsets
/// asserted nondecreasing along the way.
fn trace_labels(service: &SimService, id: rfsim_serve::JobId) -> Vec<&'static str> {
    let view = service.trace(id).expect("trace");
    let mut last = 0u64;
    for event in &view.events {
        assert!(
            event.at_ns >= last,
            "timeline offsets must be nondecreasing: {:?}",
            view.events
        );
        last = event.at_ns;
    }
    view.events.iter().map(|e| e.kind.label()).collect()
}

/// A job cancelled before dispatch settles with a timeline that never
/// saw the engine: admitted → queued → settled(cancelled), and no
/// `dispatched` event.
#[test]
fn cancel_before_dispatch_timeline_has_no_dispatch_event() {
    use rfsim_numerics::telemetry::TimelineEventKind;
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    let id = service.submit(&spec(0.1)).expect("submit");
    match service.cancel(id).expect("cancel") {
        JobStatus::Failed { interrupted, .. } => {
            assert!(interrupted.is_some_and(|i| matches!(i.reason, InterruptReason::Cancelled)));
        }
        other => panic!("queued cancel must settle failed, got {other:?}"),
    }
    assert_eq!(
        trace_labels(&service, id),
        vec!["admitted", "queued", "settled"]
    );
    let view = service.trace(id).expect("trace");
    assert!(view.settled);
    assert!(matches!(
        view.events.last().map(|e| e.kind),
        Some(TimelineEventKind::Settled {
            outcome: "cancelled"
        })
    ));
    service.resume();
}

/// A transiently-failing job's timeline records the retry hand-back —
/// dispatched, retry(attempt=1), re-queued, re-dispatched — and still
/// settles solved.
#[test]
fn retry_timeline_records_the_backoff_loop() {
    use rfsim_numerics::telemetry::TimelineEventKind;
    let service = SimService::start(ServeConfig {
        retry_max: 2,
        retry_backoff_ms: 5,
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::diverge().times(1));
    let id = service.submit(&spec(0.1)).expect("submit");
    service.wait(id, WAIT).expect("retry must recover");
    let labels = trace_labels(&service, id);
    let position = |want: &str| {
        labels
            .iter()
            .position(|l| *l == want)
            .unwrap_or_else(|| panic!("no '{want}' event in {labels:?}"))
    };
    let retry = position("retry");
    assert!(position("dispatched") < retry, "{labels:?}");
    // The hand-back re-queues and re-dispatches after the retry mark.
    assert!(
        labels.iter().skip(retry).any(|l| *l == "dispatched"),
        "{labels:?}"
    );
    assert_eq!(labels.last(), Some(&"settled"));
    let view = service.trace(id).expect("trace");
    let retry_event = view
        .events
        .iter()
        .find_map(|e| match e.kind {
            TimelineEventKind::Retry {
                attempt,
                backoff_ms,
            } => Some((attempt, backoff_ms)),
            _ => None,
        })
        .expect("typed retry event");
    assert_eq!(retry_event, (1, 5));
    assert!(matches!(
        view.events.last().map(|e| e.kind),
        Some(TimelineEventKind::Settled { outcome: "solved" })
    ));
}

/// A hung job stopped by its deadline settles a timeline that reached
/// the engine (dispatched) and ends settled(deadline_expired).
#[test]
fn deadline_timeline_settles_as_deadline_expired() {
    use rfsim_numerics::telemetry::TimelineEventKind;
    let service = SimService::start(ServeConfig {
        default_deadline_ms: Some(200),
        ..small_config()
    });
    service.inject_fault("rc_lowpass", SolveFault::stall(5, 60_000));
    let id = service.submit(&spec(0.1)).expect("submit");
    let err = service.wait(id, WAIT).expect_err("deadline must fire");
    assert!(err.to_string().contains("deadline_expired"), "{err}");
    let labels = trace_labels(&service, id);
    assert!(labels.contains(&"dispatched"), "{labels:?}");
    let view = service.trace(id).expect("trace");
    assert!(matches!(
        view.events.last().map(|e| e.kind),
        Some(TimelineEventKind::Settled {
            outcome: "deadline_expired"
        })
    ));
    assert_zero_leaked_workspaces(&service);
}

/// Coalesced waiters share one execution's timeline; a memo hit settled
/// at submit retains the two-event admitted → settled(hit) trace; and
/// with telemetry off the trace surface reports a typed refusal.
#[test]
fn trace_retention_covers_coalesce_memo_and_disabled_paths() {
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    let first = service.submit(&spec(0.1)).expect("submit");
    let twin = service.submit(&spec(0.1)).expect("coalesced submit");
    service.resume();
    service.wait(first, WAIT).expect("solve");
    service.wait(twin, WAIT).expect("coalesced result");
    assert_eq!(trace_labels(&service, first), trace_labels(&service, twin));
    let hit = service.submit(&spec(0.1)).expect("memo hit");
    service.wait(hit, WAIT).expect("stored result");
    assert_eq!(trace_labels(&service, hit), vec!["admitted", "settled"]);

    let dark = SimService::start(ServeConfig {
        telemetry: false,
        ..small_config()
    });
    let id = dark.submit(&spec(0.1)).expect("submit");
    dark.wait(id, WAIT).expect("solve");
    let err = dark.trace(id).expect_err("telemetry off refuses traces");
    assert!(err.to_string().contains("telemetry"), "{err}");
}
