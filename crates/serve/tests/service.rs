//! Service-level behaviour of the memoising layer: LRU eviction,
//! in-flight deduplication, bit-identical memo hits, re-keying on
//! topology change, backpressure, and the TCP wire round trip.

use std::time::Duration;

use rfsim_circuit::{CircuitBuilder, GROUND};
use rfsim_serve::service::{JobStatus, ServeConfig, SimService};
use rfsim_serve::spec::{BackendKind, JobSpec};
use rfsim_serve::wire::WireServer;
use rfsim_serve::{ServeClient, ServeError};

const WAIT: Duration = Duration::from_secs(120);

fn small_config() -> ServeConfig {
    ServeConfig {
        threads: 1,
        ..Default::default()
    }
}

fn spec(amplitude: f64) -> JobSpec {
    let mut s = JobSpec::mpde("rc_lowpass", 1e6, vec![amplitude], vec![10e3]);
    s.n1 = 8;
    s.n2 = 4;
    s
}

#[test]
fn memo_hit_is_bit_identical_to_a_fresh_solve() {
    let service = SimService::start(small_config());
    let request = spec(0.1);
    let first = service
        .wait(service.submit(&request).expect("submit"), WAIT)
        .expect("solve");
    // Second identical submit: served from the store, same bytes, and
    // literally the same allocation.
    let id = service.submit(&request).expect("submit");
    match service.poll(id).expect("poll") {
        JobStatus::Done { result, memo_hit } => {
            assert!(memo_hit, "second submit must be a memo hit");
            assert_eq!(result.digest(), first.digest());
            assert_eq!(result.points, first.points);
        }
        other => panic!("expected instant completion, got {other:?}"),
    }
    assert_eq!(service.stats().counters.queue(BackendKind::Mpde).solves, 1);
    // A *fresh* service (deterministic mode) reproduces the stored bytes
    // exactly — the replay guarantee is about the answer, not the cache.
    let fresh = SimService::start(small_config());
    let refreshed = fresh
        .wait(fresh.submit(&request).expect("submit"), WAIT)
        .expect("fresh solve");
    assert_eq!(refreshed.digest(), first.digest());
    for (a, b) in refreshed.points.iter().zip(&first.points) {
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn concurrent_identical_submits_coalesce_onto_one_solve() {
    // Start paused so both submits land before the scheduler moves:
    // the second MUST take the coalescing path, deterministically.
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    let request = spec(0.15);
    let a = service.submit(&request).expect("submit a");
    let b = service.submit(&request).expect("submit b");
    assert_ne!(a, b, "each submit gets its own id");
    {
        let stats = service.stats();
        let q = stats.counters.queue(BackendKind::Mpde);
        assert_eq!(q.coalesced, 1, "second submit coalesces");
        assert_eq!(stats.queue_depth, 1, "one queued execution for two ids");
    }
    service.resume();
    let ra = service.wait(a, WAIT).expect("result a");
    let rb = service.wait(b, WAIT).expect("result b");
    assert!(
        std::sync::Arc::ptr_eq(&ra, &rb),
        "one solve, one allocation"
    );
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 1, "two concurrent identical submits → one solve");
    assert_eq!(q.completed, 2, "…and both jobs complete");
}

#[test]
fn lru_store_evicts_at_capacity_and_re_solves() {
    let service = SimService::start(ServeConfig {
        store_capacity: 2,
        ..small_config()
    });
    // Three distinct jobs through a capacity-2 store.
    for (i, a) in [0.1, 0.2, 0.3].iter().enumerate() {
        service
            .wait(service.submit(&spec(*a)).expect("submit"), WAIT)
            .expect("solve");
        assert!(service.stats().store_len <= 2, "bounded at step {i}");
    }
    let stats = service.stats();
    assert_eq!(stats.store_len, 2);
    assert_eq!(stats.store.evictions, 1, "third insert evicted the LRU");
    // The evicted (oldest) job re-solves; the resident ones memo-hit.
    service
        .wait(service.submit(&spec(0.1)).expect("submit"), WAIT)
        .expect("re-solve");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 4, "evicted entry pays a fresh solve");
    service
        .wait(service.submit(&spec(0.3)).expect("submit"), WAIT)
        .expect("memo");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 4, "resident entry is served from the store");
    assert_eq!(q.memo_hits, 1);
}

#[test]
fn topology_change_re_keys_the_family() {
    let service = SimService::start(small_config());
    // A custom family: plain RC.
    service.register_family("custom", |p| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 1e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    let mut request = spec(0.1);
    request.family = "custom".into();
    let first = service
        .wait(service.submit(&request).expect("submit"), WAIT)
        .expect("solve");
    // Same name, new topology (an extra node splits R1): the fingerprint
    // part of the store key changes, so the identical spec re-solves
    // rather than serving the stale entry.
    service.register_family("custom", |p| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let mid = b.node("mid");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1a", inp, mid, 0.5e3)?;
        b.resistor("R1b", mid, out, 0.5e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    let second = service
        .wait(service.submit(&request).expect("submit"), WAIT)
        .expect("re-keyed solve");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 2, "topology change must force a fresh solve");
    assert_eq!(q.memo_hits, 0);
    assert_ne!(
        first.points[0].samples.len(),
        second.points[0].samples.len(),
        "the new topology has more unknowns"
    );
    // Re-registration also evicts the family's stored entries (the key
    // covers structure + parameters, not element values, so a
    // same-topology retune would otherwise serve stale solutions); only
    // the new build's entry remains.
    assert_eq!(service.stats().store_len, 1);
    // The already-returned result is untouched by the eviction.
    assert_eq!(first.num_samples(), first.points[0].samples.len());
}

#[test]
fn queue_backpressure_rejects_when_full() {
    let service = SimService::start(ServeConfig {
        queue_capacity: 1,
        paused: true,
        ..small_config()
    });
    let first = service.submit(&spec(0.1)).expect("first fills the queue");
    // An identical submit coalesces (no queue slot needed)…
    service.submit(&spec(0.1)).expect("duplicate coalesces");
    // …but a distinct one needs a slot and bounces.
    match service.submit(&spec(0.2)) {
        Err(ServeError::QueueFull { capacity: 1 }) => {}
        other => panic!("expected backpressure, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.counters.queue(BackendKind::Mpde).rejected, 1);
    service.resume();
    service.wait(first, WAIT).expect("first drains");
    // Once drained, the rejected job is admissible again.
    service
        .wait(service.submit(&spec(0.2)).expect("resubmit"), WAIT)
        .expect("solve");
}

#[test]
fn settled_job_records_are_bounded() {
    // result_capacity bounds the poll-able history: a long-lived daemon
    // must not grow per-request state without limit.
    let service = SimService::start(ServeConfig {
        result_capacity: 2,
        ..small_config()
    });
    let first = service.submit(&spec(0.1)).expect("submit");
    service.wait(first, WAIT).expect("solve");
    // Memo-hit the same job three more times: each settles a new record,
    // pushing the oldest out.
    let mut last = first;
    for _ in 0..3 {
        last = service.submit(&spec(0.1)).expect("memo submit");
    }
    assert!(
        matches!(service.poll(first), Err(ServeError::UnknownJob(_))),
        "the oldest settled record must have been dropped"
    );
    // The newest records are still pollable, and the store still serves.
    assert!(matches!(
        service.poll(last).expect("poll"),
        JobStatus::Done { memo_hit: true, .. }
    ));
    assert_eq!(service.stats().counters.queue(BackendKind::Mpde).solves, 1);
}

#[test]
fn high_priority_coalesce_escalates_a_queued_twin() {
    use rfsim_serve::spec::Priority;
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    // A Low-priority job queued behind nothing (scheduler paused)…
    let mut low = spec(0.1);
    low.priority = Priority::Low;
    let a = service.submit(&low).expect("low submit");
    let other = service.submit(&spec(0.2)).expect("normal submit");
    // …then a High-priority identical request coalesces and escalates.
    let mut high = spec(0.1);
    high.priority = Priority::High;
    let b = service.submit(&high).expect("high submit");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.coalesced, 1);
    service.resume();
    let ra = service.wait(a, WAIT).expect("low id");
    let rb = service.wait(b, WAIT).expect("high id");
    assert!(std::sync::Arc::ptr_eq(&ra, &rb));
    service.wait(other, WAIT).expect("other");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    // The escalated duplicate queue entry must NOT have double-solved:
    // one solve per distinct key, the stale entry dropped on pop.
    assert_eq!(q.solves, 2);
    assert_eq!(q.completed, 3);
}

#[test]
fn evict_clears_by_family_and_wholesale() {
    let service = SimService::start(small_config());
    let mut rc = spec(0.1);
    rc.n1 = 8;
    let mut stiff = spec(0.1);
    stiff.family = "rc_stiff".into();
    service
        .wait(service.submit(&rc).expect("submit"), WAIT)
        .expect("solve rc");
    service
        .wait(service.submit(&stiff).expect("submit"), WAIT)
        .expect("solve stiff");
    assert_eq!(service.stats().store_len, 2);
    assert_eq!(service.evict(Some("rc_lowpass")), 1);
    assert_eq!(service.stats().store_len, 1);
    // The evicted family re-solves; the survivor still memo-hits.
    service
        .wait(service.submit(&rc).expect("submit"), WAIT)
        .expect("re-solve");
    service
        .wait(service.submit(&stiff).expect("submit"), WAIT)
        .expect("memo");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 3);
    assert_eq!(q.memo_hits, 1);
    assert_eq!(service.evict(None), 2);
    assert_eq!(service.stats().store_len, 0);
}

#[test]
fn hb2_and_periodic_fd_jobs_serve_and_memoise() {
    let service = SimService::start(small_config());
    let mut hb = spec(0.1);
    hb.backend = BackendKind::Hb2;
    hb.n1 = 8;
    hb.n2 = 4;
    let first = service
        .wait(service.submit(&hb).expect("submit"), WAIT)
        .expect("hb2 solve");
    let again = service
        .wait(service.submit(&hb).expect("submit"), WAIT)
        .expect("hb2 memo");
    assert_eq!(first.digest(), again.digest());
    assert_eq!(
        service.stats().counters.queue(BackendKind::Hb2).memo_hits,
        1
    );

    let mut fd = spec(0.5);
    fd.backend = BackendKind::PeriodicFd;
    fd.f1 = 200e3;
    fd.n1 = 32;
    // Spacings/n2 are ignored by canonicalisation: different spellings
    // of the same single-tone request share one store entry.
    fd.spacings = vec![10e3];
    fd.n2 = 8;
    let a = service
        .wait(service.submit(&fd).expect("submit"), WAIT)
        .expect("fd solve");
    fd.spacings = vec![123.0, 456.0];
    fd.n2 = 2;
    let b = service
        .wait(service.submit(&fd).expect("submit"), WAIT)
        .expect("fd memo");
    assert_eq!(a.digest(), b.digest());
    let q = service.stats().counters.queue(BackendKind::PeriodicFd);
    assert_eq!(q.solves, 1);
    assert_eq!(q.memo_hits, 1);
}

#[test]
fn memo_hit_submits_are_build_free() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    // A counting family: every *closure invocation* (probe or sweep
    // point) bumps the counter. Memo-hit submits must not bump it at all.
    let builds = Arc::new(AtomicUsize::new(0));
    let service = SimService::start(small_config());
    let counter = Arc::clone(&builds);
    service.register_family("counted", move |p| {
        counter.fetch_add(1, Ordering::SeqCst);
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 1e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    let mut request = spec(0.1);
    request.family = "counted".into();
    service
        .wait(service.submit(&request).expect("submit"), WAIT)
        .expect("solve");
    let after_solve = builds.load(Ordering::SeqCst);
    assert!(after_solve >= 1, "the fresh solve builds circuits");
    // Identical submit: fingerprint served from the per-family cache and
    // the result from the store — the builder is never invoked.
    let id = service.submit(&request).expect("memo submit");
    assert!(matches!(
        service.poll(id).expect("poll"),
        JobStatus::Done { memo_hit: true, .. }
    ));
    assert_eq!(
        builds.load(Ordering::SeqCst),
        after_solve,
        "a memo-hit submit must not invoke the family builder"
    );
    let keying = service.stats().keying;
    assert_eq!(keying.fp_cache_hits, 1, "{keying:?}");
    assert_eq!(keying.fp_cache_misses, 1, "{keying:?}");
}

#[test]
fn fingerprint_cache_respects_topology_dependent_families() {
    // A family whose *topology* depends on the operating point: above
    // 0.25 V a feedthrough capacitor switches in. First points on either
    // side of the threshold must never share a cached fingerprint.
    let service = SimService::start(small_config());
    service.register_family("switching", |p| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        if p.amplitude > 0.25 {
            let mid = b.node("mid");
            b.resistor("R1a", inp, mid, 0.5e3)?;
            b.resistor("R1b", mid, out, 0.5e3)?;
        } else {
            b.resistor("R1", inp, out, 1e3)?;
        }
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    let mut low = spec(0.1);
    low.family = "switching".into();
    let mut high = spec(0.3);
    high.family = "switching".into();
    let below = service
        .wait(service.submit(&low).expect("submit low"), WAIT)
        .expect("solve low");
    // Different first amplitude → different cache slot → fresh probe:
    // the 0.1 V fingerprint is not reused for the 0.3 V topology.
    let above = service
        .wait(service.submit(&high).expect("submit high"), WAIT)
        .expect("solve high");
    assert_ne!(
        below.points[0].samples.len(),
        above.points[0].samples.len(),
        "the switched-in topology has more unknowns"
    );
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 2, "distinct operating points must both solve");
    assert_eq!(q.memo_hits, 0);
    // Each operating point now memo-hits its own entry, build-free.
    let keying_before = service.stats().keying;
    service
        .wait(service.submit(&low).expect("resubmit"), WAIT)
        .expect("memo low");
    service
        .wait(service.submit(&high).expect("resubmit"), WAIT)
        .expect("memo high");
    let stats = service.stats();
    assert_eq!(stats.counters.queue(BackendKind::Mpde).memo_hits, 2);
    assert_eq!(
        stats.keying.fp_cache_hits,
        keying_before.fp_cache_hits + 2,
        "repeat submits key build-free"
    );
}

#[test]
fn register_family_invalidates_cached_fingerprints() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    let service = SimService::start(small_config());
    let v2_builds = Arc::new(AtomicUsize::new(0));
    service.register_family("swapped", |p| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 1e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    let mut request = spec(0.1);
    request.family = "swapped".into();
    service
        .wait(service.submit(&request).expect("submit"), WAIT)
        .expect("solve v1");
    // Replace the builder (same name, same topology, retuned values):
    // the cached v1 fingerprint must be dropped, so the next submit
    // re-probes through the *new* builder instead of keying blind.
    let counter = Arc::clone(&v2_builds);
    service.register_family("swapped", move |p| {
        counter.fetch_add(1, Ordering::SeqCst);
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 2e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    assert!(service.stats().keying.invalidations >= 1);
    service
        .wait(service.submit(&request).expect("submit"), WAIT)
        .expect("solve v2");
    assert!(
        v2_builds.load(Ordering::SeqCst) >= 1,
        "the replacement builder must be probed, not the stale cache"
    );
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 2, "the retune re-solves (store was evicted)");
}

#[test]
fn stale_builder_results_do_not_repopulate_the_store() {
    // A job solved by a superseded builder completes its waiters but must
    // not be stored: a same-topology retune shares the old store key, so
    // storing it would silently undo register_family's eviction.
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    service.register_family("retuned", |p| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 1e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    let mut request = spec(0.1);
    request.family = "retuned".into();
    // Queued but not yet solving (scheduler paused)…
    let id = service.submit(&request).expect("submit v1");
    // …when the family is retuned (same topology, new resistance).
    service.register_family("retuned", |p| {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let out = b.node("out");
        b.vsource("VRF", inp, GROUND, p.source())?;
        b.resistor("R1", inp, out, 2e3)?;
        b.capacitor("C1", out, GROUND, 160e-12)?;
        b.build()
    });
    service.resume();
    // The in-flight job still delivers the v1 result it was asked for…
    let v1 = service.wait(id, WAIT).expect("v1 result");
    // …but the identical spec must now re-solve through the v2 builder,
    // not be served the v1 result out of the store.
    let v2 = service
        .wait(service.submit(&request).expect("resubmit"), WAIT)
        .expect("v2 result");
    assert_ne!(v1.digest(), v2.digest(), "retune must change the solution");
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 2, "the stale result must not serve as a memo");
    assert_eq!(q.memo_hits, 0);
}

#[test]
fn wire_roundtrip_over_loopback() {
    let service = SimService::start(small_config());
    let server = WireServer::start(service, "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    let request = spec(0.12);
    let (_, cold) = client.run(&request, WAIT).expect("cold run");
    assert!(!cold.memo_hit);
    let (_, warm) = client.run(&request, WAIT).expect("memo run");
    assert!(warm.memo_hit, "second run over the wire memo-hits");
    assert_eq!(
        cold.digest, warm.digest,
        "replayed samples must be bit-identical across the wire"
    );
    // A second, concurrent connection sees the same store.
    let mut other = ServeClient::connect(addr).expect("connect 2");
    let stats = other.stats().expect("stats");
    assert!(stats.number_at("store.hits").unwrap_or(0.0) >= 1.0);
    assert_eq!(stats.number_at("store.len"), Some(1.0));
    assert_eq!(other.evict(None).expect("evict"), 1);
    // Shutdown verb stops the accept loop.
    client.shutdown().expect("shutdown");
    server.join();
    assert!(server.stopping());
}
