//! The sharded serve tier: routing stability under shard-count change,
//! per-shard cache isolation, per-client fairness under a flooding
//! connection, and the per-shard stats contract over the wire — every
//! stats field documented in `docs/scaling.md` is asserted present here,
//! so the doc's field reference cannot silently rot.

use std::time::Duration;

use proptest::prelude::*;
use rfsim_rf::key::{rendezvous_route, JobKeyBuilder, Quantizer};
use rfsim_serve::service::{ServeConfig, SimService};
use rfsim_serve::spec::{BackendKind, JobSpec};
use rfsim_serve::wire::{FrontEndConfig, WireServer};
use rfsim_serve::ServeClient;

const WAIT: Duration = Duration::from_secs(120);

fn config(shards: usize) -> ServeConfig {
    ServeConfig {
        threads: 1,
        shards,
        ..Default::default()
    }
}

fn spec(amplitude: f64) -> JobSpec {
    let mut s = JobSpec::mpde("rc_lowpass", 1e6, vec![amplitude], vec![10e3]);
    s.n1 = 8;
    s.n2 = 4;
    s
}

fn key_from(raw: u64) -> rfsim_rf::key::JobKey {
    JobKeyBuilder::unseeded(Quantizer::default())
        .push_u64(raw)
        .finish()
}

proptest! {
    // Routing is a pure function of (key, shard count): the same key
    // always lands on the same shard, and the shard is in range.
    #[test]
    fn routing_is_deterministic_and_in_range(raw in 0u64..u64::MAX, shards in 1usize..16) {
        let key = key_from(raw);
        let a = rendezvous_route(key, shards);
        let b = rendezvous_route(key, shards);
        prop_assert_eq!(a, b);
        prop_assert!(a < shards);
    }

    // The minimal-movement property that makes re-sharding cheap:
    // growing an n-shard pool to n+1 shards moves a key only if it
    // moves *to the new shard* — no key is reshuffled between
    // surviving shards — and the moved fraction stays near 1/(n+1).
    #[test]
    fn resharding_moves_keys_only_to_the_new_shard(
        seed in 0u64..u64::MAX,
        shards in 1usize..8,
    ) {
        let keys: Vec<_> = (0..512u64)
            .map(|i| key_from(seed.wrapping_add(i.wrapping_mul(0x9e3779b97f4a7c15))))
            .collect();
        let mut moved = 0usize;
        for &key in &keys {
            let before = rendezvous_route(key, shards);
            let after = rendezvous_route(key, shards + 1);
            if before != after {
                prop_assert_eq!(
                    after, shards,
                    "a moved key must land on the new shard, not reshuffle"
                );
                moved += 1;
            }
        }
        // Expected fraction is 1/(n+1); allow generous slack for a
        // 512-key sample while still rejecting "everything moved".
        let expected = keys.len() / (shards + 1);
        prop_assert!(moved > 0, "the new shard must take some keys");
        prop_assert!(
            moved <= expected * 2 + 8,
            "moved {moved} of {} keys to the new shard; expected about {expected}",
            keys.len()
        );
    }
}

/// Each (family, first-point) slot is owned by exactly one shard: its
/// solutions are stored there, its memo hits are served there, and the
/// other shards never see the key. The aggregate stats equal the
/// field-by-field sum of the per-shard views.
#[test]
fn per_shard_caches_are_isolated() {
    let service = SimService::start(config(4));
    let amplitudes = [0.1, 0.15, 0.2, 0.25, 0.3, 0.35];
    for &a in &amplitudes {
        let id = service.submit(&spec(a)).expect("submit");
        service.wait(id, WAIT).expect("solve");
    }
    // Re-submit everything: each must be a memo hit on its owning shard.
    for &a in &amplitudes {
        let id = service.submit(&spec(a)).expect("resubmit");
        service.wait(id, WAIT).expect("memo replay");
    }
    let stats = service.stats();
    assert_eq!(stats.shards.len(), 4);
    let q = stats.counters.queue(BackendKind::Mpde);
    assert_eq!(q.submitted, 2 * amplitudes.len());
    assert_eq!(q.memo_hits, amplitudes.len());
    assert_eq!(q.solves, amplitudes.len());

    // Isolation: every solution lives on exactly one shard — the shard
    // store lengths partition the job set, and no shard both solved and
    // missed the same keys (a shard's memo hits can never exceed its
    // own insertions).
    let total_stored: usize = stats.shards.iter().map(|s| s.store_len).sum();
    assert_eq!(total_stored, amplitudes.len(), "stores partition the keys");
    let populated = stats.shards.iter().filter(|s| s.store_len > 0).count();
    assert!(
        populated >= 2,
        "six slots over four shards should populate at least two shards"
    );
    for shard in &stats.shards {
        let sq = shard.counters.queue(BackendKind::Mpde);
        assert_eq!(
            sq.memo_hits, shard.store.insertions,
            "shard {} must serve exactly the keys it stored",
            shard.shard
        );
        assert_eq!(sq.submitted, 2 * shard.store.insertions);
    }
    // Aggregates are the sums of the per-shard views.
    let summed_hits: usize = stats
        .shards
        .iter()
        .map(|s| s.counters.queue(BackendKind::Mpde).memo_hits)
        .sum();
    assert_eq!(summed_hits, q.memo_hits);
    let summed_store_hits: usize = stats.shards.iter().map(|s| s.store.hits).sum();
    assert_eq!(summed_store_hits, stats.store.hits);
}

/// Job ids decode back to their issuing shard: every id handed out by a
/// 4-shard pool polls, cancels, and waits like a single-shard id, and
/// ids never collide across shards.
#[test]
fn job_ids_round_trip_across_shards() {
    let service = SimService::start(config(4));
    let mut ids = Vec::new();
    for i in 0..8 {
        let a = 0.1 + 0.03 * f64::from(i);
        ids.push(service.submit(&spec(a)).expect("submit"));
    }
    let mut sorted: Vec<u64> = ids.iter().map(|id| id.0).collect();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "ids are unique across shards");
    for id in ids {
        let result = service.wait(id, WAIT).expect("every id resolves");
        assert!(!result.points.is_empty());
    }
}

/// Per-client admission control: a connection flooding distinct submits
/// without ever polling hits its in-flight cap and gets the typed
/// `Throttled` refusal — while a second, well-behaved connection on the
/// same server submits unimpeded. Settling a job (here: cancelling it)
/// frees the flooder's slot again via lazy pruning.
#[test]
fn flooding_client_is_throttled_without_starving_others() {
    // Paused scheduler: nothing settles, so owned jobs stay in flight.
    let service = SimService::start(ServeConfig {
        paused: true,
        ..config(2)
    });
    let frontend = FrontEndConfig {
        workers: 2,
        max_inflight: 3,
    };
    let server = WireServer::start_with(service.clone(), "127.0.0.1:0", frontend).expect("bind");
    let mut flooder = ServeClient::connect(server.local_addr()).expect("connect");

    let mut accepted = Vec::new();
    let mut throttled_message = None;
    for i in 0..10 {
        let a = 0.1 + 0.02 * f64::from(i);
        match flooder.submit(&spec(a)) {
            Ok(id) => accepted.push(id),
            Err(e) => {
                throttled_message = Some(e.to_string());
                break;
            }
        }
    }
    assert_eq!(accepted.len(), 3, "the cap admits exactly max_inflight");
    let message = throttled_message.expect("the fourth submit must throttle");
    assert!(
        message.contains("in-flight cap"),
        "typed throttling refusal on the wire: {message}"
    );

    // Fairness: another connection is not affected by the flooder.
    let mut polite = ServeClient::connect(server.local_addr()).expect("connect 2");
    let their_id = polite.submit(&spec(0.9)).expect("unaffected client");
    assert!(their_id > 0);

    // Settling an owned job frees the flooder's slot (lazy pruning).
    assert_eq!(flooder.cancel(accepted[0]).expect("cancel"), "failed");
    flooder
        .submit(&spec(0.8))
        .expect("a freed slot admits the next submit");

    // The refusals are observable in the front-end stats section.
    let stats = polite.stats().expect("stats");
    let throttled = stats.number_at("frontend.throttled").unwrap_or(0.0);
    assert!(throttled >= 1.0, "stats: {}", stats.dump());
    drop(flooder);
    drop(polite);
    server.stop();
    server.join();
}

/// Every stats field documented in `docs/scaling.md`'s field reference
/// is present in a live wire `stats` response from a 2-shard daemon —
/// aggregate sections, the `shards` array with per-shard sections, and
/// the front-end section. Editing the doc table requires editing this
/// list, and vice versa.
#[test]
fn wire_stats_expose_every_documented_field() {
    let service = SimService::start(config(2));
    let server = WireServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    // One solve + one memo hit so the counters are nonzero-capable.
    client.run(&spec(0.1), WAIT).expect("solve");
    client.run(&spec(0.1), WAIT).expect("memo hit");

    let stats = client.stats().expect("stats");
    // Keep in sync with the field reference table in docs/scaling.md.
    const SECTION_FIELDS: &[&str] = &[
        "store.len",
        "store.capacity",
        "store.hits",
        "store.misses",
        "store.hit_rate",
        "store.insertions",
        "store.evictions",
        "store.explicit_evictions",
        "queue.depth",
        "queue.capacity",
        "queues.mpde.submitted",
        "queues.mpde.memo_hits",
        "queues.mpde.coalesced",
        "queues.mpde.solves",
        "queues.mpde.retried",
        "queues.mpde.completed",
        "queues.mpde.failed",
        "queues.mpde.cancelled",
        "queues.mpde.rejected",
        "keying.fp_cache_hits",
        "keying.fp_cache_misses",
        "keying.invalidations",
        "keying.len",
        "engine.workspace_hits",
        "engine.workspace_misses",
        "engine.workspaces_parked",
        "engine.patterns",
        "engine.full_factorizations",
        "engine.refactorizations",
        "engine.precond_refreshes",
        "engine.rung_attempts",
        "engine.rung_successes",
        "latency.queue_wait.count",
        "latency.queue_wait.mean_ms",
        "latency.queue_wait.p50_ms",
        "latency.queue_wait.p90_ms",
        "latency.queue_wait.p99_ms",
        "latency.queue_wait.max_ms",
        "latency.solve.count",
        "latency.solve.mean_ms",
        "latency.solve.p50_ms",
        "latency.solve.p90_ms",
        "latency.solve.p99_ms",
        "latency.solve.max_ms",
        "latency.e2e.count",
        "latency.e2e.mean_ms",
        "latency.e2e.p50_ms",
        "latency.e2e.p90_ms",
        "latency.e2e.p99_ms",
        "latency.e2e.max_ms",
    ];
    const TOP_FIELDS: &[&str] = &["shard_count", "uptime_ms", "stats_generation"];
    const FRONTEND_FIELDS: &[&str] = &[
        "frontend.workers",
        "frontend.max_inflight",
        "frontend.connections_accepted",
        "frontend.connections_active",
        "frontend.requests",
        "frontend.throttled",
        "frontend.long_poll_parks",
        "frontend.parked",
        "frontend.wakeups",
    ];
    for path in SECTION_FIELDS
        .iter()
        .chain(TOP_FIELDS)
        .chain(FRONTEND_FIELDS)
    {
        assert!(
            stats.number_at(path).is_some(),
            "documented field '{path}' missing from wire stats: {}",
            stats.dump()
        );
    }
    assert_eq!(stats.number_at("shard_count"), Some(2.0));
    let shards = stats.array_at("shards").expect("shards array");
    assert_eq!(shards.len(), 2);
    for (index, shard) in shards.iter().enumerate() {
        assert_eq!(shard.number_at("shard"), Some(index as f64));
        for path in SECTION_FIELDS {
            assert!(
                shard.number_at(path).is_some(),
                "documented per-shard field '{path}' missing from shard {index}: {}",
                shard.dump()
            );
        }
    }
    // The memo hit registered somewhere: aggregate and per-shard sums
    // tell the same story over the wire.
    assert_eq!(stats.number_at("queues.mpde.memo_hits"), Some(1.0));
    let per_shard_hits: f64 = shards
        .iter()
        .map(|s| s.number_at("queues.mpde.memo_hits").unwrap_or(0.0))
        .sum();
    assert_eq!(per_shard_hits, 1.0);
    // The solve and the memo hit both landed in the latency histograms.
    assert_eq!(stats.number_at("latency.solve.count"), Some(1.0));
    assert_eq!(stats.number_at("latency.e2e.count"), Some(2.0));
    // Snapshots are orderable: the generation is strictly monotonic.
    let generation = stats.number_at("stats_generation").expect("generation");
    let again = client.stats().expect("stats again");
    assert!(
        again.number_at("stats_generation").expect("generation") > generation,
        "stats_generation must increase per snapshot"
    );
    assert!(again.number_at("uptime_ms").expect("uptime") >= stats.number_at("uptime_ms").unwrap());
    drop(client);
    server.stop();
    server.join();
}

/// Every `rfsim_*` series named in `docs/observability.md`'s series
/// reference appears in a live `metrics` scrape, and every series the
/// daemon emits is documented — the exposition and the doc cannot drift
/// apart in either direction.
#[test]
fn metrics_exposition_matches_documented_series() {
    let service = SimService::start(config(2));
    let server = WireServer::start(service.clone(), "127.0.0.1:0").expect("bind");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.run(&spec(0.1), WAIT).expect("solve");

    let text = client.metrics().expect("metrics");
    let doc = include_str!("../../../docs/observability.md");
    // The documented names: backtick-quoted `rfsim_*` tokens in the
    // series-reference table rows.
    let mut documented: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for line in doc.lines().filter(|l| l.starts_with("| `rfsim_")) {
        let name = line
            .trim_start_matches("| `")
            .split('`')
            .next()
            .expect("series name");
        documented.insert(name);
    }
    assert!(
        documented.len() > 30,
        "the doc table should be rich, found {}",
        documented.len()
    );

    // Every emitted series is documented (summaries document the base
    // name; `_sum`/`_count` are implicit).
    let mut emitted: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for line in text
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
    {
        let (series, value) = line.rsplit_once(' ').expect("name value");
        assert!(value.parse::<f64>().is_ok(), "numeric sample: {line}");
        let name = series.split('{').next().expect("series name");
        let base = name
            .strip_suffix("_sum")
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            documented.contains(base),
            "emitted series '{name}' is not documented in docs/observability.md"
        );
        emitted.insert(base);
    }
    // And every documented series is emitted.
    for name in &documented {
        assert!(
            emitted.contains(name),
            "documented series '{name}' missing from a live scrape"
        );
    }
    drop(client);
    server.stop();
    server.join();
}
