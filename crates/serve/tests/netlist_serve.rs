//! Serve-side behaviour of `submit_netlist`: content-addressed dynamic
//! families, memo hits across repeated submits (including alternate
//! spellings of the same circuit), typed refusals for hostile input,
//! the dynamic-capacity bound, and the evict regression — eviction must
//! invalidate fingerprints and unhost the dynamic family, not just drop
//! stored solutions.

use std::time::Duration;

use rfsim_serve::service::{JobStatus, ServeConfig, SimService};
use rfsim_serve::spec::{BackendKind, Priority};
use rfsim_serve::ServeError;

const WAIT: Duration = Duration::from_secs(120);

fn small_config() -> ServeConfig {
    ServeConfig {
        threads: 1,
        ..Default::default()
    }
}

/// A small MPDE lowpass netlist — the canonical happy path.
const LOWPASS: &str = "V V1 in gnd drive\n\
                       R R1 in out 1k\n\
                       C C1 out gnd 160p\n\
                       .sweep amplitudes=0.5,1 spacings=10k\n\
                       .analysis mpde f1=1M n1=8 n2=4\n";

/// The same circuit spelled differently: `0` for ground, an unsuffixed
/// resistance, extra whitespace and comments. Must canonicalise to the
/// same text, and therefore the same content-addressed family. (Values
/// must stay numerically bit-equal — `0.16n` and `160p` differ in the
/// last ulp and would be a different circuit.)
const LOWPASS_RESPELLED: &str = "* an RC lowpass, spelled with the 0 ground alias\n\
                                 V   V1  in 0   drive\n\
                                 R   R1  in out 1000\n\
                                 C   C1  out 0  160p\n\
                                 .sweep amplitudes=0.5,1 spacings=10k\n\
                                 .analysis mpde f1=1M n1=8 n2=4\n";

fn submit(service: &SimService, text: &str) -> rfsim_serve::service::NetlistSubmission {
    service
        .submit_netlist(text, Priority::Normal, None)
        .expect("netlist submit")
}

#[test]
fn repeated_netlist_submit_is_one_solve_plus_one_bit_identical_memo_hit() {
    let service = SimService::start(small_config());
    let first = submit(&service, LOWPASS);
    assert!(first.registered, "first sighting registers the family");
    assert!(
        first.family.starts_with("netlist:"),
        "dynamic families are content-addressed, got '{}'",
        first.family
    );
    let solved = service.wait(first.job_id, WAIT).expect("fresh solve");

    let second = submit(&service, LOWPASS);
    assert!(!second.registered, "identical text reuses the family");
    assert_eq!(second.family, first.family);
    match service.poll(second.job_id).expect("poll") {
        JobStatus::Done { result, memo_hit } => {
            assert!(memo_hit, "second submit must be a memo hit");
            assert_eq!(result.digest(), solved.digest());
            for (a, b) in result.points.iter().zip(&solved.points) {
                assert_eq!(a.samples.len(), b.samples.len());
                for (x, y) in a.samples.iter().zip(&b.samples) {
                    assert_eq!(x.to_bits(), y.to_bits(), "memo hit must be bit-identical");
                }
            }
        }
        other => panic!("expected an instant memo hit, got {other:?}"),
    }
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 1, "one solve for two submits");
    assert_eq!(q.memo_hits, 1, "second submit served from the store");
}

#[test]
fn alternate_spellings_canonicalise_onto_one_family_and_memo_hit() {
    let service = SimService::start(small_config());
    let first = submit(&service, LOWPASS);
    let solved = service.wait(first.job_id, WAIT).expect("solve");

    // Ground alias `0`, unsuffixed values, comments, ragged whitespace:
    // the canonical form is identical, so the hash — and the store
    // entry — are shared.
    let respelled = submit(&service, LOWPASS_RESPELLED);
    assert_eq!(
        respelled.family, first.family,
        "same canonical text, same family"
    );
    assert!(!respelled.registered);
    let replayed = service.wait(respelled.job_id, WAIT).expect("replay");
    assert_eq!(replayed.digest(), solved.digest());
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!((q.solves, q.memo_hits), (1, 1));
}

#[test]
fn hostile_netlists_are_typed_refusals_and_the_service_survives() {
    let service = SimService::start(small_config());
    let hostile = [
        "",                                               // no devices, no analysis
        "garbage that is not a netlist",                  // unknown keyword
        "R R1 a\n.analysis dcop\n",                       // arity error
        "R R1 a gnd nan\n.analysis dcop\n",               // non-numeric value
        "R R1 a gnd 1k\nR R1 a gnd 2k\n.analysis dcop\n", // duplicate name
        "\u{0}\u{1}\u{2}{[}]:,\"\\",                      // byte soup
        "V V1 in gnd drive\nR R1 in out 1k\n.analysis mpde f1=1M n1=8 n2=4\n\
         .analysis hb2 f1=1M n1=8 n2=4\n", // two directives
    ];
    // Resource-exhaustion shapes: a node count past the parser's bound
    // and a single line past the line-length bound must both be typed
    // refusals (cheaply — the limits exist so hostile input can't make
    // the daemon allocate proportionally).
    let huge_nodes: String = (0..10_000)
        .map(|i| format!("R R{i} n{i} m{i} 1k\n"))
        .chain([".analysis dcop\n".to_string()])
        .collect();
    let long_line = format!("R R1 a b {}\n.analysis dcop\n", "9".repeat(8192));
    let hostile = hostile
        .into_iter()
        .map(str::to_string)
        .chain([huge_nodes, long_line]);
    for text in hostile {
        let text = text.as_str();
        match service.submit_netlist(text, Priority::Normal, None) {
            Err(ServeError::Netlist(e)) => {
                // Typed and Display-able; line is 1-based for statement
                // errors, 0 for whole-file validation.
                assert!(!e.to_string().is_empty());
            }
            Err(other) => panic!("expected a netlist refusal for {text:?}, got {other}"),
            Ok(sub) => panic!("hostile netlist {text:?} was accepted as {sub:?}"),
        }
    }

    // Valid netlists whose analysis is not servable over the wire are a
    // spec refusal, not a parse error — and still never a panic.
    let offline = [
        "V V1 in gnd dc 1\nR R1 in gnd 1k\n.analysis dcop\n",
        "V V1 in gnd sine amp=1 freq=1M phase=0 offset=0\nR R1 in gnd 1k\n\
         .analysis transient tstop=1u dt=10n\n",
    ];
    for text in offline {
        match service.submit_netlist(text, Priority::Normal, None) {
            Err(ServeError::InvalidSpec(msg)) => {
                assert!(msg.contains("not servable"), "got '{msg}'");
            }
            other => panic!("expected InvalidSpec for {text:?}, got {other:?}"),
        }
    }

    // The scheduler is alive and the registry uncorrupted: a good
    // submit still solves.
    let good = submit(&service, LOWPASS);
    service.wait(good.job_id, WAIT).expect("service survived");
}

#[test]
fn evict_unhosts_the_dynamic_family_and_invalidates_its_fingerprints() {
    let service = SimService::start(small_config());
    let first = submit(&service, LOWPASS);
    let solved = service.wait(first.job_id, WAIT).expect("solve");
    assert_eq!(service.dynamic_families().len(), 1);
    let keyed = service.stats().keying;
    assert_eq!(keyed.invalidations, 0);
    assert!(keyed.len > 0, "the solve cached a fingerprint");

    // Evict by name: stored solutions drop, the fingerprint generation
    // retires, and the dynamic family is unhosted (the regression — an
    // earlier evict left fingerprints and the registration behind).
    let dropped = service.evict(Some(&first.family));
    assert!(dropped > 0, "the solved grid was stored and must drop");
    assert!(service.dynamic_families().is_empty(), "family unhosted");
    assert!(
        service.stats().keying.invalidations > 0,
        "evict must retire the family's fingerprints like register_family does"
    );

    // Resubmitting the same text re-registers from scratch and pays a
    // fresh solve — which reproduces the original bytes exactly.
    let again = submit(&service, LOWPASS);
    assert!(again.registered, "evicted family re-registers");
    assert_eq!(again.family, first.family, "content address is stable");
    let resolved = service.wait(again.job_id, WAIT).expect("fresh solve");
    assert_eq!(resolved.digest(), solved.digest());
    let q = service.stats().counters.queue(BackendKind::Mpde);
    assert_eq!(q.solves, 2, "no memo hit across an eviction");
    assert_eq!(q.memo_hits, 0);
}

#[test]
fn dynamic_capacity_is_bounded_and_evict_frees_slots() {
    // Paused scheduler: submits queue without solving, so walking the
    // whole capacity is cheap (parse + probe only).
    let service = SimService::start(ServeConfig {
        paused: true,
        ..small_config()
    });
    let cap = SimService::MAX_DYNAMIC_FAMILIES;
    let mut first_family = None;
    for i in 0..cap {
        // Vary one resistor so every netlist is a distinct topology hash.
        let text = format!(
            "V V1 in gnd drive\nR R1 in out {}\nC C1 out gnd 160p\n\
             .sweep amplitudes=1 spacings=10k\n.analysis mpde f1=1M n1=8 n2=4\n",
            1000 + i
        );
        let sub = submit(&service, &text);
        assert!(sub.registered);
        first_family.get_or_insert(sub.family);
    }
    assert_eq!(service.dynamic_families().len(), cap);

    let overflow = "V V1 in gnd drive\nR R1 in out 999k\nC C1 out gnd 160p\n\
                    .sweep amplitudes=1 spacings=10k\n.analysis mpde f1=1M n1=8 n2=4\n";
    match service.submit_netlist(overflow, Priority::Normal, None) {
        Err(ServeError::InvalidSpec(msg)) => {
            assert!(msg.contains("capacity"), "got '{msg}'");
        }
        other => panic!("expected a capacity refusal, got {other:?}"),
    }

    // Evicting one hosted family frees exactly one slot.
    service.evict(first_family.as_deref());
    assert_eq!(service.dynamic_families().len(), cap - 1);
    let sub = submit(&service, overflow);
    assert!(sub.registered, "freed slot accepts a new topology");
}
