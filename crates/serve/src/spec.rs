//! Job specifications, the hosted circuit-family registry, and result
//! payloads — everything a request names and a response carries.
//!
//! A wire protocol cannot ship closures, so the daemon hosts a
//! [`FamilyRegistry`] of named parametric circuit builders and a
//! [`JobSpec`] names one of them plus the amplitude × tone-spacing grid to
//! trace over it. Specs are *canonicalised* before keying (parameters a
//! backend ignores are dropped), then folded into a quantised
//! [`JobKey`] — the solution store's identity for "the same request".

use std::collections::BTreeMap;
use std::sync::Arc;

use rfsim_circuit::{BiWaveform, Circuit, CircuitBuilder, DiodeParams, Envelope, Waveform, GROUND};
use rfsim_numerics::json::Json;
use rfsim_rf::key::{JobKey, JobKeyBuilder, Quantizer};

use crate::error::{Result, ServeError};

/// Which steady-state backend solves the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's sheared-MPDE method on an `n1 × n2` grid.
    Mpde,
    /// Two-tone harmonic balance on an `n1 × n2` harmonic grid.
    Hb2,
    /// Single-tone periodic collocation with `n1` samples.
    PeriodicFd,
}

impl BackendKind {
    /// Canonical wire label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Mpde => "mpde",
            BackendKind::Hb2 => "hb2",
            BackendKind::PeriodicFd => "periodic_fd",
        }
    }

    /// Parses a wire label.
    pub fn parse(label: &str) -> Option<BackendKind> {
        match label {
            "mpde" => Some(BackendKind::Mpde),
            "hb2" => Some(BackendKind::Hb2),
            "periodic_fd" => Some(BackendKind::PeriodicFd),
            _ => None,
        }
    }

    /// All backends, in scheduling-queue order.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Mpde, BackendKind::Hb2, BackendKind::PeriodicFd];

    /// Dense index into per-queue counter arrays.
    pub fn index(self) -> usize {
        match self {
            BackendKind::Mpde => 0,
            BackendKind::Hb2 => 1,
            BackendKind::PeriodicFd => 2,
        }
    }
}

/// Scheduling priority; higher admits first within the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background regression sweeps.
    Low,
    /// Interactive dashboard traffic.
    #[default]
    Normal,
    /// Latency-sensitive requests; jumps the queue.
    High,
}

impl Priority {
    /// Canonical wire label.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire label.
    pub fn parse(label: &str) -> Option<Priority> {
        match label {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// One memoisable request: a hosted family, a backend, and the
/// amplitude × tone-spacing grid to trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Name of the hosted circuit family ([`FamilyRegistry`]).
    pub family: String,
    /// Steady-state backend.
    pub backend: BackendKind,
    /// Carrier frequency (Hz). The fast-axis period is `1/f1`.
    pub f1: f64,
    /// Amplitudes traced (warm-start chained within a row).
    pub amplitudes: Vec<f64>,
    /// Tone spacings `fd` (Hz), one row each. Ignored (and dropped at
    /// canonicalisation) by [`BackendKind::PeriodicFd`].
    pub spacings: Vec<f64>,
    /// Fast-axis grid points (sample count for periodic collocation).
    pub n1: usize,
    /// Slow-axis grid points. Ignored by [`BackendKind::PeriodicFd`].
    pub n2: usize,
    /// Scheduling priority.
    pub priority: Priority,
    /// Per-job wall-clock deadline (milliseconds), measured from
    /// dispatch. `None` falls back to the service's
    /// `ServeConfig::default_deadline_ms`. Deadlines are *scheduling*
    /// policy, not solution identity: they are excluded from the job's
    /// store key, so a deadline-carrying replay of a stored request is
    /// still a memo hit.
    pub deadline_ms: Option<u64>,
}

impl JobSpec {
    /// A default-shaped MPDE grid spec.
    pub fn mpde(
        family: impl Into<String>,
        f1: f64,
        amplitudes: Vec<f64>,
        spacings: Vec<f64>,
    ) -> Self {
        JobSpec {
            family: family.into(),
            backend: BackendKind::Mpde,
            f1,
            amplitudes,
            spacings,
            n1: 16,
            n2: 8,
            priority: Priority::Normal,
            deadline_ms: None,
        }
    }

    /// Largest accepted grid axis. The bound is a *service* guard, not a
    /// solver limit: the spec arrives from untrusted wire input, and an
    /// absurd `n1` (`1e18` saturating through `as usize`) must be
    /// rejected at validation instead of panicking the engine pool on a
    /// capacity-overflow allocation.
    pub const MAX_AXIS_POINTS: usize = 4096;
    /// Largest accepted `n1 × n2` grid.
    pub const MAX_GRID_POINTS: usize = 262_144;
    /// Largest accepted amplitude or spacing list.
    pub const MAX_SWEEP_VALUES: usize = 4096;

    /// Checks the spec is solvable and returns its canonical form: the
    /// form all keying and execution uses, with parameters the chosen
    /// backend ignores dropped (so textually different spellings of the
    /// same physical request memoise together).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSpec`] with the first violated rule.
    pub fn canonicalize(&self) -> Result<JobSpec> {
        let invalid = |why: &str| Err(ServeError::InvalidSpec(why.to_string()));
        if self.family.is_empty() {
            return invalid("family name is empty");
        }
        if !(self.f1 > 0.0 && self.f1.is_finite()) {
            return invalid("carrier f1 must be positive and finite");
        }
        if self.amplitudes.is_empty() {
            return invalid("amplitudes are empty");
        }
        if self.amplitudes.len() > Self::MAX_SWEEP_VALUES
            || self.spacings.len() > Self::MAX_SWEEP_VALUES
        {
            return invalid("too many amplitudes/spacings (max 4096 each)");
        }
        if self.amplitudes.iter().any(|a| !a.is_finite()) {
            return invalid("amplitudes must be finite");
        }
        if self.n1 < 2 {
            return invalid("n1 must be at least 2");
        }
        if self.n1 > Self::MAX_AXIS_POINTS
            || self.n2 > Self::MAX_AXIS_POINTS
            || self.n1.saturating_mul(self.n2.max(1)) > Self::MAX_GRID_POINTS
        {
            return invalid("grid too large (axes max 4096, n1*n2 max 262144)");
        }
        let mut canonical = self.clone();
        match self.backend {
            BackendKind::PeriodicFd => {
                // Single-tone: spacing rows and the slow axis don't exist.
                canonical.spacings = Vec::new();
                canonical.n2 = 0;
            }
            BackendKind::Mpde | BackendKind::Hb2 => {
                if self.spacings.is_empty() {
                    return invalid("two-tone backends need at least one tone spacing");
                }
                if self
                    .spacings
                    .iter()
                    .any(|fd| !(fd.is_finite() && *fd > 0.0))
                {
                    return invalid("tone spacings must be positive and finite");
                }
                if self.n2 < 2 {
                    return invalid("n2 must be at least 2 for two-tone backends");
                }
            }
        }
        Ok(canonical)
    }

    /// The first operating point of this (canonical) spec — the point
    /// whose circuit build defines the spec's structure fingerprint, and
    /// therefore the identity the service's per-family fingerprint cache
    /// is keyed on.
    pub fn first_point(&self) -> PointParams {
        PointParams {
            amplitude: self.amplitudes[0],
            f1: self.f1,
            spacing: self.spacings.first().copied().unwrap_or(0.0),
            two_tone: self.backend != BackendKind::PeriodicFd,
        }
    }

    /// The solution-store identity of this (canonical) spec: the
    /// first-point circuit's MNA-structure fingerprint folded with the
    /// quantised job parameters. Structure is probed at the *circuit*
    /// level — any backend-level structure change implies either a DC
    /// pattern change or a grid/backend parameter change, and the latter
    /// are folded in explicitly (same reasoning as the sweep engine's
    /// probe memo).
    ///
    /// This variant pays one circuit build to obtain the fingerprint; the
    /// service's submit path avoids that via its per-family fingerprint
    /// cache and [`JobSpec::key_with_fingerprint`].
    ///
    /// # Errors
    ///
    /// Propagates the first-point circuit build failure.
    pub fn key(&self, registry: &FamilyRegistry, quantizer: Quantizer) -> Result<JobKey> {
        let circuit = registry.build(&self.family, &self.first_point())?;
        Ok(self.key_with_fingerprint(circuit.jacobian_fingerprint(), quantizer))
    }

    /// [`JobSpec::key`] with the first-point MNA fingerprint already in
    /// hand — no circuit build, no registry access. The fingerprint must
    /// be the one `registry.build(family, self.first_point())` would
    /// produce *for the currently registered builder*; the service's
    /// fingerprint cache guarantees that by keying on
    /// `(family, quantised first point)` and invalidating on
    /// re-registration.
    pub fn key_with_fingerprint(
        &self,
        fingerprint: rfsim_numerics::sparse::PatternFingerprint,
        quantizer: Quantizer,
    ) -> JobKey {
        JobKeyBuilder::new(fingerprint, quantizer)
            .push_str(&self.family)
            .push_str(self.backend.label())
            .push_u64(self.n1 as u64)
            .push_u64(self.n2 as u64)
            .push_f64(self.f1)
            .push_f64s(&self.amplitudes)
            .push_f64s(&self.spacings)
            .finish()
    }

    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("family", Json::string(&*self.family)),
            ("backend", Json::string(self.backend.label())),
            ("f1", Json::number(self.f1)),
            (
                "amplitudes",
                Json::array(self.amplitudes.iter().map(|&a| Json::number(a))),
            ),
            (
                "spacings",
                Json::array(self.spacings.iter().map(|&s| Json::number(s))),
            ),
            ("n1", Json::from(self.n1)),
            ("n2", Json::from(self.n2)),
            ("priority", Json::string(self.priority.label())),
        ];
        if let Some(ms) = self.deadline_ms {
            members.push(("deadline_ms", Json::from(ms as usize)));
        }
        Json::object(members)
    }

    /// Wire decoding.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] naming the first missing/mistyped field.
    pub fn from_json(json: &Json) -> Result<JobSpec> {
        let field = |name: &str| {
            json.path(name)
                .ok_or_else(|| ServeError::Protocol(format!("job spec missing '{name}'")))
        };
        let number = |name: &str| {
            json.number_at(name).ok_or_else(|| {
                ServeError::Protocol(format!("job spec field '{name}' must be a number"))
            })
        };
        let numbers = |name: &str| -> Result<Vec<f64>> {
            match field(name)? {
                Json::Array(items) => items
                    .iter()
                    .map(|v| match v {
                        Json::Number(x) => Ok(*x),
                        _ => Err(ServeError::Protocol(format!(
                            "job spec field '{name}' must be an array of numbers"
                        ))),
                    })
                    .collect(),
                _ => Err(ServeError::Protocol(format!(
                    "job spec field '{name}' must be an array"
                ))),
            }
        };
        let backend_label = json
            .string_at("backend")
            .ok_or_else(|| ServeError::Protocol("job spec missing 'backend'".into()))?;
        let backend = BackendKind::parse(backend_label).ok_or_else(|| {
            ServeError::Protocol(format!(
                "unknown backend '{backend_label}' (mpde|hb2|periodic_fd)"
            ))
        })?;
        let priority = match json.string_at("priority") {
            None => Priority::Normal,
            Some(label) => Priority::parse(label).ok_or_else(|| {
                ServeError::Protocol(format!("unknown priority '{label}' (low|normal|high)"))
            })?,
        };
        Ok(JobSpec {
            family: json
                .string_at("family")
                .ok_or_else(|| ServeError::Protocol("job spec missing 'family'".into()))?
                .to_string(),
            backend,
            f1: number("f1")?,
            amplitudes: numbers("amplitudes")?,
            spacings: if json.path("spacings").is_some() {
                numbers("spacings")?
            } else {
                Vec::new()
            },
            n1: number("n1")? as usize,
            n2: json.number_at("n2").unwrap_or(0.0) as usize,
            priority,
            deadline_ms: json.number_at("deadline_ms").map(|ms| ms.max(0.0) as u64),
        })
    }
}

/// The operating point one circuit build receives.
#[derive(Debug, Clone, Copy)]
pub struct PointParams {
    /// Drive amplitude (volts).
    pub amplitude: f64,
    /// Carrier frequency (Hz).
    pub f1: f64,
    /// Tone spacing (Hz); 0 for single-tone backends.
    pub spacing: f64,
    /// Whether the backend needs a bivariate (two-tone) source.
    pub two_tone: bool,
}

impl PointParams {
    /// The drive source for this point: a sheared two-tone carrier for
    /// MPDE/HB jobs, a plain sinusoid for periodic collocation.
    pub fn source(&self) -> rfsim_circuit::SourceSpec {
        if self.two_tone {
            BiWaveform::ShearedCarrier {
                amplitude: self.amplitude,
                k: 1,
                f1: self.f1,
                fd: self.spacing,
                phase: 0.0,
                envelope: Envelope::Unit,
            }
            .into()
        } else {
            Waveform::sine(self.amplitude, self.f1).into()
        }
    }
}

/// A hosted circuit family: a named builder from operating point to
/// circuit.
pub type FamilyFn = dyn Fn(&PointParams) -> rfsim_circuit::Result<Circuit> + Send + Sync;

/// The daemon's catalogue of named circuit families.
///
/// Builders are stored behind [`Arc`]s so a job captures *the builder it
/// was keyed against* at submit time — re-registering a name afterwards
/// (new topology, new element values) changes the fingerprint of future
/// submissions without corrupting in-flight work.
pub struct FamilyRegistry {
    families: BTreeMap<String, Arc<FamilyFn>>,
}

impl std::fmt::Debug for FamilyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FamilyRegistry")
            .field("families", &self.names())
            .finish()
    }
}

impl Default for FamilyRegistry {
    fn default() -> Self {
        Self::builtin()
    }
}

impl FamilyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        FamilyRegistry {
            families: BTreeMap::new(),
        }
    }

    /// The built-in catalogue: the linear and nonlinear single-stage
    /// families the paper's sweep workloads exercise.
    ///
    /// * `rc_lowpass` — 1 kΩ / 160 pF output stage (linear).
    /// * `rc_stiff` — 10 kΩ / 1 nF stage (linear, slower corner).
    /// * `diode_clipper` — 1 kΩ source resistance into a diode + 1 nF
    ///   tank (nonlinear; compression and harmonic generation).
    pub fn builtin() -> Self {
        let mut registry = FamilyRegistry::empty();
        registry.register("rc_lowpass", |p: &PointParams| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource("VRF", inp, GROUND, p.source())?;
            b.resistor("R1", inp, out, 1e3)?;
            b.capacitor("C1", out, GROUND, 160e-12)?;
            b.build()
        });
        registry.register("rc_stiff", |p: &PointParams| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource("VRF", inp, GROUND, p.source())?;
            b.resistor("R1", inp, out, 10e3)?;
            b.capacitor("C1", out, GROUND, 1e-9)?;
            b.build()
        });
        registry.register("diode_clipper", |p: &PointParams| {
            let mut b = CircuitBuilder::new();
            let inp = b.node("in");
            let out = b.node("out");
            b.vsource("VRF", inp, GROUND, p.source())?;
            b.resistor("R1", inp, out, 1e3)?;
            b.diode("D1", out, GROUND, DiodeParams::default())?;
            b.capacitor("C1", out, GROUND, 1e-9)?;
            b.build()
        });
        registry
    }

    /// Registers (or replaces) a family.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        build: impl Fn(&PointParams) -> rfsim_circuit::Result<Circuit> + Send + Sync + 'static,
    ) {
        self.families.insert(name.into(), Arc::new(build));
    }

    /// The builder for `name`, cloned out so callers can hold it without
    /// the registry lock.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownFamily`].
    pub fn builder(&self, name: &str) -> Result<Arc<FamilyFn>> {
        self.families
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownFamily(name.to_string()))
    }

    /// Builds `name`'s circuit at one operating point.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownFamily`] or the builder's circuit error.
    pub fn build(&self, name: &str, point: &PointParams) -> Result<Circuit> {
        Ok(self.builder(name)?(point)?)
    }

    /// Unregisters a family, returning whether it was hosted. In-flight
    /// jobs keep the [`Arc`]'d builder they captured at submit time.
    pub fn remove(&mut self, name: &str) -> bool {
        self.families.remove(name).is_some()
    }

    /// Registered family names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.families.keys().cloned().collect()
    }
}

/// One solved grid point of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSolution {
    /// The amplitude coordinate.
    pub amplitude: f64,
    /// The tone-spacing coordinate (0 for single-tone backends).
    pub spacing: f64,
    /// The flattened steady-state samples.
    pub samples: Vec<f64>,
}

/// A completed job: its points in row-major (spacing-outer,
/// amplitude-inner) order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Solved grid points.
    pub points: Vec<PointSolution>,
}

impl JobResult {
    /// FNV-1a over every sample's bit pattern (and the coordinates') — the
    /// cheap bit-identity witness the client and the replay tests compare.
    pub fn digest(&self) -> u64 {
        use rfsim_rf::key::{fnv1a_bytes, FNV_OFFSET};
        let mut h = FNV_OFFSET;
        for p in &self.points {
            h = fnv1a_bytes(h, &p.amplitude.to_bits().to_le_bytes());
            h = fnv1a_bytes(h, &p.spacing.to_bits().to_le_bytes());
            h = fnv1a_bytes(h, &(p.samples.len() as u64).to_le_bytes());
            for &s in &p.samples {
                h = fnv1a_bytes(h, &s.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// Total sample count across all points.
    pub fn num_samples(&self) -> usize {
        self.points.iter().map(|p| p.samples.len()).sum()
    }

    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        Json::object([(
            "points",
            Json::array(self.points.iter().map(|p| {
                Json::object([
                    ("amplitude", Json::number(p.amplitude)),
                    ("spacing", Json::number(p.spacing)),
                    (
                        "samples",
                        Json::array(p.samples.iter().map(|&s| Json::number(s))),
                    ),
                ])
            })),
        )])
    }

    /// Wire decoding.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on a malformed payload.
    pub fn from_json(json: &Json) -> Result<JobResult> {
        let points = json
            .array_at("points")
            .ok_or_else(|| ServeError::Protocol("result missing 'points'".into()))?;
        let mut out = Vec::with_capacity(points.len());
        for p in points {
            let samples = p
                .array_at("samples")
                .ok_or_else(|| ServeError::Protocol("point missing 'samples'".into()))?
                .iter()
                .map(|v| match v {
                    Json::Number(x) => Ok(*x),
                    _ => Err(ServeError::Protocol("samples must be numbers".into())),
                })
                .collect::<Result<Vec<f64>>>()?;
            out.push(PointSolution {
                amplitude: p
                    .number_at("amplitude")
                    .ok_or_else(|| ServeError::Protocol("point missing 'amplitude'".into()))?,
                spacing: p.number_at("spacing").unwrap_or(0.0),
                samples,
            });
        }
        Ok(JobResult { points: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::mpde("rc_lowpass", 1e6, vec![0.1, 0.2], vec![10e3])
    }

    #[test]
    fn spec_json_roundtrip() {
        let s = spec();
        let back = JobSpec::from_json(&s.to_json()).expect("decode");
        assert_eq!(back, s);
        // A deadline rides the wire but stays out of the store key.
        let mut dl = spec();
        dl.deadline_ms = Some(1500);
        let back = JobSpec::from_json(&dl.to_json()).expect("decode");
        assert_eq!(back, dl);
        let registry = FamilyRegistry::builtin();
        let q = Quantizer::default();
        assert_eq!(
            dl.key(&registry, q).expect("key"),
            spec().key(&registry, q).expect("key"),
            "deadline_ms is scheduling policy, not solution identity"
        );
        // Missing fields are named.
        let err = JobSpec::from_json(&Json::parse(r#"{"backend":"mpde"}"#).expect("json"))
            .expect_err("missing f1");
        assert!(err.to_string().contains("family"), "{err}");
    }

    #[test]
    fn canonicalize_validates_and_drops_ignored_params() {
        assert!(spec().canonicalize().is_ok());
        let mut bad = spec();
        bad.amplitudes.clear();
        assert!(bad.canonicalize().is_err());
        let mut bad = spec();
        bad.f1 = -1.0;
        assert!(bad.canonicalize().is_err());
        let mut bad = spec();
        bad.spacings.clear();
        assert!(bad.canonicalize().is_err());
        // PeriodicFd ignores spacings and n2 — both fold away, so the
        // same physical request keys identically however they were set.
        let mut fd1 = spec();
        fd1.backend = BackendKind::PeriodicFd;
        fd1.spacings = vec![10e3];
        fd1.n2 = 8;
        let mut fd2 = spec();
        fd2.backend = BackendKind::PeriodicFd;
        fd2.spacings = vec![99e3, 1.0];
        fd2.n2 = 2;
        let (c1, c2) = (
            fd1.canonicalize().expect("fd1"),
            fd2.canonicalize().expect("fd2"),
        );
        assert_eq!(c1, c2);
        let registry = FamilyRegistry::builtin();
        let q = Quantizer::default();
        assert_eq!(
            c1.key(&registry, q).expect("key"),
            c2.key(&registry, q).expect("key")
        );
    }

    #[test]
    fn keys_track_family_topology_and_params() {
        let registry = FamilyRegistry::builtin();
        let q = Quantizer::default();
        let base = spec().canonicalize().expect("canonical");
        let k = base.key(&registry, q).expect("key");
        // Same spec, same key.
        assert_eq!(k, base.key(&registry, q).expect("key"));
        // rc_lowpass and rc_stiff share a topology (same MNA pattern) but
        // the family name is part of the key.
        let mut other = base.clone();
        other.family = "rc_stiff".into();
        assert_ne!(k, other.key(&registry, q).expect("key"));
        // diode_clipper has a different topology on top of the name.
        let mut diode = base.clone();
        diode.family = "diode_clipper".into();
        assert_ne!(k, diode.key(&registry, q).expect("key"));
        // Grid shape and values are keyed.
        let mut n = base.clone();
        n.n1 = 32;
        assert_ne!(k, n.key(&registry, q).expect("key"));
        let mut a = base.clone();
        a.amplitudes = vec![0.1, 0.3];
        assert_ne!(k, a.key(&registry, q).expect("key"));
        // Unknown family is an error, not a panic.
        let mut missing = base;
        missing.family = "nope".into();
        assert!(matches!(
            missing.key(&registry, q),
            Err(ServeError::UnknownFamily(_))
        ));
    }

    #[test]
    fn result_digest_and_json_roundtrip() {
        let result = JobResult {
            points: vec![
                PointSolution {
                    amplitude: 0.1,
                    spacing: 10e3,
                    samples: vec![1.0 / 3.0, -2.5e-7, 0.0],
                },
                PointSolution {
                    amplitude: 0.2,
                    spacing: 10e3,
                    samples: vec![4.0, 5.0],
                },
            ],
        };
        let back = JobResult::from_json(&result.to_json()).expect("decode");
        assert_eq!(back, result);
        assert_eq!(back.digest(), result.digest());
        assert_eq!(result.num_samples(), 5);
        let mut tweaked = result.clone();
        tweaked.points[0].samples[0] = f64::from_bits(tweaked.points[0].samples[0].to_bits() ^ 1);
        assert_ne!(tweaked.digest(), result.digest());
    }
}
