//! The line-delimited JSON wire protocol and the TCP server.
//!
//! One request per line, one response per line, both compact JSON
//! (`rfsim_numerics::json`). Every request carries a `verb`; every
//! response carries `ok` plus either the verb's payload or an `error`
//! string. The protocol is deliberately dependency-free and
//! human-drivable (`nc 127.0.0.1 4520` works).
//!
//! | verb | request fields | response payload |
//! |------|----------------|------------------|
//! | `submit` | `job` (a [`JobSpec`]) | `job_id` |
//! | `poll` | `job_id`, optional `wait_ms` | `status`, `memo_hit`, `result` when done; `error` (+ `interrupted`) when failed; `progress` (`rung`, `iteration`, `best_residual`) while running |
//! | `cancel` | `job_id` | `status` after the cancel took effect |
//! | `stats` | — | the [`ServeStats`](crate::service::ServeStats) object |
//! | `evict` | optional `family` | `evicted` count |
//! | `shutdown` | — | acknowledges, then stops the server |
//!
//! `poll` with `wait_ms` blocks server-side until the job settles or the
//! budget elapses (a long-poll, so clients do not busy-spin); on timeout
//! it reports the job's current phase with `ok: true`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rfsim_numerics::json::Json;

use crate::error::{Result, ServeError};
use crate::service::{JobId, JobStatus, SimService};
use crate::spec::JobSpec;

/// A decoded wire request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(JobSpec),
    /// Poll a job, optionally long-polling for up to `wait_ms`.
    Poll {
        /// The job to poll.
        job_id: u64,
        /// Server-side wait budget (0 = immediate snapshot).
        wait_ms: u64,
    },
    /// Cancel a job (idempotent; see
    /// [`SimService::cancel`](crate::service::SimService::cancel)).
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Service statistics.
    Stats,
    /// Evict stored solutions (all, or one family's).
    Evict {
        /// Restrict eviction to this family.
        family: Option<String>,
    },
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] naming what was malformed.
    pub fn parse(line: &str) -> Result<Request> {
        let json = Json::parse(line).map_err(ServeError::Protocol)?;
        let verb = json
            .string_at("verb")
            .ok_or_else(|| ServeError::Protocol("request missing 'verb'".into()))?;
        match verb {
            "submit" => {
                let job = json
                    .path("job")
                    .ok_or_else(|| ServeError::Protocol("submit missing 'job'".into()))?;
                Ok(Request::Submit(JobSpec::from_json(job)?))
            }
            "poll" => Ok(Request::Poll {
                job_id: json
                    .number_at("job_id")
                    .ok_or_else(|| ServeError::Protocol("poll missing 'job_id'".into()))?
                    as u64,
                wait_ms: json.number_at("wait_ms").unwrap_or(0.0) as u64,
            }),
            "cancel" => Ok(Request::Cancel {
                job_id: json
                    .number_at("job_id")
                    .ok_or_else(|| ServeError::Protocol("cancel missing 'job_id'".into()))?
                    as u64,
            }),
            "stats" => Ok(Request::Stats),
            "evict" => Ok(Request::Evict {
                family: json.string_at("family").map(str::to_string),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::Protocol(format!("unknown verb '{other}'"))),
        }
    }

    /// Encodes this request as one wire line (no trailing newline).
    pub fn dump(&self) -> String {
        let json = match self {
            Request::Submit(spec) => {
                Json::object([("verb", Json::string("submit")), ("job", spec.to_json())])
            }
            Request::Poll { job_id, wait_ms } => Json::object([
                ("verb", Json::string("poll")),
                ("job_id", Json::from(*job_id as usize)),
                ("wait_ms", Json::from(*wait_ms as usize)),
            ]),
            Request::Cancel { job_id } => Json::object([
                ("verb", Json::string("cancel")),
                ("job_id", Json::from(*job_id as usize)),
            ]),
            Request::Stats => Json::object([("verb", Json::string("stats"))]),
            Request::Evict { family } => match family {
                Some(name) => Json::object([
                    ("verb", Json::string("evict")),
                    ("family", Json::string(&**name)),
                ]),
                None => Json::object([("verb", Json::string("evict"))]),
            },
            Request::Shutdown => Json::object([("verb", Json::string("shutdown"))]),
        };
        json.dump()
    }
}

/// An `ok: false` response with `error`.
fn error_response(e: &ServeError) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::string(e.to_string())),
    ])
}

/// The `interrupted` payload of a failed poll: why the control plane
/// stopped the solve, and where the solve was when it stopped.
/// `best_residual` is emitted only when finite (JSON has no Infinity;
/// its absence means no iteration ever completed).
fn interrupt_json(summary: &crate::service::InterruptSummary) -> Json {
    let mut members = vec![
        ("reason", Json::string(summary.label())),
        ("iterations", Json::from(summary.iterations)),
        ("elapsed_ms", Json::from(summary.elapsed_ms as usize)),
    ];
    if summary.best_residual.is_finite() {
        members.push(("best_residual", Json::number(summary.best_residual)));
    }
    Json::object(members)
}

/// An `ok: true` response with extra payload members.
fn ok_response(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(members.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Object(all)
}

/// Executes one request against the service, returning the response and
/// whether the connection (and server) should shut down.
pub fn handle(service: &SimService, request: &Request) -> (Json, bool) {
    match request {
        Request::Submit(spec) => match service.submit(spec) {
            Ok(id) => (ok_response([("job_id", Json::from(id.0 as usize))]), false),
            Err(e) => (error_response(&e), false),
        },
        Request::Poll { job_id, wait_ms } => {
            let id = JobId(*job_id);
            if *wait_ms > 0 {
                // Long-poll: settle or time out, then report whatever
                // phase the job is in (waiting errors are not protocol
                // errors — the job simply is not done yet). The budget is
                // capped server-side: an hour-long wait would pin this
                // connection thread and stall daemon shutdown for the
                // duration; clients needing longer simply re-poll.
                const MAX_WAIT: Duration = Duration::from_millis(2000);
                let wait = Duration::from_millis(*wait_ms).min(MAX_WAIT);
                let _ = service.wait(id, wait);
            }
            match service.poll(id) {
                Err(e) => (error_response(&e), false),
                Ok(status) => {
                    let mut members = vec![("status", Json::string(status.label()))];
                    match &status {
                        JobStatus::Done { result, memo_hit } => {
                            members.push(("memo_hit", Json::Bool(*memo_hit)));
                            members.push(("result", result.to_json()));
                            members.push((
                                "digest",
                                Json::string(format!("{:016x}", result.digest())),
                            ));
                        }
                        JobStatus::Failed {
                            message,
                            interrupted,
                        } => {
                            members.push(("error", Json::string(&**message)));
                            if let Some(summary) = interrupted {
                                members.push(("interrupted", interrupt_json(summary)));
                            }
                        }
                        JobStatus::Running => {
                            // Mid-solve observability: the active
                            // recovery-ladder rung, its Newton iteration
                            // depth, and the best residual so far. Absent
                            // until the first iteration reports.
                            if let Ok(Some(p)) = service.progress(id) {
                                let mut prog = vec![
                                    ("rung", Json::string(p.rung)),
                                    ("iteration", Json::from(p.iteration)),
                                ];
                                if p.best_residual.is_finite() {
                                    prog.push(("best_residual", Json::number(p.best_residual)));
                                }
                                members.push(("progress", Json::object(prog)));
                            }
                        }
                        JobStatus::Queued => {}
                    }
                    (ok_response(members), false)
                }
            }
        }
        Request::Cancel { job_id } => match service.cancel(JobId(*job_id)) {
            Ok(status) => (
                ok_response([("status", Json::string(status.label()))]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Stats => (ok_response([("stats", service.stats().to_json())]), false),
        Request::Evict { family } => {
            let evicted = service.evict(family.as_deref());
            (ok_response([("evicted", Json::from(evicted))]), false)
        }
        Request::Shutdown => (ok_response([]), true),
    }
}

/// A running TCP server over a [`SimService`].
///
/// Binds with [`WireServer::start`] (port 0 picks an ephemeral port —
/// read it back from [`WireServer::local_addr`]), serves until a
/// `shutdown` verb arrives or [`WireServer::stop`] is called, and joins
/// its threads on [`WireServer::join`] / drop.
pub struct WireServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl WireServer {
    /// Binds `addr` and starts serving `service`.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn start(service: Arc<SimService>, addr: impl ToSocketAddrs) -> Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept with a short nap lets the loop observe the
        // stop flag without a self-connect dance.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("rfsim-serve-accept".into())
            .spawn(move || {
                let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
                while !accept_stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            let conn_service = Arc::clone(&service);
                            let conn_stop = Arc::clone(&accept_stop);
                            handlers.push(
                                std::thread::Builder::new()
                                    .name("rfsim-serve-conn".into())
                                    .spawn(move || {
                                        let _ = serve_connection(&conn_service, stream, &conn_stop);
                                    })
                                    .expect("spawn connection thread"),
                            );
                            handlers.retain(|h| !h.is_finished());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
                for h in handlers {
                    let _ = h.join();
                }
            })
            .expect("spawn accept thread");
        Ok(WireServer {
            local_addr,
            stop,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (useful with an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the server has been asked to stop.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Asks the accept loop to stop (open connections finish their
    /// current request).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept loop (and its connections) exit.
    pub fn join(&self) {
        if let Some(handle) = self
            .accept_thread
            .lock()
            .expect("accept handle poisoned")
            .take()
        {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
        self.join();
    }
}

/// One connection: read request lines, write response lines, until EOF,
/// a shutdown verb, or a stop request. Reads run under a short timeout so
/// an idle connection still observes a server stop (otherwise a blocked
/// `read` would pin [`WireServer::join`] forever).
fn serve_connection(
    service: &SimService,
    stream: TcpStream,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // A request line is a job spec — modest even for big grids. The line
    // is assembled chunk-by-chunk (never letting one `read_line` call run
    // unbounded on a newline-free stream) and capped, so a hostile or
    // misconfigured peer cannot OOM a long-lived daemon.
    const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;
    let mut line: Vec<u8> = Vec::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Pull one buffered chunk, splitting it at the first newline.
        let (consumed, complete) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            };
            if chunk.is_empty() {
                return Ok(()); // EOF: client hung up.
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    line.extend_from_slice(&chunk[..nl]);
                    (nl + 1, true)
                }
                None => {
                    line.extend_from_slice(chunk);
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > MAX_LINE_BYTES {
            let refusal = error_response(&ServeError::Protocol(format!(
                "request line exceeds {MAX_LINE_BYTES} bytes"
            )));
            let _ = writer.write_all(format!("{}\n", refusal.dump()).as_bytes());
            return Ok(()); // drop the connection
        }
        if !complete {
            continue;
        }
        let text = String::from_utf8_lossy(&line);
        if !text.trim().is_empty() {
            let (response, shutdown) = match Request::parse(text.trim()) {
                Ok(request) => handle(service, &request),
                Err(e) => (error_response(&e), false),
            };
            let mut out = response.dump();
            out.push('\n');
            writer.write_all(out.as_bytes())?;
            writer.flush()?;
            if shutdown {
                stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
        }
        line.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let cases = [
            Request::Submit(JobSpec::mpde("rc_lowpass", 1e6, vec![0.1, 0.2], vec![10e3])),
            Request::Poll {
                job_id: 7,
                wait_ms: 250,
            },
            Request::Cancel { job_id: 7 },
            Request::Stats,
            Request::Evict { family: None },
            Request::Evict {
                family: Some("rc_lowpass".into()),
            },
            Request::Shutdown,
        ];
        for request in cases {
            let line = request.dump();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::parse(&line).expect("reparse"), request);
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"verb":"warp"}"#,
            r#"{"verb":"poll"}"#,
            r#"{"verb":"cancel"}"#,
            r#"{"verb":"submit"}"#,
        ] {
            assert!(
                matches!(Request::parse(bad), Err(ServeError::Protocol(_))),
                "{bad}"
            );
        }
    }
}
