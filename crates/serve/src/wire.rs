//! The line-delimited JSON wire protocol and the TCP server.
//!
//! One request per line, one response per line, both compact JSON
//! (`rfsim_numerics::json`). Every request carries a `verb`; every
//! response carries `ok` plus either the verb's payload or an `error`
//! string. The protocol is deliberately dependency-free and
//! human-drivable (`nc 127.0.0.1 4520` works).
//!
//! | verb | request fields | response payload |
//! |------|----------------|------------------|
//! | `submit` | `job` (a [`JobSpec`]) | `job_id` |
//! | `poll` | `job_id`, optional `wait_ms` | `status`, `memo_hit`, `result` when done; `error` (+ `interrupted`) when failed; `progress` (`rung`, `iteration`, `best_residual`) while running |
//! | `cancel` | `job_id` | `status` after the cancel took effect |
//! | `stats` | — | the [`ServeStats`](crate::service::ServeStats) object |
//! | `metrics` | optional `format` (`"json"`) | `metrics`: Prometheus-style exposition text ([`crate::metrics`]); with `format: "json"`, `stats` as for the `stats` verb |
//! | `trace` | `job_id` | `trace`: the job's ordered lifecycle timeline ([`TraceView`](crate::service::TraceView)) |
//! | `evict` | optional `family` | `evicted` count |
//! | `shutdown` | — | acknowledges, then stops the server |
//!
//! `poll` with `wait_ms` blocks server-side until the job settles or the
//! budget elapses (a long-poll, so clients do not busy-spin); on timeout
//! it reports the job's current phase with `ok: true`.
//!
//! # The front-end
//!
//! [`WireServer`] multiplexes every connection over a small bounded pool
//! of worker threads ([`FrontEndConfig::workers`]) instead of spawning a
//! thread per connection: an accept thread parks new non-blocking
//! sockets in a shared ready-queue, and each worker repeatedly takes a
//! connection, makes whatever progress its socket allows (flush pending
//! response bytes, read request bytes, execute at most one request), and
//! puts it back. A long-poll does **not** pin a worker: the connection
//! is *parked* with its `(job_id, deadline)` and answered by whichever
//! worker next observes the job settled (or the deadline passed), so a
//! thousand idle pollers cost queue slots, not threads.
//!
//! Admission control is per-connection: each connection may hold at most
//! [`FrontEndConfig::max_inflight`] unsettled jobs; a submit past the cap
//! is refused with a `Throttled` error (settled ids are pruned lazily
//! first, so memo-hit traffic is never throttled). One flooding client
//! therefore exhausts its own cap, not the shared admission queue.
//!
//! The `stats` payload served over the wire carries one extra `frontend`
//! section (connections, requests, throttles, parked long-polls) on top
//! of [`ServeStats::to_json`](crate::service::ServeStats::to_json).

use std::collections::{HashSet, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rfsim_numerics::json::Json;
use rfsim_numerics::telemetry::LatencyHistogram;

use crate::error::{Result, ServeError};
use crate::metrics;
use crate::service::{JobId, JobStatus, SimService};
use crate::spec::{JobSpec, Priority};

/// A decoded wire request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job.
    Submit(JobSpec),
    /// Submit a `.rfn` netlist: parse, register its content-addressed
    /// family if absent, and run the job its directives describe.
    SubmitNetlist {
        /// The netlist text (`\n`-separated statements).
        netlist: String,
        /// Scheduling priority.
        priority: Priority,
        /// Optional per-job deadline (milliseconds from dispatch).
        deadline_ms: Option<u64>,
    },
    /// Poll a job, optionally long-polling for up to `wait_ms`.
    Poll {
        /// The job to poll.
        job_id: u64,
        /// Server-side wait budget (0 = immediate snapshot).
        wait_ms: u64,
    },
    /// Cancel a job (idempotent; see
    /// [`SimService::cancel`](crate::service::SimService::cancel)).
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Service statistics.
    Stats,
    /// Telemetry exposition: Prometheus-style text, or the stats object
    /// with `json: true`.
    Metrics {
        /// Return the stats JSON object instead of exposition text.
        json: bool,
    },
    /// A job's lifecycle timeline.
    Trace {
        /// The job to trace.
        job_id: u64,
    },
    /// Evict stored solutions (all, or one family's).
    Evict {
        /// Restrict eviction to this family.
        family: Option<String>,
    },
    /// Stop the server.
    Shutdown,
}

/// Every wire verb, in the order the per-verb request histograms index
/// them (the `verb` label of `rfsim_frontend_request_ms`).
const VERBS: [&str; 9] = [
    "submit",
    "submit_netlist",
    "poll",
    "cancel",
    "stats",
    "metrics",
    "trace",
    "evict",
    "shutdown",
];

impl Request {
    /// This request's verb name (the `verb` label on the front-end's
    /// per-verb request histograms).
    pub fn verb(&self) -> &'static str {
        VERBS[self.verb_index()]
    }

    /// This request's index into [`VERBS`].
    fn verb_index(&self) -> usize {
        match self {
            Request::Submit(_) => 0,
            Request::SubmitNetlist { .. } => 1,
            Request::Poll { .. } => 2,
            Request::Cancel { .. } => 3,
            Request::Stats => 4,
            Request::Metrics { .. } => 5,
            Request::Trace { .. } => 6,
            Request::Evict { .. } => 7,
            Request::Shutdown => 8,
        }
    }

    /// Decodes one request line.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] naming what was malformed.
    pub fn parse(line: &str) -> Result<Request> {
        let json = Json::parse(line).map_err(ServeError::Protocol)?;
        let verb = json
            .string_at("verb")
            .ok_or_else(|| ServeError::Protocol("request missing 'verb'".into()))?;
        match verb {
            "submit" => {
                let job = json
                    .path("job")
                    .ok_or_else(|| ServeError::Protocol("submit missing 'job'".into()))?;
                Ok(Request::Submit(JobSpec::from_json(job)?))
            }
            "submit_netlist" => {
                let netlist = json
                    .string_at("netlist")
                    .ok_or_else(|| ServeError::Protocol("submit_netlist missing 'netlist'".into()))?
                    .to_string();
                let priority = match json.string_at("priority") {
                    None => Priority::Normal,
                    Some(label) => Priority::parse(label).ok_or_else(|| {
                        ServeError::Protocol(format!(
                            "unknown priority '{label}' (low|normal|high)"
                        ))
                    })?,
                };
                let deadline_ms = json.number_at("deadline_ms").map(|ms| ms as u64);
                Ok(Request::SubmitNetlist {
                    netlist,
                    priority,
                    deadline_ms,
                })
            }
            "poll" => Ok(Request::Poll {
                job_id: json
                    .number_at("job_id")
                    .ok_or_else(|| ServeError::Protocol("poll missing 'job_id'".into()))?
                    as u64,
                wait_ms: json.number_at("wait_ms").unwrap_or(0.0) as u64,
            }),
            "cancel" => Ok(Request::Cancel {
                job_id: json
                    .number_at("job_id")
                    .ok_or_else(|| ServeError::Protocol("cancel missing 'job_id'".into()))?
                    as u64,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => match json.string_at("format") {
                None | Some("text") | Some("prometheus") => Ok(Request::Metrics { json: false }),
                Some("json") => Ok(Request::Metrics { json: true }),
                Some(other) => Err(ServeError::Protocol(format!(
                    "unknown metrics format '{other}'"
                ))),
            },
            "trace" => Ok(Request::Trace {
                job_id: json
                    .number_at("job_id")
                    .ok_or_else(|| ServeError::Protocol("trace missing 'job_id'".into()))?
                    as u64,
            }),
            "evict" => Ok(Request::Evict {
                family: json.string_at("family").map(str::to_string),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ServeError::Protocol(format!("unknown verb '{other}'"))),
        }
    }

    /// Encodes this request as one wire line (no trailing newline).
    pub fn dump(&self) -> String {
        let json = match self {
            Request::Submit(spec) => {
                Json::object([("verb", Json::string("submit")), ("job", spec.to_json())])
            }
            Request::SubmitNetlist {
                netlist,
                priority,
                deadline_ms,
            } => {
                let mut members = vec![
                    ("verb", Json::string("submit_netlist")),
                    ("netlist", Json::string(&**netlist)),
                    ("priority", Json::string(priority.label())),
                ];
                if let Some(ms) = deadline_ms {
                    members.push(("deadline_ms", Json::from(*ms as usize)));
                }
                Json::object(members)
            }
            Request::Poll { job_id, wait_ms } => Json::object([
                ("verb", Json::string("poll")),
                ("job_id", Json::from(*job_id as usize)),
                ("wait_ms", Json::from(*wait_ms as usize)),
            ]),
            Request::Cancel { job_id } => Json::object([
                ("verb", Json::string("cancel")),
                ("job_id", Json::from(*job_id as usize)),
            ]),
            Request::Stats => Json::object([("verb", Json::string("stats"))]),
            Request::Metrics { json: false } => Json::object([("verb", Json::string("metrics"))]),
            Request::Metrics { json: true } => Json::object([
                ("verb", Json::string("metrics")),
                ("format", Json::string("json")),
            ]),
            Request::Trace { job_id } => Json::object([
                ("verb", Json::string("trace")),
                ("job_id", Json::from(*job_id as usize)),
            ]),
            Request::Evict { family } => match family {
                Some(name) => Json::object([
                    ("verb", Json::string("evict")),
                    ("family", Json::string(&**name)),
                ]),
                None => Json::object([("verb", Json::string("evict"))]),
            },
            Request::Shutdown => Json::object([("verb", Json::string("shutdown"))]),
        };
        json.dump()
    }
}

/// An `ok: false` response with `error`.
fn error_response(e: &ServeError) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::string(e.to_string())),
    ])
}

/// The `interrupted` payload of a failed poll: why the control plane
/// stopped the solve, and where the solve was when it stopped.
/// `best_residual` is emitted only when finite (JSON has no Infinity;
/// its absence means no iteration ever completed).
fn interrupt_json(summary: &crate::service::InterruptSummary) -> Json {
    let mut members = vec![
        ("reason", Json::string(summary.label())),
        ("iterations", Json::from(summary.iterations)),
        ("elapsed_ms", Json::from(summary.elapsed_ms as usize)),
    ];
    if summary.best_residual.is_finite() {
        members.push(("best_residual", Json::number(summary.best_residual)));
    }
    Json::object(members)
}

/// An `ok: true` response with extra payload members.
fn ok_response(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(members.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Object(all)
}

/// The full `poll` response for `id`'s current status — shared by the
/// immediate path in [`handle`] and the front-end's parked long-polls.
fn poll_payload(service: &SimService, id: JobId) -> Json {
    match service.poll(id) {
        Err(e) => error_response(&e),
        Ok(status) => {
            let mut members = vec![("status", Json::string(status.label()))];
            match &status {
                JobStatus::Done { result, memo_hit } => {
                    members.push(("memo_hit", Json::Bool(*memo_hit)));
                    members.push(("result", result.to_json()));
                    members.push(("digest", Json::string(format!("{:016x}", result.digest()))));
                }
                JobStatus::Failed {
                    message,
                    interrupted,
                } => {
                    members.push(("error", Json::string(&**message)));
                    if let Some(summary) = interrupted {
                        members.push(("interrupted", interrupt_json(summary)));
                    }
                }
                JobStatus::Running => {
                    // Mid-solve observability: the active recovery-ladder
                    // rung, its Newton iteration depth, and the best
                    // residual so far. Absent until the first iteration
                    // reports.
                    if let Ok(Some(p)) = service.progress(id) {
                        let mut prog = vec![
                            ("rung", Json::string(p.rung)),
                            ("iteration", Json::from(p.iteration)),
                        ];
                        if p.best_residual.is_finite() {
                            prog.push(("best_residual", Json::number(p.best_residual)));
                        }
                        members.push(("progress", Json::object(prog)));
                    }
                }
                JobStatus::Queued => {}
            }
            ok_response(members)
        }
    }
}

/// Executes one request against the service, returning the response and
/// whether the connection (and server) should shut down.
pub fn handle(service: &SimService, request: &Request) -> (Json, bool) {
    match request {
        Request::Submit(spec) => match service.submit(spec) {
            Ok(id) => (ok_response([("job_id", Json::from(id.0 as usize))]), false),
            Err(e) => (error_response(&e), false),
        },
        Request::SubmitNetlist {
            netlist,
            priority,
            deadline_ms,
        } => match service.submit_netlist(netlist, *priority, *deadline_ms) {
            Ok(sub) => (
                ok_response([
                    ("job_id", Json::from(sub.job_id.0 as usize)),
                    ("family", Json::string(&*sub.family)),
                    ("registered", Json::Bool(sub.registered)),
                ]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Poll { job_id, wait_ms } => {
            let id = JobId(*job_id);
            if *wait_ms > 0 {
                // Long-poll: settle or time out, then report whatever
                // phase the job is in (waiting errors are not protocol
                // errors — the job simply is not done yet). The budget is
                // capped server-side: an hour-long wait would pin this
                // connection thread and stall daemon shutdown for the
                // duration; clients needing longer simply re-poll.
                const MAX_WAIT: Duration = Duration::from_millis(2000);
                let wait = Duration::from_millis(*wait_ms).min(MAX_WAIT);
                let _ = service.wait(id, wait);
            }
            (poll_payload(service, id), false)
        }
        Request::Cancel { job_id } => match service.cancel(JobId(*job_id)) {
            Ok(status) => (
                ok_response([("status", Json::string(status.label()))]),
                false,
            ),
            Err(e) => (error_response(&e), false),
        },
        Request::Stats => (ok_response([("stats", service.stats().to_json())]), false),
        Request::Metrics { json } => {
            let stats = service.stats();
            if *json {
                (ok_response([("stats", stats.to_json())]), false)
            } else {
                (
                    ok_response([("metrics", Json::string(metrics::exposition(&stats)))]),
                    false,
                )
            }
        }
        Request::Trace { job_id } => match service.trace(JobId(*job_id)) {
            Ok(view) => (ok_response([("trace", view.to_json())]), false),
            Err(e) => (error_response(&e), false),
        },
        Request::Evict { family } => {
            let evicted = service.evict(family.as_deref());
            (ok_response([("evicted", Json::from(evicted))]), false)
        }
        Request::Shutdown => (ok_response([]), true),
    }
}

/// Front-end sizing knobs (see the module docs' front-end section and
/// `docs/scaling.md`).
#[derive(Debug, Clone, Copy)]
pub struct FrontEndConfig {
    /// Worker threads multiplexing all connections (clamped ≥ 1).
    pub workers: usize,
    /// Per-connection cap on unsettled jobs (admission control; clamped
    /// ≥ 1). Settled ids are pruned lazily, so memo-hit traffic — which
    /// settles at submit — is never throttled.
    pub max_inflight: usize,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            workers: 4,
            max_inflight: 256,
        }
    }
}

/// Front-end counters, shared by the accept thread and every worker.
#[derive(Default)]
struct FrontendCounters {
    accepted: AtomicUsize,
    active: AtomicUsize,
    requests: AtomicUsize,
    throttled: AtomicUsize,
    parks: AtomicUsize,
    /// Long-polls parked *right now* (a gauge: incremented at park,
    /// decremented at answer or connection close).
    parked: AtomicUsize,
    /// Parked long-polls answered because their job settled or their
    /// deadline passed.
    wakeups: AtomicUsize,
    /// Per-verb wire-handling latency (the time [`process`] spent
    /// executing one request, indexed by [`VERBS`]). Parked long-polls
    /// record their park-visit handling time — the cost of handling,
    /// not the wait. Exposition-only: served as
    /// `rfsim_frontend_request_ms` by the `metrics` verb.
    request_ms: Mutex<[LatencyHistogram; VERBS.len()]>,
}

impl FrontendCounters {
    /// Records one request's handling time under its verb's histogram.
    fn record_request(&self, verb_index: usize, elapsed: Duration) {
        if let Ok(mut histograms) = self.request_ms.lock() {
            histograms[verb_index].record(elapsed);
        }
    }
}

/// One multiplexed connection's whole state between worker visits.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet consumed as request lines.
    inbuf: Vec<u8>,
    /// Response bytes not yet accepted by the socket.
    outbuf: Vec<u8>,
    outpos: usize,
    /// A parked long-poll: `(job_id, deadline)`. While set, the
    /// connection answers this poll before reading further requests.
    pending: Option<(u64, Instant)>,
    /// Jobs submitted on this connection, pruned lazily once settled —
    /// the admission-control working set.
    owned: HashSet<u64>,
    /// Close once `outbuf` drains (shutdown verb, oversized line).
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            pending: None,
            owned: HashSet::new(),
            closing: false,
        }
    }

    fn queue_response(&mut self, response: &Json) {
        self.outbuf.extend_from_slice(response.dump().as_bytes());
        self.outbuf.push(b'\n');
    }

    /// Writes as much of `outbuf` as the socket accepts right now.
    fn flush(&mut self) -> std::io::Result<bool> {
        let mut progressed = false;
        while self.outpos < self.outbuf.len() {
            match self.stream.write(&self.outbuf[self.outpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => {
                    self.outpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.outpos >= self.outbuf.len() {
            self.outbuf.clear();
            self.outpos = 0;
        }
        Ok(progressed)
    }
}

/// What `process` decided to do with one parsed request.
enum Processed {
    Respond(Json),
    /// The connection was parked on a long-poll (`Conn::pending` set).
    Park,
    /// Respond, then close the connection and stop the server.
    Shutdown(Json),
}

/// A request line is a job spec — modest even for big grids. Lines are
/// assembled chunk-by-chunk and capped, so a hostile or misconfigured
/// peer cannot OOM a long-lived daemon.
const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// The server-side long-poll budget. An unbounded wait would pin the
/// parked connection across a daemon shutdown; clients needing longer
/// simply re-poll.
const MAX_WAIT: Duration = Duration::from_millis(2000);

/// Executes one parsed request for `conn`. The submit and long-poll
/// verbs go through front-end policy (admission control, parking);
/// everything else defers to [`handle`].
fn process(
    service: &SimService,
    conn: &mut Conn,
    request: &Request,
    config: &FrontEndConfig,
    counters: &FrontendCounters,
) -> Processed {
    match request {
        Request::Submit(_) | Request::SubmitNetlist { .. } => {
            let cap = config.max_inflight.max(1);
            if conn.owned.len() >= cap {
                // Lazy pruning: drop ids that have settled (or aged out
                // of the bounded result window) since we last looked.
                conn.owned.retain(|&id| {
                    matches!(
                        service.poll(JobId(id)),
                        Ok(JobStatus::Queued | JobStatus::Running)
                    )
                });
            }
            if conn.owned.len() >= cap {
                counters.throttled.fetch_add(1, Ordering::Relaxed);
                return Processed::Respond(error_response(&ServeError::Throttled {
                    max_inflight: cap,
                }));
            }
            // Both submit shapes share `handle`'s response; the owned
            // set tracks whichever id it minted.
            let (response, _) = handle(service, request);
            if let Some(id) = response.number_at("job_id") {
                conn.owned.insert(id as u64);
            }
            Processed::Respond(response)
        }
        Request::Poll { job_id, wait_ms } if *wait_ms > 0 => {
            // Long-poll: park the connection instead of pinning a worker
            // in a blocking wait. Whichever worker next visits the
            // connection after the job settles (or the deadline passes)
            // sends the response.
            match service.poll(JobId(*job_id)) {
                Ok(JobStatus::Queued | JobStatus::Running) => {
                    let wait = Duration::from_millis(*wait_ms).min(MAX_WAIT);
                    conn.pending = Some((*job_id, Instant::now() + wait));
                    counters.parks.fetch_add(1, Ordering::Relaxed);
                    counters.parked.fetch_add(1, Ordering::Relaxed);
                    Processed::Park
                }
                _ => Processed::Respond(poll_payload(service, JobId(*job_id))),
            }
        }
        Request::Stats => {
            let mut stats = service.stats().to_json();
            if let Json::Object(members) = &mut stats {
                members.push(("frontend".to_string(), frontend_json(config, counters)));
            }
            Processed::Respond(ok_response([("stats", stats)]))
        }
        Request::Metrics { json } => {
            let stats = service.stats();
            if *json {
                let mut stats_json = stats.to_json();
                if let Json::Object(members) = &mut stats_json {
                    members.push(("frontend".to_string(), frontend_json(config, counters)));
                }
                Processed::Respond(ok_response([("stats", stats_json)]))
            } else {
                let mut text = metrics::exposition(&stats);
                text.push_str(&frontend_exposition(config, counters));
                Processed::Respond(ok_response([("metrics", Json::string(text))]))
            }
        }
        Request::Shutdown => Processed::Shutdown(ok_response([])),
        other => {
            let (response, _) = handle(service, other);
            Processed::Respond(response)
        }
    }
}

/// The wire `stats` payload's `frontend` section (documented in
/// `docs/scaling.md` and pinned by the stats contract test).
fn frontend_json(config: &FrontEndConfig, counters: &FrontendCounters) -> Json {
    Json::object([
        ("workers", Json::from(config.workers.max(1))),
        ("max_inflight", Json::from(config.max_inflight.max(1))),
        (
            "connections_accepted",
            Json::from(counters.accepted.load(Ordering::Relaxed)),
        ),
        (
            "connections_active",
            Json::from(counters.active.load(Ordering::Relaxed)),
        ),
        (
            "requests",
            Json::from(counters.requests.load(Ordering::Relaxed)),
        ),
        (
            "throttled",
            Json::from(counters.throttled.load(Ordering::Relaxed)),
        ),
        (
            "long_poll_parks",
            Json::from(counters.parks.load(Ordering::Relaxed)),
        ),
        (
            "parked",
            Json::from(counters.parked.load(Ordering::Relaxed)),
        ),
        (
            "wakeups",
            Json::from(counters.wakeups.load(Ordering::Relaxed)),
        ),
    ])
}

/// The front-end's own Prometheus-style series, appended after the
/// service exposition ([`metrics::exposition`]) by the `metrics` verb.
fn frontend_exposition(config: &FrontEndConfig, counters: &FrontendCounters) -> String {
    let mut out = String::new();
    for (name, kind, value) in [
        ("rfsim_frontend_workers", "gauge", config.workers.max(1)),
        (
            "rfsim_frontend_max_inflight",
            "gauge",
            config.max_inflight.max(1),
        ),
        (
            "rfsim_frontend_connections_accepted_total",
            "counter",
            counters.accepted.load(Ordering::Relaxed),
        ),
        (
            "rfsim_frontend_connections_active",
            "gauge",
            counters.active.load(Ordering::Relaxed),
        ),
        (
            "rfsim_frontend_requests_total",
            "counter",
            counters.requests.load(Ordering::Relaxed),
        ),
        (
            "rfsim_frontend_throttled_total",
            "counter",
            counters.throttled.load(Ordering::Relaxed),
        ),
        (
            "rfsim_frontend_long_poll_parks_total",
            "counter",
            counters.parks.load(Ordering::Relaxed),
        ),
        (
            "rfsim_frontend_parked",
            "gauge",
            counters.parked.load(Ordering::Relaxed),
        ),
        (
            "rfsim_frontend_wakeups_total",
            "counter",
            counters.wakeups.load(Ordering::Relaxed),
        ),
    ] {
        metrics::type_line(&mut out, name, kind);
        metrics::sample(&mut out, name, &[], value as f64);
    }
    // Per-verb wire-handling latency, one summary block per verb.
    metrics::type_line(&mut out, "rfsim_frontend_request_ms", "summary");
    if let Ok(histograms) = counters.request_ms.lock() {
        for (verb, histogram) in VERBS.iter().zip(histograms.iter()) {
            metrics::summary_labelled(
                &mut out,
                "rfsim_frontend_request_ms",
                "verb",
                verb,
                histogram,
            );
        }
    }
    out
}

/// One worker visit to one connection: flush pending response bytes,
/// answer a parked long-poll if its job settled or its deadline passed,
/// read available request bytes, execute at most one request. Returns
/// `(progressed, close)`.
fn step(
    service: &SimService,
    conn: &mut Conn,
    config: &FrontEndConfig,
    counters: &FrontendCounters,
    stop: &AtomicBool,
) -> (bool, bool) {
    let mut progressed = match conn.flush() {
        Ok(p) => p,
        Err(_) => return (true, true),
    };
    if !conn.outbuf.is_empty() {
        // Write-backlogged: don't read ahead of a response the peer has
        // not accepted yet.
        return (progressed, false);
    }
    if conn.closing {
        return (true, true);
    }
    // A parked long-poll answers before further requests are read — the
    // protocol is one response per request, in order.
    if let Some((job_id, deadline)) = conn.pending {
        let settled = !matches!(
            service.poll(JobId(job_id)),
            Ok(JobStatus::Queued | JobStatus::Running)
        );
        if settled || Instant::now() >= deadline {
            conn.pending = None;
            counters.parked.fetch_sub(1, Ordering::Relaxed);
            counters.wakeups.fetch_add(1, Ordering::Relaxed);
            let response = poll_payload(service, JobId(job_id));
            conn.queue_response(&response);
            if conn.flush().is_err() {
                return (true, true);
            }
            return (true, false);
        }
        return (progressed, false);
    }
    // Read only when no complete line is already buffered, so a
    // pipelining client drains one request per visit without growing
    // `inbuf` unboundedly.
    if !conn.inbuf.contains(&b'\n') {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => return (true, true), // EOF: client hung up.
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&buf[..n]);
                    progressed = true;
                    if conn.inbuf.contains(&b'\n') {
                        break;
                    }
                    if conn.inbuf.len() > MAX_LINE_BYTES {
                        let refusal = error_response(&ServeError::Protocol(format!(
                            "request line exceeds {MAX_LINE_BYTES} bytes"
                        )));
                        conn.queue_response(&refusal);
                        conn.closing = true;
                        let _ = conn.flush();
                        return (true, conn.outbuf.is_empty());
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return (true, true),
            }
        }
    }
    let Some(nl) = conn.inbuf.iter().position(|&b| b == b'\n') else {
        return (progressed, false);
    };
    let line: Vec<u8> = conn.inbuf.drain(..=nl).collect();
    let text = String::from_utf8_lossy(&line);
    let trimmed = text.trim();
    if !trimmed.is_empty() {
        counters.requests.fetch_add(1, Ordering::Relaxed);
        match Request::parse(trimmed) {
            Err(e) => conn.queue_response(&error_response(&e)),
            Ok(request) => {
                let started = Instant::now();
                let outcome = process(service, conn, &request, config, counters);
                counters.record_request(request.verb_index(), started.elapsed());
                match outcome {
                    Processed::Respond(response) => conn.queue_response(&response),
                    Processed::Park => {}
                    Processed::Shutdown(response) => {
                        conn.queue_response(&response);
                        conn.closing = true;
                        stop.store(true, Ordering::SeqCst);
                    }
                }
            }
        }
        if conn.flush().is_err() {
            return (true, true);
        }
    }
    if conn.closing && conn.outbuf.is_empty() {
        return (true, true);
    }
    (true, false)
}

/// One front-end worker: take a ready connection, make progress, put it
/// back. Sleeps briefly when nothing progressed so idle connections cost
/// microseconds per second, not a spinning core.
fn worker_loop(
    service: &Arc<SimService>,
    ready: &Mutex<VecDeque<Conn>>,
    config: &FrontEndConfig,
    counters: &FrontendCounters,
    stop: &AtomicBool,
) {
    loop {
        let conn = ready.lock().expect("ready queue poisoned").pop_front();
        match conn {
            None => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Some(mut conn) => {
                if stop.load(Ordering::SeqCst) && !conn.closing {
                    // Server stopping: one courtesy flush, then close.
                    let _ = conn.flush();
                    if conn.pending.is_some() {
                        counters.parked.fetch_sub(1, Ordering::Relaxed);
                    }
                    counters.active.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
                let (progressed, close) = step(service, &mut conn, config, counters, stop);
                if close {
                    // A connection dropped while parked leaves no gauge
                    // residue.
                    if conn.pending.is_some() {
                        counters.parked.fetch_sub(1, Ordering::Relaxed);
                    }
                    counters.active.fetch_sub(1, Ordering::Relaxed);
                } else {
                    ready.lock().expect("ready queue poisoned").push_back(conn);
                    if !progressed {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

/// A running TCP server over a [`SimService`]: a non-blocking accept
/// thread plus a bounded worker pool multiplexing every connection (see
/// the module docs' front-end section).
///
/// Binds with [`WireServer::start`] (port 0 picks an ephemeral port —
/// read it back from [`WireServer::local_addr`]), serves until a
/// `shutdown` verb arrives or [`WireServer::stop`] is called, and joins
/// its threads on [`WireServer::join`] / drop.
pub struct WireServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl WireServer {
    /// Binds `addr` and starts serving `service` with the default
    /// [`FrontEndConfig`].
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn start(service: Arc<SimService>, addr: impl ToSocketAddrs) -> Result<WireServer> {
        Self::start_with(service, addr, FrontEndConfig::default())
    }

    /// Binds `addr` and starts serving `service` with explicit front-end
    /// sizing.
    ///
    /// # Errors
    ///
    /// Socket bind/configure failures.
    pub fn start_with(
        service: Arc<SimService>,
        addr: impl ToSocketAddrs,
        config: FrontEndConfig,
    ) -> Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept with a short nap lets the loop observe the
        // stop flag without a self-connect dance.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let ready: Arc<Mutex<VecDeque<Conn>>> = Arc::new(Mutex::new(VecDeque::new()));
        let counters: Arc<FrontendCounters> = Arc::new(FrontendCounters::default());
        let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
        let accept_stop = Arc::clone(&stop);
        let accept_ready = Arc::clone(&ready);
        let accept_counters = Arc::clone(&counters);
        threads.push(
            std::thread::Builder::new()
                .name("rfsim-serve-accept".into())
                .spawn(move || {
                    while !accept_stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if stream.set_nonblocking(true).is_err() {
                                    continue;
                                }
                                let _ = stream.set_nodelay(true);
                                accept_counters.accepted.fetch_add(1, Ordering::Relaxed);
                                accept_counters.active.fetch_add(1, Ordering::Relaxed);
                                accept_ready
                                    .lock()
                                    .expect("ready queue poisoned")
                                    .push_back(Conn::new(stream));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn accept thread"),
        );
        for index in 0..config.workers.max(1) {
            let service = Arc::clone(&service);
            let ready = Arc::clone(&ready);
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("rfsim-serve-worker-{index}"))
                    .spawn(move || worker_loop(&service, &ready, &config, &counters, &stop))
                    .expect("spawn front-end worker"),
            );
        }
        Ok(WireServer {
            local_addr,
            stop,
            threads: Mutex::new(threads),
        })
    }

    /// The bound address (useful with an ephemeral port request).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether the server has been asked to stop.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Asks the accept loop and workers to stop (open connections get
    /// one final flush, then close).
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the accept thread and every worker exit.
    pub fn join(&self) {
        let handles = std::mem::take(&mut *self.threads.lock().expect("threads poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let cases = [
            Request::Submit(JobSpec::mpde("rc_lowpass", 1e6, vec![0.1, 0.2], vec![10e3])),
            Request::SubmitNetlist {
                netlist: "V V1 in gnd drive\nR R1 in out 1k\n\
                          .sweep amplitudes=1 spacings=1k\n\
                          .analysis mpde f1=1M n1=8 n2=4\n"
                    .into(),
                priority: Priority::High,
                deadline_ms: Some(5000),
            },
            Request::SubmitNetlist {
                netlist: String::new(),
                priority: Priority::Normal,
                deadline_ms: None,
            },
            Request::Poll {
                job_id: 7,
                wait_ms: 250,
            },
            Request::Cancel { job_id: 7 },
            Request::Stats,
            Request::Metrics { json: false },
            Request::Metrics { json: true },
            Request::Trace { job_id: 7 },
            Request::Evict { family: None },
            Request::Evict {
                family: Some("rc_lowpass".into()),
            },
            Request::Shutdown,
        ];
        for request in cases {
            let line = request.dump();
            assert!(!line.contains('\n'), "one line per request: {line}");
            assert_eq!(Request::parse(&line).expect("reparse"), request);
        }
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for bad in [
            "not json",
            "{}",
            r#"{"verb":"warp"}"#,
            r#"{"verb":"poll"}"#,
            r#"{"verb":"cancel"}"#,
            r#"{"verb":"submit"}"#,
            r#"{"verb":"trace"}"#,
            r#"{"verb":"metrics","format":"xml"}"#,
            r#"{"verb":"submit_netlist"}"#,
            r#"{"verb":"submit_netlist","netlist":42}"#,
            r#"{"verb":"submit_netlist","netlist":"","priority":"urgent"}"#,
        ] {
            assert!(
                matches!(Request::parse(bad), Err(ServeError::Protocol(_))),
                "{bad}"
            );
        }
    }
}
