//! The bounded, LRU solution store.
//!
//! Keyed by [`JobKey`] — a Jacobian-structure fingerprint folded with
//! quantised job parameters (see [`rfsim_rf::key`]) — and holding
//! [`Arc`]s of completed [`JobResult`]s, so a hit is one hash probe and
//! one refcount bump: the stored samples are handed back byte-for-byte,
//! which is what makes replay *bit-identical by construction*. The
//! recency and eviction rules are the shared [`TaggedLru`]'s — the same
//! map the sweep engine's solution memo runs on — with entries tagged by
//! family name for targeted eviction.

use std::sync::Arc;

use rfsim_rf::key::JobKey;
use rfsim_rf::lru::TaggedLru;

use crate::spec::JobResult;

/// Counters describing the store's service history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the store.
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Solutions inserted.
    pub insertions: usize,
    /// Entries evicted to make room (LRU).
    pub evictions: usize,
    /// Entries removed by explicit [`SolutionStore::evict`] calls.
    pub explicit_evictions: usize,
}

/// A bounded LRU map from job identity to completed solution.
#[derive(Debug)]
pub struct SolutionStore {
    entries: TaggedLru<Arc<JobResult>>,
    explicit_evictions: usize,
}

impl SolutionStore {
    /// A store retaining at most `capacity` solutions (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        SolutionStore {
            entries: TaggedLru::new(capacity.max(1)),
            explicit_evictions: 0,
        }
    }

    /// Maximum retained solutions.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Currently retained solutions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Service counters so far.
    pub fn stats(&self) -> StoreStats {
        let lru = self.entries.stats();
        StoreStats {
            hits: lru.hits,
            misses: lru.misses,
            insertions: lru.insertions,
            evictions: lru.evictions,
            explicit_evictions: self.explicit_evictions,
        }
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&mut self, key: JobKey) -> Option<Arc<JobResult>> {
        self.entries.get(key)
    }

    /// A stat-neutral, recency-neutral lookup. The service's submit fast
    /// path probes with this and re-issues a counting [`Self::get`] only
    /// when it will actually serve the hit, so each submit counts exactly
    /// one store event however many code paths inspect the store.
    pub fn peek(&self, key: JobKey) -> Option<Arc<JobResult>> {
        self.entries.peek(key)
    }

    /// Inserts a completed solution, evicting the least-recently-used
    /// entry if the store is at capacity (replacing an existing key never
    /// evicts). `family` tags the entry for targeted eviction.
    pub fn insert(&mut self, key: JobKey, family: impl Into<String>, result: Arc<JobResult>) {
        self.entries.insert(key, family, result);
    }

    /// Removes entries — all of them, or only one family's — returning
    /// how many were dropped.
    pub fn evict(&mut self, family: Option<&str>) -> usize {
        let dropped = self.entries.evict(family);
        self.explicit_evictions += dropped;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PointSolution;
    use rfsim_numerics::sparse::Triplets;
    use rfsim_rf::key::{JobKeyBuilder, Quantizer};

    fn key(tag: f64) -> JobKey {
        JobKeyBuilder::new(
            Triplets::new(2, 2).pattern_fingerprint(),
            Quantizer::default(),
        )
        .push_f64(tag)
        .finish()
    }

    fn result(v: f64) -> Arc<JobResult> {
        Arc::new(JobResult {
            points: vec![PointSolution {
                amplitude: v,
                spacing: 0.0,
                samples: vec![v, 2.0 * v],
            }],
        })
    }

    #[test]
    fn lru_evicts_least_recently_used_at_capacity() {
        let mut store = SolutionStore::new(2);
        store.insert(key(1.0), "a", result(1.0));
        store.insert(key(2.0), "a", result(2.0));
        // Touch key 1 so key 2 is the LRU entry.
        assert!(store.get(key(1.0)).is_some());
        store.insert(key(3.0), "a", result(3.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.get(key(2.0)).is_none(), "LRU entry must be gone");
        assert!(store.get(key(1.0)).is_some());
        assert!(store.get(key(3.0)).is_some());
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut store = SolutionStore::new(2);
        store.insert(key(1.0), "a", result(1.0));
        store.insert(key(2.0), "a", result(2.0));
        store.insert(key(1.0), "a", result(10.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().evictions, 0);
        assert_eq!(
            store.get(key(1.0)).expect("replaced").points[0].amplitude,
            10.0
        );
    }

    #[test]
    fn hits_return_the_same_allocation() {
        let mut store = SolutionStore::new(4);
        let r = result(5.0);
        store.insert(key(5.0), "a", Arc::clone(&r));
        let hit = store.get(key(5.0)).expect("hit");
        assert!(Arc::ptr_eq(&hit, &r), "a hit hands back the stored bytes");
        assert_eq!(store.stats().hits, 1);
        assert!(store.get(key(6.0)).is_none());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn explicit_eviction_by_family_and_wholesale() {
        let mut store = SolutionStore::new(8);
        store.insert(key(1.0), "rc", result(1.0));
        store.insert(key(2.0), "rc", result(2.0));
        store.insert(key(3.0), "diode", result(3.0));
        assert_eq!(store.evict(Some("rc")), 2);
        assert_eq!(store.len(), 1);
        assert!(store.get(key(3.0)).is_some());
        assert_eq!(store.evict(None), 1);
        assert!(store.is_empty());
        assert_eq!(store.stats().explicit_evictions, 3);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut store = SolutionStore::new(0);
        assert_eq!(store.capacity(), 1);
        store.insert(key(1.0), "a", result(1.0));
        store.insert(key(2.0), "a", result(2.0));
        assert_eq!(store.len(), 1);
    }
}
