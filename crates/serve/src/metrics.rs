//! Prometheus-style text exposition of a [`ServeStats`] snapshot.
//!
//! The `metrics` wire verb serves this text (plus the front-end series
//! the TCP server appends — see `wire.rs`); `docs/observability.md`
//! documents every series emitted here, and a contract test in
//! `tests/sharding.rs` keeps the two in sync.
//!
//! The format is the subset of the Prometheus text exposition that any
//! scraper understands: `# TYPE` lines followed by
//! `name{label="value",…} value` samples, one per line. Latency
//! histograms are exposed summary-style — `quantile` labels plus
//! `_sum`/`_count` — in **milliseconds**, per shard (`shard="0"`, …)
//! and aggregated (`shard="all"`).

use std::fmt::Write;

use rfsim_numerics::telemetry::LatencyHistogram;

use crate::service::{LatencySnapshot, QueueCounters, ServeStats};
use crate::spec::BackendKind;

/// The quantiles every latency summary exposes.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Appends one `name{labels} value` sample line. Integral values print
/// without a fraction so counters stay exact to the eye.
pub(crate) fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (key, val)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{key}=\"{val}\"");
        }
        out.push('}');
    }
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = writeln!(out, " {}", value as i64);
    } else {
        let _ = writeln!(out, " {value:.6}");
    }
}

/// Appends one `# TYPE` metadata line.
pub(crate) fn type_line(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one summary block (quantiles + `_sum` + `_count`) carrying
/// one `key="val"` label, converting nanoseconds to milliseconds. Also
/// used by the front-end for its per-verb request summaries.
pub(crate) fn summary_labelled(
    out: &mut String,
    name: &str,
    key: &str,
    val: &str,
    histogram: &LatencyHistogram,
) {
    for (q, label) in QUANTILES {
        sample(
            out,
            name,
            &[(key, val), ("quantile", label)],
            histogram.quantile(q) / 1e6,
        );
    }
    sample(
        out,
        &format!("{name}_sum"),
        &[(key, val)],
        histogram.sum_ns() as f64 / 1e6,
    );
    sample(
        out,
        &format!("{name}_count"),
        &[(key, val)],
        histogram.count() as f64,
    );
}

/// Appends one summary block for one shard label.
fn summary_block(out: &mut String, name: &str, shard: &str, histogram: &LatencyHistogram) {
    summary_labelled(out, name, "shard", shard, histogram);
}

/// Renders `stats` as Prometheus-style exposition text.
///
/// Served by the `metrics` wire verb; the TCP front-end appends its own
/// `rfsim_frontend_*` series after this block.
pub fn exposition(stats: &ServeStats) -> String {
    let mut out = String::new();

    type_line(&mut out, "rfsim_uptime_ms", "gauge");
    sample(&mut out, "rfsim_uptime_ms", &[], stats.uptime_ms as f64);
    type_line(&mut out, "rfsim_stats_generation", "counter");
    sample(
        &mut out,
        "rfsim_stats_generation",
        &[],
        stats.stats_generation as f64,
    );

    // Latency summaries: aggregate first, then per shard.
    type LatencyPick = fn(&LatencySnapshot) -> &LatencyHistogram;
    let latency: [(&str, LatencyPick); 3] = [
        ("rfsim_queue_wait_ms", |l| &l.queue_wait),
        ("rfsim_solve_ms", |l| &l.solve),
        ("rfsim_e2e_ms", |l| &l.e2e),
    ];
    for (name, pick) in latency {
        type_line(&mut out, name, "summary");
        summary_block(&mut out, name, "all", pick(&stats.latency));
        for shard in &stats.shards {
            summary_block(
                &mut out,
                name,
                &shard.shard.to_string(),
                pick(&shard.latency),
            );
        }
    }

    type_line(&mut out, "rfsim_queue_depth", "gauge");
    for shard in &stats.shards {
        let label = shard.shard.to_string();
        sample(
            &mut out,
            "rfsim_queue_depth",
            &[("shard", &label)],
            shard.queue_depth as f64,
        );
    }
    type_line(&mut out, "rfsim_queue_capacity", "gauge");
    for shard in &stats.shards {
        let label = shard.shard.to_string();
        sample(
            &mut out,
            "rfsim_queue_capacity",
            &[("shard", &label)],
            shard.queue_capacity as f64,
        );
    }

    // Per-backend job counters, aggregated across shards.
    type CounterPick = fn(&QueueCounters) -> usize;
    let jobs: [(&str, CounterPick); 9] = [
        ("rfsim_jobs_submitted_total", |q| q.submitted),
        ("rfsim_jobs_memo_hits_total", |q| q.memo_hits),
        ("rfsim_jobs_coalesced_total", |q| q.coalesced),
        ("rfsim_solves_total", |q| q.solves),
        ("rfsim_jobs_retried_total", |q| q.retried),
        ("rfsim_jobs_completed_total", |q| q.completed),
        ("rfsim_jobs_failed_total", |q| q.failed),
        ("rfsim_jobs_cancelled_total", |q| q.cancelled),
        ("rfsim_jobs_rejected_total", |q| q.rejected),
    ];
    for (name, pick) in jobs {
        type_line(&mut out, name, "counter");
        for kind in BackendKind::ALL {
            let queue = stats.counters.queue(kind);
            sample(
                &mut out,
                name,
                &[("backend", kind.label())],
                pick(&queue) as f64,
            );
        }
    }

    // Solution store.
    for (name, kind, value) in [
        ("rfsim_store_hits_total", "counter", stats.store.hits),
        ("rfsim_store_misses_total", "counter", stats.store.misses),
        (
            "rfsim_store_insertions_total",
            "counter",
            stats.store.insertions,
        ),
        (
            "rfsim_store_evictions_total",
            "counter",
            stats.store.evictions,
        ),
        ("rfsim_store_len", "gauge", stats.store_len),
        ("rfsim_store_capacity", "gauge", stats.store_capacity),
    ] {
        type_line(&mut out, name, kind);
        sample(&mut out, name, &[], value as f64);
    }

    // Keying (fingerprint) cache.
    for (name, kind, value) in [
        (
            "rfsim_keying_hits_total",
            "counter",
            stats.keying.fp_cache_hits,
        ),
        (
            "rfsim_keying_misses_total",
            "counter",
            stats.keying.fp_cache_misses,
        ),
        (
            "rfsim_keying_invalidations_total",
            "counter",
            stats.keying.invalidations,
        ),
    ] {
        type_line(&mut out, name, kind);
        sample(&mut out, name, &[], value as f64);
    }

    // Engine workspace/factorisation counters.
    for (name, value) in [
        ("rfsim_engine_workspace_hits_total", stats.engine_cache.hits),
        (
            "rfsim_engine_workspace_misses_total",
            stats.engine_cache.misses,
        ),
        (
            "rfsim_engine_full_factorizations_total",
            stats.solver.full_factorizations,
        ),
        (
            "rfsim_engine_refactorizations_total",
            stats.solver.refactorizations,
        ),
    ] {
        type_line(&mut out, name, "counter");
        sample(&mut out, name, &[], value as f64);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{ServeConfig, SimService};
    use crate::spec::JobSpec;

    #[test]
    fn every_sample_line_parses() {
        let service = SimService::start(ServeConfig {
            threads: 1,
            ..Default::default()
        });
        let spec = JobSpec {
            n1: 8,
            n2: 4,
            ..JobSpec::mpde("diode_clipper", 1e6, vec![0.1], vec![10e3])
        };
        let id = service.submit(&spec).expect("submit");
        service
            .wait(id, std::time::Duration::from_secs(30))
            .expect("settle");
        let text = exposition(&service.stats());
        let mut samples = 0usize;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "metadata line: {line}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "numeric value: {line}");
            let name = series.split('{').next().expect("series name");
            assert!(
                name.starts_with("rfsim_")
                    && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "well-formed name: {line}"
            );
            samples += 1;
        }
        assert!(samples > 40, "rich exposition, got {samples} samples");
        // A completed solve leaves non-zero latency counts.
        assert!(
            text.contains("rfsim_e2e_ms_count{shard=\"all\"} 1"),
            "{text}"
        );
    }
}
