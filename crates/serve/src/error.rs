//! Service-level error type.

use rfsim_circuit::CircuitError;
use rfsim_netlist::NetlistError;

/// Everything that can go wrong between a wire request and a stored
/// solution.
#[derive(Debug)]
pub enum ServeError {
    /// The requested circuit family is not registered.
    UnknownFamily(String),
    /// The job specification failed validation.
    InvalidSpec(String),
    /// The admission queue is at capacity — backpressure; retry later.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The service is shutting down and admits no new work.
    Shutdown,
    /// Per-client admission control: this connection already has its
    /// maximum number of unsettled jobs in flight. Poll (or cancel) some
    /// of them before submitting more; other clients are unaffected.
    Throttled {
        /// The per-connection in-flight bound that was hit.
        max_inflight: usize,
    },
    /// The referenced job id is unknown.
    UnknownJob(u64),
    /// A malformed wire request or response.
    Protocol(String),
    /// Socket-level failure.
    Io(std::io::Error),
    /// A circuit build or solve failed.
    Circuit(CircuitError),
    /// A submitted netlist failed to parse or validate. The payload is
    /// line-numbered; the wire maps this to a typed refusal, never a
    /// scheduler fault.
    Netlist(NetlistError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownFamily(name) => write!(f, "unknown circuit family '{name}'"),
            ServeError::InvalidSpec(why) => write!(f, "invalid job spec: {why}"),
            ServeError::QueueFull { capacity } => {
                write!(f, "job queue full (capacity {capacity}); retry later")
            }
            ServeError::Shutdown => write!(f, "service is shutting down"),
            ServeError::Throttled { max_inflight } => write!(
                f,
                "client in-flight cap reached ({max_inflight} unsettled jobs); poll or cancel before submitting more"
            ),
            ServeError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            ServeError::Protocol(why) => write!(f, "protocol error: {why}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Circuit(e) => write!(f, "circuit error: {e}"),
            ServeError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CircuitError> for ServeError {
    fn from(e: CircuitError) -> Self {
        ServeError::Circuit(e)
    }
}

impl From<NetlistError> for ServeError {
    fn from(e: NetlistError) -> Self {
        ServeError::Netlist(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
