//! Deterministic fuzz smoke — the CI stand-in for a coverage-guided
//! fuzzer, with zero dependencies.
//!
//! Hammers the repo's three text frontiers with seeded pseudo-random
//! input and asserts none of them panic:
//!
//! * the `.rfn` netlist parser (byte mutations of valid seeds, token
//!   soup, and structured random netlists — the latter must also
//!   round-trip through their canonical text),
//! * the JSON parser behind the wire protocol,
//! * the wire `Request` parser (mutated valid requests and raw JSON).
//!
//! Every case is a pure function of `--seed`, so a CI failure reproduces
//! locally from the printed iteration number alone:
//!
//! ```sh
//! fuzz-smoke --iters 100000 --seed 42
//! ```
//!
//! A panic anywhere crashes the process — the CI job's only pass
//! criterion is a clean exit with the final `ok` line.

use std::process::ExitCode;

use rfsim_netlist::fuzz::{mutate, random_netlist, random_token_soup, XorShift64};
use rfsim_netlist::Netlist;
use rfsim_numerics::json::Json;
use rfsim_serve::wire::Request;

/// Valid netlists used as mutation bases — one per analysis directive.
const NETLIST_SEEDS: [&str; 5] = [
    "V V1 in gnd dc 1\nR R1 in out 1k\nR R2 out gnd 2k\n.analysis dcop\n",
    "V V1 in gnd sine amp=1 freq=1M phase=0 offset=0\nR R1 in out 1k\nC C1 out gnd 160p\n\
     .analysis transient tstop=2u dt=10n\n",
    "V V1 in gnd drive\nR R1 in out 1k\nC C1 out gnd 160p\n.sweep amplitudes=0.5,1 spacings=1k\n\
     .analysis mpde f1=1M n1=8 n2=4\n",
    "V V1 in gnd drive\nR R1 in out 1k\nD D1 out gnd is=1e-14 n=1 cj0=0 tt=0\n\
     C C1 out gnd 1n\n.sweep amplitudes=1 spacings=1k\n.analysis hb2 f1=1M n1=8 n2=4\n",
    "V V1 in gnd drive\nR R1 in out 1k\nC C1 out gnd 1n\n.sweep amplitudes=1\n\
     .analysis periodic_fd f1=1M n1=16\n",
];

/// Valid wire lines used as mutation bases — one per verb shape.
const WIRE_SEEDS: [&str; 6] = [
    r#"{"verb":"submit","job":{"family":"rc_lowpass","backend":"mpde","f1":1000000,"amplitudes":[0.1],"spacings":[10000],"n1":8,"n2":4,"priority":"normal"}}"#,
    r#"{"verb":"submit_netlist","netlist":"V V1 in gnd drive\nR R1 in out 1k\n.sweep amplitudes=1 spacings=1k\n.analysis mpde f1=1M n1=8 n2=4\n","priority":"high","deadline_ms":5000}"#,
    r#"{"verb":"poll","job_id":7,"wait_ms":250}"#,
    r#"{"verb":"stats"}"#,
    r#"{"verb":"evict","family":"netlist:0123456789abcdef"}"#,
    r#"{"verb":"metrics","format":"json"}"#,
];

fn exercise_netlist(text: &str) {
    // Ok or a typed error that Displays — either way, no panic.
    match Netlist::parse(text) {
        Ok(netlist) => {
            let _ = netlist.family_name();
            let canon = netlist.canonical();
            let reparsed = Netlist::parse(&canon)
                .unwrap_or_else(|e| panic!("canonical text must reparse, got '{e}':\n{canon}"));
            assert_eq!(reparsed, netlist, "canonical round trip changed the AST");
        }
        Err(e) => {
            let _ = e.to_string();
        }
    }
}

fn exercise_wire(line: &str) {
    if let Ok(request) = Request::parse(line) {
        // A parsed request must dump to a line that reparses to itself.
        let dumped = request.dump();
        let again = Request::parse(&dumped)
            .unwrap_or_else(|e| panic!("dump must reparse, got '{e}': {dumped}"));
        assert_eq!(again, request, "wire round trip changed the request");
    }
}

fn main() -> ExitCode {
    let mut iters: u64 = 100_000;
    let mut seed: u64 = 0x5eed_f00d;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--iters" => iters = value("--iters").parse().expect("--iters is a number"),
            "--seed" => seed = value("--seed").parse().expect("--seed is a number"),
            "--help" | "-h" => {
                println!("usage: fuzz-smoke [--iters N] [--seed S]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rng = XorShift64::new(seed);
    let mut parsed_ok = 0u64;
    for i in 0..iters {
        match i % 5 {
            // Byte mutations of valid netlists: the parser sees
            // near-miss input, the hardest rejection path.
            0 => {
                let base = NETLIST_SEEDS[rng.below(NETLIST_SEEDS.len())];
                let edits = 1 + rng.below(12);
                let mutated = mutate(&mut rng, base.as_bytes(), edits);
                exercise_netlist(&String::from_utf8_lossy(&mutated));
            }
            // Token soup: structurally plausible garbage.
            1 => exercise_netlist(&random_token_soup(&mut rng)),
            // Structured random netlists: always valid, so this arm
            // also proves the canonical round trip at volume.
            2 => {
                let netlist = random_netlist(&mut rng);
                exercise_netlist(&netlist.canonical());
                parsed_ok += 1;
            }
            // Mutated wire lines through the JSON and Request parsers.
            3 => {
                let base = WIRE_SEEDS[rng.below(WIRE_SEEDS.len())];
                let edits = 1 + rng.below(8);
                let mutated = mutate(&mut rng, base.as_bytes(), edits);
                let text = String::from_utf8_lossy(&mutated);
                if let Err(e) = Json::parse(&text) {
                    let _ = e.to_string();
                }
                exercise_wire(&text);
            }
            // Raw byte soup straight into the JSON parser.
            _ => {
                let edits = 1 + rng.below(24);
                let soup = mutate(&mut rng, b"{}", edits);
                let text = String::from_utf8_lossy(&soup);
                if let Err(e) = Json::parse(&text) {
                    let _ = e.to_string();
                }
                exercise_wire(&text);
            }
        }
        if i > 0 && i % 100_000 == 0 {
            eprintln!("… {i}/{iters}");
        }
    }
    println!("ok: {iters} iterations, {parsed_ok} structured round trips, 0 panics");
    ExitCode::SUCCESS
}
