//! The `rfsim-client` CLI: drives a running `rfsim-serve` daemon.
//!
//! ```text
//! rfsim-client --addr 127.0.0.1:4520 run --family rc_lowpass \
//!     --backend mpde --f1 1e6 --amplitudes 0.1,0.2 --spacings 10e3,20e3 \
//!     --n1 16 --n2 8 [--priority high] [--deadline-ms 5000] \
//!     [--expect-memo] [--expect-solve]
//! rfsim-client --addr … submit …      # same job flags, returns the id
//! rfsim-client --addr … submit-netlist --file x.rfn [--priority high] \
//!     [--deadline-ms 5000] [--no-wait] [--expect-memo] [--expect-solve]
//! rfsim-client --addr … poll --job 7 [--wait-ms 500] [--progress]
//! rfsim-client --addr … cancel --job 7
//! rfsim-client --addr … stats [--assert-min-hits N] [--per-shard]
//! rfsim-client --addr … metrics [--json] [--require name1,name2,…]
//! rfsim-client --addr … trace --job 7
//! rfsim-client --addr … evict [--family rc_lowpass]
//! rfsim-client --addr … shutdown
//! ```
//!
//! `run` submits, waits, and prints one summary line ending in
//! `digest=<hex> memo_hit=<bool>` — the smoke scripts compare digests
//! across runs to assert bit-identical replay.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rfsim_serve::client::ServeClient;
use rfsim_serve::spec::{BackendKind, JobSpec, Priority};

fn parse_list(text: &str) -> Vec<f64> {
    text.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap_or_else(|_| panic!("bad number '{s}'")))
        .collect()
}

struct JobFlags {
    spec: JobSpec,
    expect_memo: bool,
    expect_solve: bool,
    timeout: Duration,
}

fn parse_job_flags(it: &mut impl Iterator<Item = String>) -> JobFlags {
    let mut flags = JobFlags {
        spec: JobSpec::mpde("rc_lowpass", 1e6, vec![0.1], vec![10e3]),
        expect_memo: false,
        expect_solve: false,
        timeout: Duration::from_secs(300),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--family" => flags.spec.family = value("--family"),
            "--backend" => {
                let label = value("--backend");
                flags.spec.backend = BackendKind::parse(&label)
                    .unwrap_or_else(|| panic!("unknown backend '{label}'"));
            }
            "--f1" => flags.spec.f1 = value("--f1").parse().expect("f1"),
            "--amplitudes" => flags.spec.amplitudes = parse_list(&value("--amplitudes")),
            "--spacings" => flags.spec.spacings = parse_list(&value("--spacings")),
            "--n1" => flags.spec.n1 = value("--n1").parse().expect("n1"),
            "--n2" => flags.spec.n2 = value("--n2").parse().expect("n2"),
            "--priority" => {
                let label = value("--priority");
                flags.spec.priority =
                    Priority::parse(&label).unwrap_or_else(|| panic!("unknown priority '{label}'"));
            }
            "--timeout-s" => {
                flags.timeout = Duration::from_secs(value("--timeout-s").parse().expect("timeout"))
            }
            "--deadline-ms" => {
                flags.spec.deadline_ms = Some(value("--deadline-ms").parse().expect("deadline"))
            }
            "--expect-memo" => flags.expect_memo = true,
            "--expect-solve" => flags.expect_solve = true,
            other => panic!("unknown job flag {other}"),
        }
    }
    flags
}

fn main() -> ExitCode {
    let mut it = std::env::args().skip(1).peekable();
    let mut addr = "127.0.0.1:4520".to_string();
    if it.peek().map(String::as_str) == Some("--addr") {
        it.next();
        addr = it.next().expect("--addr needs a value");
    }
    let command = it.next().unwrap_or_else(|| {
        eprintln!(
            "usage: rfsim-client [--addr HOST:PORT] \
             <run|submit|submit-netlist|poll|cancel|stats|metrics|trace|evict|shutdown> …"
        );
        std::process::exit(2);
    });
    let mut client =
        ServeClient::connect(&*addr).unwrap_or_else(|e| panic!("connecting to {addr}: {e}"));

    match command.as_str() {
        "submit" => {
            let flags = parse_job_flags(&mut it);
            let id = client
                .submit(&flags.spec)
                .unwrap_or_else(|e| panic!("submit: {e}"));
            println!("job_id={id}");
            ExitCode::SUCCESS
        }
        "submit-netlist" => {
            let mut file = None;
            let mut priority = Priority::Normal;
            let mut deadline_ms = None;
            let mut wait = true;
            let mut timeout = Duration::from_secs(300);
            let mut expect_memo = false;
            let mut expect_solve = false;
            while let Some(flag) = it.next() {
                let mut value =
                    |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
                match flag.as_str() {
                    "--file" => file = Some(value("--file")),
                    "--priority" => {
                        let label = value("--priority");
                        priority = Priority::parse(&label)
                            .unwrap_or_else(|| panic!("unknown priority '{label}'"));
                    }
                    "--deadline-ms" => {
                        deadline_ms = Some(value("--deadline-ms").parse().expect("deadline"))
                    }
                    "--timeout-s" => {
                        timeout =
                            Duration::from_secs(value("--timeout-s").parse().expect("timeout"))
                    }
                    "--no-wait" => wait = false,
                    "--expect-memo" => expect_memo = true,
                    "--expect-solve" => expect_solve = true,
                    other => panic!("unknown submit-netlist flag {other}"),
                }
            }
            let file = file.unwrap_or_else(|| panic!("submit-netlist needs --file"));
            let text =
                std::fs::read_to_string(&file).unwrap_or_else(|e| panic!("reading {file}: {e}"));
            let t0 = Instant::now();
            let (id, family) = match client.submit_netlist(&text, priority, deadline_ms) {
                Ok(ok) => ok,
                Err(e) => {
                    eprintln!("refused: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if !wait {
                println!("job_id={id} family={family}");
                return ExitCode::SUCCESS;
            }
            let outcome = client
                .wait(id, timeout)
                .unwrap_or_else(|e| panic!("wait: {e}"));
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
            if outcome.status != "done" {
                eprintln!(
                    "FAIL: job {id} {} ({})",
                    outcome.status,
                    outcome.error.as_deref().unwrap_or("no error reported")
                );
                return ExitCode::FAILURE;
            }
            let result = outcome.result.as_ref().expect("done outcome has a result");
            let digest = outcome
                .digest
                .clone()
                .unwrap_or_else(|| format!("{:016x}", result.digest()));
            println!(
                "job_id={id} family={family} points={} samples={} elapsed_ms={elapsed_ms:.1} \
                 digest={digest} memo_hit={}",
                result.points.len(),
                result.num_samples(),
                outcome.memo_hit,
            );
            if expect_memo && !outcome.memo_hit {
                eprintln!("FAIL: expected a memo hit, got a fresh solve");
                return ExitCode::FAILURE;
            }
            if expect_solve && outcome.memo_hit {
                eprintln!("FAIL: expected a fresh solve, got a memo hit");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let flags = parse_job_flags(&mut it);
            let t0 = Instant::now();
            let (id, outcome) = client
                .run(&flags.spec, flags.timeout)
                .unwrap_or_else(|e| panic!("run: {e}"));
            let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
            let result = outcome.result.as_ref().expect("done outcome has a result");
            let digest = outcome
                .digest
                .clone()
                .unwrap_or_else(|| format!("{:016x}", result.digest()));
            println!(
                "job_id={id} points={} samples={} elapsed_ms={elapsed_ms:.1} \
                 digest={digest} memo_hit={}",
                result.points.len(),
                result.num_samples(),
                outcome.memo_hit,
            );
            if flags.expect_memo && !outcome.memo_hit {
                eprintln!("FAIL: expected a memo hit, got a fresh solve");
                return ExitCode::FAILURE;
            }
            if flags.expect_solve && outcome.memo_hit {
                eprintln!("FAIL: expected a fresh solve, got a memo hit");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        "poll" => {
            let mut job = None;
            let mut wait_ms = 0u64;
            let mut show_progress = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--job" => job = Some(it.next().expect("--job id").parse().expect("job id")),
                    "--wait-ms" => {
                        wait_ms = it.next().expect("--wait-ms value").parse().expect("wait")
                    }
                    "--progress" => show_progress = true,
                    other => panic!("unknown poll flag {other}"),
                }
            }
            let outcome = client
                .poll(job.expect("poll needs --job"), wait_ms)
                .unwrap_or_else(|e| panic!("poll: {e}"));
            match (&outcome.status[..], &outcome.digest) {
                ("done", Some(digest)) => {
                    println!("status=done memo_hit={} digest={digest}", outcome.memo_hit)
                }
                _ => println!(
                    "status={}{}{}{}",
                    outcome.status,
                    outcome
                        .error
                        .map(|e| format!(" error={e}"))
                        .unwrap_or_default(),
                    outcome
                        .interrupt_reason
                        .map(|r| format!(" interrupted={r}"))
                        .unwrap_or_default(),
                    outcome
                        .progress
                        .filter(|_| show_progress)
                        .map(|p| format!(
                            " rung={} iteration={}{}",
                            p.rung,
                            p.iteration,
                            p.best_residual
                                .map(|r| format!(" best_residual={r:.3e}"))
                                .unwrap_or_default()
                        ))
                        .unwrap_or_default()
                ),
            }
            ExitCode::SUCCESS
        }
        "cancel" => {
            let mut job = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--job" => job = Some(it.next().expect("--job id").parse().expect("job id")),
                    // A bare positional id works too: `cancel 7`.
                    other => {
                        job = Some(
                            other
                                .parse()
                                .unwrap_or_else(|_| panic!("unknown cancel flag {other}")),
                        )
                    }
                }
            }
            let status = client
                .cancel(job.expect("cancel needs a job id"))
                .unwrap_or_else(|e| panic!("cancel: {e}"));
            println!("status={status}");
            ExitCode::SUCCESS
        }
        "stats" => {
            let mut assert_min_hits = None;
            let mut per_shard = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--assert-min-hits" => {
                        assert_min_hits =
                            Some(it.next().expect("value").parse::<f64>().expect("count"))
                    }
                    "--per-shard" => per_shard = true,
                    other => panic!("unknown stats flag {other}"),
                }
            }
            let stats = client.stats().unwrap_or_else(|e| panic!("stats: {e}"));
            println!("{}", stats.dump());
            if per_shard {
                let shards = stats.array_at("shards").unwrap_or_default();
                println!("shard_count={}", shards.len());
                for shard in shards {
                    let n = |path: &str| shard.number_at(path).unwrap_or(0.0);
                    let mut totals = [0.0f64; 5]; // submitted, memo_hits, retried, cancelled, completed
                    if let Some(queues) = shard.path("queues") {
                        for backend in ["mpde", "hb2", "periodic_fd"] {
                            totals[0] += queues
                                .number_at(&format!("{backend}.submitted"))
                                .unwrap_or(0.0);
                            totals[1] += queues
                                .number_at(&format!("{backend}.memo_hits"))
                                .unwrap_or(0.0);
                            totals[2] += queues
                                .number_at(&format!("{backend}.retried"))
                                .unwrap_or(0.0);
                            totals[3] += queues
                                .number_at(&format!("{backend}.cancelled"))
                                .unwrap_or(0.0);
                            totals[4] += queues
                                .number_at(&format!("{backend}.completed"))
                                .unwrap_or(0.0);
                        }
                    }
                    println!(
                        "shard={} store_len={} store_hit_rate={:.3} queue_depth={} \
                         submitted={} memo_hits={} completed={} retried={} cancelled={} \
                         rungs={}/{}",
                        n("shard"),
                        n("store.len"),
                        n("store.hit_rate"),
                        n("queue.depth"),
                        totals[0],
                        totals[1],
                        totals[4],
                        totals[2],
                        totals[3],
                        n("engine.rung_successes"),
                        n("engine.rung_attempts"),
                    );
                }
            }
            if let Some(min) = assert_min_hits {
                let hits = stats.number_at("store.hits").unwrap_or(0.0);
                if hits < min {
                    eprintln!("FAIL: store hits {hits} below required minimum {min}");
                    return ExitCode::FAILURE;
                }
                println!("OK: store hits {hits} >= {min}");
            }
            ExitCode::SUCCESS
        }
        "metrics" => {
            let mut json = false;
            let mut require: Vec<String> = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--json" => json = true,
                    "--require" => require.extend(
                        it.next()
                            .expect("--require names")
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(str::to_string),
                    ),
                    other => panic!("unknown metrics flag {other}"),
                }
            }
            if json {
                let stats = client
                    .metrics_json()
                    .unwrap_or_else(|e| panic!("metrics: {e}"));
                println!("{}", stats.dump());
                return ExitCode::SUCCESS;
            }
            let text = client.metrics().unwrap_or_else(|e| panic!("metrics: {e}"));
            // Validate the exposition shape before printing: every
            // non-comment line is `name{labels} value`.
            for line in text.lines() {
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let Some((series, value)) = line.rsplit_once(' ') else {
                    eprintln!("FAIL: malformed sample line: {line}");
                    return ExitCode::FAILURE;
                };
                if value.parse::<f64>().is_err() || series.is_empty() {
                    eprintln!("FAIL: malformed sample line: {line}");
                    return ExitCode::FAILURE;
                }
            }
            print!("{text}");
            for name in &require {
                let found = text.lines().any(|line| {
                    line.split(['{', ' ']).next() == Some(name.as_str()) && !line.starts_with('#')
                });
                if !found {
                    eprintln!("FAIL: required series '{name}' missing from exposition");
                    return ExitCode::FAILURE;
                }
            }
            if !require.is_empty() {
                println!("OK: all {} required series present", require.len());
            }
            ExitCode::SUCCESS
        }
        "trace" => {
            let mut job = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--job" => job = Some(it.next().expect("--job id").parse().expect("job id")),
                    // A bare positional id works too: `trace 7`.
                    other => {
                        job = Some(
                            other
                                .parse()
                                .unwrap_or_else(|_| panic!("unknown trace flag {other}")),
                        )
                    }
                }
            }
            let trace = client
                .trace(job.expect("trace needs a job id"))
                .unwrap_or_else(|e| panic!("trace: {e}"));
            println!(
                "job={} settled={} events={} dropped={}",
                trace.number_at("job_id").unwrap_or(0.0),
                trace.bool_at("settled").unwrap_or(false),
                trace.array_at("events").map(|e| e.len()).unwrap_or(0),
                trace.number_at("dropped").unwrap_or(0.0),
            );
            for event in trace.array_at("events").unwrap_or_default() {
                let label = event.string_at("event").unwrap_or("?");
                let t_ms = event.number_at("t_ms").unwrap_or(0.0);
                let mut extras = String::new();
                if let rfsim_numerics::json::Json::Object(members) = event {
                    for (key, value) in members {
                        if key == "event" || key == "t_ms" {
                            continue;
                        }
                        extras.push_str(&format!(" {key}={}", value.dump()));
                    }
                }
                println!("  +{t_ms:.3}ms {label}{extras}");
            }
            ExitCode::SUCCESS
        }
        "evict" => {
            let mut family = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--family" => family = Some(it.next().expect("--family name")),
                    other => panic!("unknown evict flag {other}"),
                }
            }
            let evicted = client
                .evict(family.as_deref())
                .unwrap_or_else(|e| panic!("evict: {e}"));
            println!("evicted={evicted}");
            ExitCode::SUCCESS
        }
        "shutdown" => {
            client
                .shutdown()
                .unwrap_or_else(|e| panic!("shutdown: {e}"));
            println!("shutdown acknowledged");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!(
                "unknown command '{other}' (run|submit|submit-netlist|poll|cancel|stats|metrics|trace|evict|shutdown)"
            );
            ExitCode::FAILURE
        }
    }
}
