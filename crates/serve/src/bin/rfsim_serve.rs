//! The `rfsim-serve` daemon: a memoising steady-state simulation service
//! over TCP.
//!
//! ```text
//! rfsim-serve [--addr 127.0.0.1:4520] [--store-capacity 256]
//!             [--queue-capacity 1024] [--shards N] [--threads N]
//!             [--batch-max 16] [--quant-digits 12] [--non-deterministic]
//!             [--default-deadline-ms MS] [--retry-max N]
//!             [--retry-backoff-ms MS] [--frontend-workers N]
//!             [--max-inflight N] [--slow-log-ms MS] [--no-telemetry]
//!             [--trace-capacity N]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port; the chosen address
//! is printed), serves the line-delimited JSON protocol (see
//! `docs/serving.md`), and exits on the `shutdown` verb. `--shards N`
//! runs N independent engine shards (see `docs/scaling.md` for sizing);
//! when `--threads` is not given, the default worker count is divided
//! across the shards so the total stays at the machine's parallelism.

use rfsim_rf::key::Quantizer;
use rfsim_rf::pool::WorkerPool;
use rfsim_serve::service::{ServeConfig, SimService};
use rfsim_serve::wire::{FrontEndConfig, WireServer};

struct Args {
    addr: String,
    config: ServeConfig,
    frontend: FrontEndConfig,
    explicit_threads: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:4520".into(),
        config: ServeConfig {
            threads: WorkerPool::from_available_parallelism().threads(),
            ..Default::default()
        },
        frontend: FrontEndConfig::default(),
        explicit_threads: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--store-capacity" => {
                args.config.store_capacity = value("--store-capacity").parse().expect("capacity")
            }
            "--queue-capacity" => {
                args.config.queue_capacity = value("--queue-capacity").parse().expect("capacity")
            }
            "--shards" => args.config.shards = value("--shards").parse().expect("shards"),
            "--threads" => {
                args.config.threads = value("--threads").parse().expect("threads");
                args.explicit_threads = true;
            }
            "--batch-max" => args.config.batch_max = value("--batch-max").parse().expect("batch"),
            "--quant-digits" => {
                args.config.quantizer =
                    Quantizer::new(value("--quant-digits").parse().expect("digits"))
            }
            "--non-deterministic" => args.config.deterministic = false,
            "--default-deadline-ms" => {
                args.config.default_deadline_ms =
                    Some(value("--default-deadline-ms").parse().expect("deadline"))
            }
            "--retry-max" => args.config.retry_max = value("--retry-max").parse().expect("retries"),
            "--retry-backoff-ms" => {
                args.config.retry_backoff_ms = value("--retry-backoff-ms").parse().expect("backoff")
            }
            "--frontend-workers" => {
                args.frontend.workers = value("--frontend-workers").parse().expect("workers")
            }
            "--max-inflight" => {
                args.frontend.max_inflight = value("--max-inflight").parse().expect("cap")
            }
            "--slow-log-ms" => {
                args.config.slow_log_ms = Some(value("--slow-log-ms").parse().expect("threshold"))
            }
            "--no-telemetry" => args.config.telemetry = false,
            "--trace-capacity" => {
                args.config.trace_capacity = value("--trace-capacity").parse().expect("capacity")
            }
            "--help" | "-h" => {
                println!(
                    "rfsim-serve: memoising steady-state simulation daemon\n\
                     flags: --addr HOST:PORT --store-capacity N --queue-capacity N \
                     --shards N --threads N --batch-max N --quant-digits N \
                     --non-deterministic --default-deadline-ms MS --retry-max N \
                     --retry-backoff-ms MS --frontend-workers N --max-inflight N \
                     --slow-log-ms MS --no-telemetry --trace-capacity N"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    // `threads` is per-shard. Without an explicit override, divide the
    // machine's parallelism across the shards instead of oversubscribing
    // shards × default-threads workers.
    if !args.explicit_threads && args.config.shards > 1 {
        args.config.threads = (args.config.threads / args.config.shards.max(1)).max(1);
    }
    args
}

fn main() {
    let args = parse_args();
    let service = SimService::start(args.config.clone());
    let families = service.family_names().join(", ");
    let server = WireServer::start_with(service, &*args.addr, args.frontend)
        .unwrap_or_else(|e| panic!("binding {}: {e}", args.addr));
    // The smoke scripts wait for this exact line before connecting.
    println!("rfsim-serve listening on {}", server.local_addr());
    println!(
        "  families: {families}\n  store capacity: {}  queue capacity: {}  shards: {}  \
         threads/shard: {}  deterministic: {}\n  frontend workers: {}  max inflight/conn: {}",
        args.config.store_capacity,
        args.config.queue_capacity,
        args.config.shards.max(1),
        args.config.threads,
        args.config.deterministic,
        args.frontend.workers.max(1),
        args.frontend.max_inflight.max(1),
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    println!("rfsim-serve: shutdown complete");
}
