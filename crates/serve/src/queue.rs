//! The bounded priority admission queue.
//!
//! Jobs wait here between `submit` and dispatch. Ordering is priority
//! first, submission order within a priority (no starvation inversions
//! from heap ties), and the bound is the service's backpressure valve: a
//! full queue rejects the submit with [`ServeError::QueueFull`] instead
//! of buffering unboundedly — the client retries, the daemon's memory
//! stays flat.

use std::collections::BinaryHeap;
use std::sync::Arc;

use rfsim_rf::key::JobKey;

use crate::error::ServeError;
use crate::spec::{FamilyFn, JobSpec};

/// A job waiting for dispatch.
pub struct QueuedJob {
    /// The canonical spec to execute.
    pub spec: JobSpec,
    /// The solution-store identity computed at submit time.
    pub key: JobKey,
    /// The family builder captured at submit time (so a later
    /// re-registration cannot change what this job solves).
    pub builder: Arc<FamilyFn>,
    /// The family's builder generation at submit time. The scheduler
    /// stores this job's result only if the generation still matches at
    /// completion: a job solved by a superseded builder must not
    /// repopulate the store under a key the replacement now owns.
    pub generation: u64,
    /// Admission sequence number (FIFO within a priority).
    pub seq: u64,
    /// Completed dispatch attempts (0 until the first transient failure
    /// sends the job back for retry).
    pub attempts: usize,
}

impl std::fmt::Debug for QueuedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedJob")
            .field("key", &self.key)
            .field("seq", &self.seq)
            .field("spec", &self.spec)
            .finish()
    }
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority wins; older submission wins ties.
        (self.spec.priority, std::cmp::Reverse(self.seq))
            .cmp(&(other.spec.priority, std::cmp::Reverse(other.seq)))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded max-priority queue of [`QueuedJob`]s.
///
/// Priority escalation (a higher-priority submit coalescing onto a queued
/// key) works by pushing a *superseding* entry, since a binary heap cannot
/// reprioritise in place; the old entry becomes stale and is dropped by
/// the scheduler when popped. Stale entries are tracked here so both the
/// backpressure bound and [`JobQueue::len`] count *live* executions, not
/// heap slots.
#[derive(Debug)]
pub struct JobQueue {
    heap: BinaryHeap<QueuedJob>,
    capacity: usize,
    /// Entries superseded by an escalated duplicate, still sitting in the
    /// heap until the scheduler pops and discards them.
    stale: usize,
}

impl JobQueue {
    /// A queue admitting at most `capacity` waiting jobs (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            heap: BinaryHeap::new(),
            capacity: capacity.max(1),
            stale: 0,
        }
    }

    /// The backpressure bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live jobs currently waiting (stale superseded entries excluded).
    pub fn len(&self) -> usize {
        self.heap.len().saturating_sub(self.stale)
    }

    /// Whether no live job is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits a job. `supersedes` marks this push as a priority
    /// escalation replacing an entry already in the heap (the pair then
    /// costs one slot, not two).
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bound is hit — the job is
    /// handed back untouched inside the error path, nothing is enqueued.
    pub fn push(&mut self, job: QueuedJob, supersedes: bool) -> Result<(), ServeError> {
        if !supersedes && self.len() >= self.capacity {
            return Err(ServeError::QueueFull {
                capacity: self.capacity,
            });
        }
        self.heap.push(job);
        if supersedes {
            self.stale += 1;
        }
        Ok(())
    }

    /// The highest-priority (oldest within priority) entry. The caller
    /// (scheduler) decides whether it is live or a stale duplicate; for a
    /// stale one it must call [`JobQueue::note_stale_dropped`].
    pub fn pop(&mut self) -> Option<QueuedJob> {
        let job = self.heap.pop();
        if self.heap.is_empty() {
            // Nothing left: any stale debt has been fully drained.
            self.stale = 0;
        }
        job
    }

    /// Records that a popped entry was a stale superseded duplicate.
    pub fn note_stale_dropped(&mut self) {
        self.stale = self.stale.saturating_sub(1);
    }

    /// Records that an entry still *in* the heap went stale out-of-band
    /// (its key was completed without a pop — a cancel before dispatch):
    /// the live count excludes it immediately, freeing its backpressure
    /// slot, and the scheduler pays the debt back with
    /// [`JobQueue::note_stale_dropped`] when it pops and discards it.
    pub fn note_stale_enqueued(&mut self) {
        self.stale += 1;
    }

    /// Re-admits a job the scheduler already owns (a retry after a
    /// transient failure): bypasses the capacity bound — the job's
    /// waiters were admitted under it and never released their claim —
    /// without the stale-entry accounting of a superseding push.
    pub fn requeue(&mut self, job: QueuedJob) {
        self.heap.push(job);
    }

    /// A look at what [`JobQueue::pop`] would return.
    pub fn peek(&self) -> Option<&QueuedJob> {
        self.heap.peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FamilyRegistry, Priority};
    use rfsim_rf::key::Quantizer;

    fn job(seq: u64, priority: Priority) -> QueuedJob {
        let registry = FamilyRegistry::builtin();
        let mut spec = JobSpec::mpde("rc_lowpass", 1e6, vec![0.1], vec![10e3]);
        spec.priority = priority;
        let key = spec.key(&registry, Quantizer::default()).expect("key");
        QueuedJob {
            builder: registry.builder(&spec.family).expect("builder"),
            spec,
            key,
            generation: 0,
            seq,
            attempts: 0,
        }
    }

    #[test]
    fn orders_by_priority_then_fifo() {
        let mut q = JobQueue::new(8);
        q.push(job(0, Priority::Normal), false).expect("push");
        q.push(job(1, Priority::Low), false).expect("push");
        q.push(job(2, Priority::High), false).expect("push");
        q.push(job(3, Priority::Normal), false).expect("push");
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.seq)).collect();
        assert_eq!(order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn backpressure_at_capacity() {
        let mut q = JobQueue::new(2);
        q.push(job(0, Priority::Normal), false).expect("push");
        q.push(job(1, Priority::Normal), false).expect("push");
        assert!(matches!(
            q.push(job(2, Priority::High), false),
            Err(ServeError::QueueFull { capacity: 2 })
        ));
        assert_eq!(q.len(), 2);
        q.pop().expect("pop");
        q.push(job(3, Priority::High), false).expect("room again");
        assert_eq!(q.peek().expect("peek").seq, 3);
        assert_eq!(q.pop().expect("pop").seq, 3);
        assert_eq!(q.pop().expect("pop").seq, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn superseding_entries_do_not_consume_capacity() {
        let mut q = JobQueue::new(2);
        q.push(job(0, Priority::Low), false).expect("push");
        q.push(job(1, Priority::Normal), false).expect("push");
        // An escalation duplicate for seq-0's key rides above the bound…
        q.push(job(2, Priority::High), true).expect("escalation");
        // …and neither the live count nor backpressure see a third slot.
        assert_eq!(q.len(), 2);
        assert!(matches!(
            q.push(job(3, Priority::Normal), false),
            Err(ServeError::QueueFull { .. })
        ));
        // Scheduler pops the escalated entry, dispatches it, then drops
        // the stale original.
        assert_eq!(q.pop().expect("pop").seq, 2);
        assert_eq!(q.pop().expect("pop").seq, 1);
        let stale = q.pop().expect("stale original");
        assert_eq!(stale.seq, 0);
        q.note_stale_dropped();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
