//! `rfsim-serve` — a memoising simulation service layer over the
//! [`SweepEngine`](rfsim_rf::sweep::SweepEngine).
//!
//! The sweep engine keeps warm *workspaces* across batches but re-solves
//! every point; dashboard and regression traffic, though, asks for the
//! same amplitude × tone-spacing grids over and over (the sweep-tuned
//! spectrum-analyzer shape). This crate adds the missing layer between
//! "a fast engine" and "a service":
//!
//! * [`store`] — a bounded LRU **solution store** keyed by
//!   `(structure fingerprint, quantised job parameters)`
//!   ([`rfsim_rf::key`]). A hit returns the stored samples
//!   byte-for-byte: replay is bit-identical by construction.
//! * [`queue`] + [`service`] — a **priority admission queue** with
//!   backpressure, in-flight request deduplication (concurrent identical
//!   submits coalesce onto one solve), and a scheduler that batches
//!   same-backend jobs into engine runs. The service runs as a **shard
//!   pool**: N independent engine+store+scheduler shards, jobs routed by
//!   rendezvous hashing over the structure-fingerprint slot
//!   ([`rfsim_rf::key::rendezvous_route`]), so shards share no hot lock.
//! * [`wire`] — a dependency-free **line-delimited JSON protocol** over
//!   `std::net` with `submit` / `poll` / `cancel` / `stats` /
//!   `metrics` / `trace` / `evict` / `shutdown` verbs, served by a
//!   **non-blocking front-end** (bounded worker pool multiplexing
//!   nonblocking sockets, parked long-polls, per-connection admission
//!   control), plus the `rfsim-serve` daemon binary.
//! * [`metrics`] + the per-job telemetry inside [`service`] — per-shard
//!   **latency histograms** (queue wait / solve / end-to-end) exposed
//!   as a Prometheus-style text exposition, bounded per-job lifecycle
//!   **timelines** behind the `trace` verb, and an opt-in slow-job log.
//! * [`client`] — a blocking protocol client, plus the `rfsim-client`
//!   CLI that drives grid requests end-to-end.
//!
//! See `docs/serving.md` for the protocol reference and the keying /
//! eviction rules, `docs/scaling.md` for shard sizing, routing math, and
//! the stats field reference, `docs/observability.md` for the telemetry
//! plane (exposition series, timeline events, the slow-job log), and
//! `examples/serve_roundtrip.rs` for a daemon + client round trip in one
//! process.
//!
//! # Quick start (in-process)
//!
//! ```
//! use std::time::Duration;
//! use rfsim_serve::service::{ServeConfig, SimService};
//! use rfsim_serve::spec::JobSpec;
//!
//! let service = SimService::start(ServeConfig {
//!     threads: 1,
//!     ..Default::default()
//! });
//! let spec = JobSpec::mpde("rc_lowpass", 1e6, vec![0.1, 0.2], vec![10e3]);
//! let first = service.submit(&spec).expect("submit");
//! let solved = service.wait(first, Duration::from_secs(60)).expect("solve");
//! // The same request again is a memo hit: no solve, identical bytes.
//! let again = service.submit(&spec).expect("submit");
//! let replayed = service.wait(again, Duration::from_secs(60)).expect("replay");
//! assert_eq!(solved.digest(), replayed.digest());
//! assert_eq!(service.stats().counters.total().memo_hits, 1);
//! ```
//!
//! See `docs/architecture.md` for where this crate sits in the stack and
//! `docs/serving.md` for the protocol and keying/eviction rules.

#![deny(missing_docs)]

pub mod client;
pub mod error;
pub mod metrics;
pub mod queue;
pub mod service;
pub mod spec;
pub mod store;
pub mod wire;

pub use client::ServeClient;
pub use error::{Result, ServeError};
pub use service::{
    JobId, JobStatus, KeyingStats, LatencySnapshot, NetlistSubmission, ServeConfig, ServeStats,
    ShardStats, SimService, TraceView,
};
pub use spec::{BackendKind, FamilyRegistry, JobResult, JobSpec, Priority};
pub use store::SolutionStore;
pub use wire::{FrontEndConfig, WireServer};
