//! The memoising simulation service: solution store + priority queue +
//! scheduler over a long-lived [`SweepEngine`].
//!
//! # Life of a request
//!
//! 1. **submit** — the spec is validated and canonicalised, its
//!    [`JobKey`] computed — from the per-family fingerprint cache when
//!    this `(family, quantised first point)` has been seen before (no
//!    circuit build, no MNA probe), by building the probe circuit once
//!    otherwise — and then, under one lock:
//!    * a **store hit** completes the job instantly with the stored
//!      [`Arc`]'d result (byte-for-byte what the original solve produced —
//!      replay is bit-identical by construction);
//!    * an **in-flight duplicate** (same key queued or solving) is
//!      *coalesced*: the new job id joins the existing execution's waiter
//!      list, so two concurrent identical submits cost one solve;
//!    * otherwise the job is **admitted** to the bounded priority queue —
//!      or rejected with [`ServeError::QueueFull`] backpressure.
//! 2. **schedule** — a scheduler thread drains the queue in priority
//!    order, batches consecutive same-backend jobs, and hands the batch to
//!    the [`SweepEngine`], which groups jobs by Jacobian fingerprint and
//!    runs the groups on its [`WorkerPool`].
//! 3. **complete** — results are stored (LRU-evicting at capacity) and
//!    every waiter is completed; `poll`/`wait` observe the transition.
//!
//! # Determinism
//!
//! With [`ServeConfig::deterministic`] (the default) the engine runs in
//! its bit-reproducible mode ([`SweepEngine::chain_topology_groups`]
//! off): every job solves on a private workspace with no cross-job
//! seeding, so an identical spec re-solved on a fresh service reproduces
//! the stored samples bit-for-bit — the property the memo-hit acceptance
//! test pins. Turn it off to trade replay identity for cross-job
//! warm-start throughput; the solution store works either way.
//!
//! # Sharding
//!
//! With [`ServeConfig::shards`] > 1 the service is a pool of independent
//! shards. Each shard owns its *own* scheduler thread, [`SweepEngine`]
//! (workspace cache included), solution store, fingerprint cache and
//! scheduler state — there is no cross-shard lock on the hot path; only
//! the family registry and the fault table are shared (both cold).
//! Submits route by rendezvous hashing
//! ([`rfsim_rf::key::rendezvous_route`]) over the *routing slot* — the
//! `(family, quantised first point)` identity of the fingerprint-cache
//! entry — which is computable before any lock is taken or any circuit
//! is built. Routing on the slot rather than the full store key means
//! every spec that shares a fingerprint-cache entry lands on the shard
//! that owns that entry, so per-shard caches stay hot and private: the
//! same spec always routes to the same shard, and no solution is ever
//! stored on two shards. Job ids are allocated in strides (shard `s` of
//! `n` issues `s+1`, `s+1+n`, …), so `poll`/`wait`/`cancel` decode the
//! owning shard from the id alone. `stats` reports both the aggregate
//! view and one [`ShardStats`] per shard.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rfsim_circuit::fault::SolveFault;
use rfsim_circuit::newton::WorkspaceStats;
use rfsim_hb::Hb2Options;
use rfsim_mpde::solver::MpdeOptions;
use rfsim_netlist::{Analysis, DrivePoint, Netlist};
use rfsim_numerics::json::Json;
use rfsim_numerics::sparse::PatternFingerprint;
use rfsim_numerics::telemetry::{LatencyHistogram, Timeline, TimelineEvent, TimelineEventKind};
use rfsim_numerics::{CancelToken, InterruptReason, SolveBudget, SolveInterrupted};
use rfsim_rf::key::{rendezvous_route, JobKey, JobKeyBuilder, Quantizer};
use rfsim_rf::lru::TaggedLru;
use rfsim_rf::pool::WorkerPool;
use rfsim_rf::sweep::{CacheSnapshot, Hb2SweepJob, MpdeSweepJob, PeriodicFdSweepJob, SweepEngine};
use rfsim_shooting::PeriodicFdOptions;

use crate::error::{Result, ServeError};
use crate::queue::{JobQueue, QueuedJob};
use crate::spec::{
    BackendKind, FamilyRegistry, JobResult, JobSpec, PointParams, PointSolution, Priority,
};
use crate::store::{SolutionStore, StoreStats};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Solutions retained by the LRU store.
    pub store_capacity: usize,
    /// Backpressure bound on waiting jobs.
    pub queue_capacity: usize,
    /// Worker threads of the underlying sweep engine.
    pub threads: usize,
    /// Warmed workspaces the engine parks between batches.
    pub workspace_capacity: usize,
    /// Jobs dispatched per scheduling round (one engine batch).
    pub batch_max: usize,
    /// Settled job records (done/failed) retained for polling. Oldest
    /// records are dropped past this bound — `poll` then reports the id
    /// as unknown — so a long-lived daemon's memory stays flat however
    /// many requests it has served (results themselves are bounded
    /// separately by `store_capacity`).
    pub result_capacity: usize,
    /// Bit-reproducible solves (see the module docs). Default on.
    pub deterministic: bool,
    /// Parameter quantisation for store keys.
    pub quantizer: Quantizer,
    /// Start with the scheduler paused (tests and manual embedders;
    /// resume with [`SimService::resume`]).
    pub paused: bool,
    /// Wall-clock deadline (milliseconds, from dispatch) applied to jobs
    /// that carry no [`JobSpec::deadline_ms`] of their own. This is the
    /// scheduler-slot reclamation bound: a hung solve is interrupted
    /// when it expires instead of pinning an engine worker forever.
    /// `None` (the default) leaves such jobs unbounded.
    pub default_deadline_ms: Option<u64>,
    /// Automatic re-dispatches after a *transient* solve failure (a
    /// solver error that is neither a budget interruption nor a panic).
    /// `0` (the default) fails the job on its first error.
    pub retry_max: usize,
    /// Backoff before retry attempt `k`: `retry_backoff_ms << (k-1)`
    /// milliseconds (exponential, first retry waits one unit).
    pub retry_backoff_ms: u64,
    /// Independent engine shards (clamped ≥ 1). Each shard owns its own
    /// scheduler thread, engine (with `threads` workers *each*), store
    /// and caches; submits route by rendezvous hashing over the
    /// `(family, quantised first point)` slot. See the module docs'
    /// sharding section and `docs/scaling.md` for sizing guidance.
    pub shards: usize,
    /// Per-job lifecycle telemetry: queue-wait / solve / end-to-end
    /// latency histograms per shard, plus a bounded [`Timeline`] of
    /// typed events per job ([`SimService::trace`], the `trace` wire
    /// verb). Default on; when off, jobs carry no timeline, no
    /// histogram is touched, and the solve hot path pays only the
    /// budget's existing off-branch. See `docs/observability.md`.
    pub telemetry: bool,
    /// Emit a one-line timeline to stderr for every job whose
    /// end-to-end latency reaches this many milliseconds (requires
    /// `telemetry`). `None` (the default) logs nothing.
    pub slow_log_ms: Option<u64>,
    /// Settled-job timelines retained per shard for the `trace` verb
    /// (FIFO past the bound, like `result_capacity` for results).
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store_capacity: 256,
            queue_capacity: 1024,
            threads: WorkerPool::from_available_parallelism().threads(),
            workspace_capacity: 64,
            batch_max: 16,
            result_capacity: 1024,
            deterministic: true,
            quantizer: Quantizer::default(),
            paused: false,
            default_deadline_ms: None,
            retry_max: 0,
            retry_backoff_ms: 50,
            shards: 1,
            telemetry: true,
            slow_log_ms: None,
            trace_capacity: 256,
        }
    }
}

/// A submitted job's handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// What [`SimService::submit_netlist`] produced: the admitted job, the
/// content-addressed family it keyed against, and whether this submit
/// registered the family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistSubmission {
    /// The submitted job's id.
    pub job_id: JobId,
    /// The content-addressed dynamic family name (`netlist:<16 hex>`).
    pub family: String,
    /// Whether this submit registered the family (false = the same
    /// canonical text is already hosted).
    pub registered: bool,
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting in the admission queue (or coalesced onto a queued twin).
    Queued,
    /// Being solved by the engine (or coalesced onto a running twin).
    Running,
    /// Completed.
    Done {
        /// The solution (shared with the store and any coalesced twins).
        result: Arc<JobResult>,
        /// Whether this job was served from the solution store without a
        /// solve.
        memo_hit: bool,
    },
    /// Failed; the message is the solver or build error.
    Failed {
        /// Human-readable failure description.
        message: String,
        /// Present when the failure was a typed budget interruption
        /// (cancel, deadline, stagnation) rather than a numerical or
        /// structural error.
        interrupted: Option<InterruptSummary>,
    },
}

impl JobStatus {
    /// Wire label.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done { .. } => "done",
            JobStatus::Failed { .. } => "failed",
        }
    }

    /// A plain (non-interrupted) failure.
    pub fn failed(message: impl Into<String>) -> JobStatus {
        JobStatus::Failed {
            message: message.into(),
            interrupted: None,
        }
    }
}

/// A mid-solve snapshot of a running job: which recovery-ladder rung is
/// active, how deep its Newton iteration is, and the best residual seen.
/// Published by the per-job budget's progress observer (the
/// `NewtonDriver` stages every rung's budget child with the rung label),
/// refreshed on every Newton iteration of every row of the job, and
/// dropped when the job settles. Scheduling observability only — never
/// part of a store key or a result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Active recovery-ladder rung label (`plain`, `gmin_stepping`,
    /// `source_stepping`, `continuation`, `retry_unseeded`).
    pub rung: &'static str,
    /// Newton iterations completed inside the active rung.
    pub iteration: usize,
    /// Best residual norm seen so far in the active rung.
    pub best_residual: f64,
}

/// Shared slot the solve thread writes progress into and `poll` reads
/// from — one per in-flight execution, alongside its cancel token.
type ProgressSlot = Arc<Mutex<Option<JobProgress>>>;

/// Per-execution control handles: the cancel token fired by
/// [`SimService::cancel`], the backend whose counters a pre-dispatch
/// cancellation must charge, the progress slot `poll` snapshots, and
/// (with telemetry on) the job's lifecycle timeline plus the instants
/// the latency histograms are computed from.
struct JobControl {
    token: CancelToken,
    kind: BackendKind,
    progress: ProgressSlot,
    /// When the execution was admitted (timeline origin).
    admitted_at: Instant,
    /// When the scheduler first handed the execution to the engine
    /// (`None` until dispatch; queue wait = `dispatched_at -
    /// admitted_at`, solve time = settle − `dispatched_at`).
    dispatched_at: Option<Instant>,
    /// The job's lifecycle timeline (`None` with telemetry off). The
    /// mutex is uncontended in practice: the solve thread appends
    /// milestones, everyone else touches it only at dispatch/settle
    /// under the state lock.
    trace: Option<Arc<Mutex<Timeline>>>,
    /// The family name, for the slow-job log line.
    family: String,
}

impl JobControl {
    fn new(
        kind: BackendKind,
        family: String,
        trace: Option<Arc<Mutex<Timeline>>>,
        admitted_at: Instant,
    ) -> Self {
        JobControl {
            token: CancelToken::new(),
            kind,
            progress: Arc::new(Mutex::new(None)),
            admitted_at,
            dispatched_at: None,
            trace,
            family,
        }
    }
}

/// The settle-outcome label of a [`JobStatus`] for timeline events:
/// `hit`, `solved`, `failed`, `cancelled`, `deadline_expired` or
/// `stagnated`.
fn settle_outcome(status: &JobStatus) -> &'static str {
    match status {
        JobStatus::Done { memo_hit: true, .. } => "hit",
        JobStatus::Done { .. } => "solved",
        JobStatus::Failed {
            interrupted: Some(i),
            ..
        } => i.reason.label(),
        JobStatus::Failed { .. } => "failed",
        // Settle is only ever recorded for settled statuses.
        _ => "failed",
    }
}

/// Records memo-hit telemetry for an id settled at submit: the (tiny)
/// end-to-end latency plus a two-event `admitted → settled{hit}` trace.
fn note_memo_hit(inner: &Inner, id: JobId, t0: Instant) {
    if !inner.telemetry.enabled {
        return;
    }
    inner.telemetry.record_e2e(t0.elapsed());
    let mut timeline = Timeline::new(4);
    timeline.record(TimelineEventKind::Admitted);
    timeline.record(TimelineEventKind::Settled { outcome: "hit" });
    inner.telemetry.retain_trace(id.0, Arc::new(timeline));
}

/// Per-dispatch handles the scheduler hands to `execute_batch`: cancel
/// token, shared progress slot, and (telemetry on) the job's timeline.
type DispatchHandles = (CancelToken, ProgressSlot, Option<Arc<Mutex<Timeline>>>);

/// Per-shard latency telemetry plus the bounded settled-trace store.
/// All recording is a no-op when [`ServeConfig::telemetry`] is off.
struct ShardTelemetry {
    enabled: bool,
    queue_wait: Mutex<LatencyHistogram>,
    solve: Mutex<LatencyHistogram>,
    e2e: Mutex<LatencyHistogram>,
    traces: Mutex<TraceStore>,
}

/// Settled timelines keyed by job id, FIFO-bounded like the result
/// window. Coalesced waiters share one [`Arc`]'d timeline.
struct TraceStore {
    capacity: usize,
    map: HashMap<u64, Arc<Timeline>>,
    order: std::collections::VecDeque<u64>,
}

impl TraceStore {
    fn insert(&mut self, id: u64, trace: Arc<Timeline>) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(id, trace).is_none() {
            self.order.push_back(id);
        }
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }
}

impl ShardTelemetry {
    /// Events retained per job timeline: enough for admit → dispatch →
    /// a full recovery ladder with power-of-two milestones → settle.
    const TIMELINE_EVENTS: usize = 64;

    fn new(config: &ServeConfig) -> Self {
        ShardTelemetry {
            enabled: config.telemetry,
            queue_wait: Mutex::new(LatencyHistogram::new()),
            solve: Mutex::new(LatencyHistogram::new()),
            e2e: Mutex::new(LatencyHistogram::new()),
            traces: Mutex::new(TraceStore {
                capacity: config.trace_capacity,
                map: HashMap::new(),
                order: std::collections::VecDeque::new(),
            }),
        }
    }

    /// A fresh per-job timeline, or `None` with telemetry off.
    fn new_timeline(&self) -> Option<Arc<Mutex<Timeline>>> {
        self.enabled
            .then(|| Arc::new(Mutex::new(Timeline::new(Self::TIMELINE_EVENTS))))
    }

    fn record_queue_wait(&self, elapsed: Duration) {
        if self.enabled {
            self.queue_wait
                .lock()
                .expect("telemetry poisoned")
                .record(elapsed);
        }
    }

    fn record_solve(&self, elapsed: Duration) {
        if self.enabled {
            self.solve
                .lock()
                .expect("telemetry poisoned")
                .record(elapsed);
        }
    }

    fn record_e2e(&self, elapsed: Duration) {
        if self.enabled {
            self.e2e.lock().expect("telemetry poisoned").record(elapsed);
        }
    }

    fn retain_trace(&self, id: u64, trace: Arc<Timeline>) {
        if self.enabled {
            self.traces
                .lock()
                .expect("telemetry poisoned")
                .insert(id, trace);
        }
    }

    fn trace(&self, id: u64) -> Option<Arc<Timeline>> {
        self.traces
            .lock()
            .expect("telemetry poisoned")
            .map
            .get(&id)
            .cloned()
    }

    fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            queue_wait: self.queue_wait.lock().expect("telemetry poisoned").clone(),
            solve: self.solve.lock().expect("telemetry poisoned").clone(),
            e2e: self.e2e.lock().expect("telemetry poisoned").clone(),
        }
    }
}

/// A point-in-time copy of one scope's latency histograms (one shard,
/// or the cross-shard aggregate). Part of [`ShardStats`]/[`ServeStats`];
/// the full histograms ride along (not just summaries) so the `metrics`
/// exposition can emit counts and sums losslessly.
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    /// Admission → first dispatch.
    pub queue_wait: LatencyHistogram,
    /// First dispatch → settle (per execution, coalesced waiters
    /// counted once).
    pub solve: LatencyHistogram,
    /// Admission → settle, per job id (memo hits included).
    pub e2e: LatencyHistogram,
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        LatencySnapshot {
            queue_wait: LatencyHistogram::new(),
            solve: LatencyHistogram::new(),
            e2e: LatencyHistogram::new(),
        }
    }
}

impl LatencySnapshot {
    /// Merges `other` into `self` (cross-shard aggregation).
    fn absorb(&mut self, other: &LatencySnapshot) {
        self.queue_wait.absorb(&other.queue_wait);
        self.solve.absorb(&other.solve);
        self.e2e.absorb(&other.e2e);
    }

    /// The `latency` stats section: one summary object per histogram.
    pub fn to_json(&self) -> Json {
        let summary_json = |h: &LatencyHistogram| {
            let s = h.summary();
            Json::object([
                ("count", Json::from(s.count as usize)),
                ("mean_ms", Json::number(s.mean_ms)),
                ("p50_ms", Json::number(s.p50_ms)),
                ("p90_ms", Json::number(s.p90_ms)),
                ("p99_ms", Json::number(s.p99_ms)),
                ("max_ms", Json::number(s.max_ms)),
            ])
        };
        Json::object([
            ("queue_wait", summary_json(&self.queue_wait)),
            ("solve", summary_json(&self.solve)),
            ("e2e", summary_json(&self.e2e)),
        ])
    }
}

/// An ordered view of one job's lifecycle timeline — what
/// [`SimService::trace`] (and the `trace` wire verb) returns.
#[derive(Debug, Clone)]
pub struct TraceView {
    /// The job the timeline belongs to.
    pub job_id: u64,
    /// Whether the job has settled (a live job yields a partial trace).
    pub settled: bool,
    /// The events, in record order; `at_ns` offsets are from admission.
    pub events: Vec<TimelineEvent>,
    /// Events dropped at the timeline's capacity bound.
    pub dropped: usize,
}

impl TraceView {
    /// Wire encoding (the `trace` verb's payload).
    pub fn to_json(&self) -> Json {
        let event_json = |e: &TimelineEvent| {
            let mut members = vec![
                ("t_ms", Json::number(e.at_ns as f64 / 1e6)),
                ("event", Json::string(e.kind.label())),
            ];
            match e.kind {
                TimelineEventKind::Rung { label } => {
                    members.push(("rung", Json::string(label)));
                }
                TimelineEventKind::Iteration {
                    rung,
                    iteration,
                    residual,
                } => {
                    members.push(("rung", Json::string(rung)));
                    members.push(("iteration", Json::from(iteration)));
                    if residual.is_finite() {
                        members.push(("residual", Json::number(residual)));
                    }
                }
                TimelineEventKind::Retry {
                    attempt,
                    backoff_ms,
                } => {
                    members.push(("attempt", Json::from(attempt)));
                    members.push(("backoff_ms", Json::from(backoff_ms as usize)));
                }
                TimelineEventKind::Settled { outcome } => {
                    members.push(("outcome", Json::string(outcome)));
                }
                _ => {}
            }
            Json::object(members)
        };
        Json::object([
            ("job_id", Json::from(self.job_id as usize)),
            ("settled", Json::Bool(self.settled)),
            ("events", Json::array(self.events.iter().map(event_json))),
            ("dropped", Json::from(self.dropped)),
        ])
    }
}

/// One compact line per timeline for the slow-job log:
/// `admitted+0.0ms queued+0.0ms … settled(solved)+812.4ms`.
fn format_timeline(timeline: &Timeline) -> String {
    let mut parts: Vec<String> = timeline
        .events()
        .iter()
        .map(|e| {
            let t_ms = e.at_ns as f64 / 1e6;
            match e.kind {
                TimelineEventKind::Rung { label } => format!("rung({label})+{t_ms:.1}ms"),
                TimelineEventKind::Iteration {
                    iteration, rung, ..
                } => format!("iter({rung}:{iteration})+{t_ms:.1}ms"),
                TimelineEventKind::Retry { attempt, .. } => format!("retry({attempt})+{t_ms:.1}ms"),
                TimelineEventKind::Settled { outcome } => {
                    format!("settled({outcome})+{t_ms:.1}ms")
                }
                ref kind => format!("{}+{t_ms:.1}ms", kind.label()),
            }
        })
        .collect();
    if timeline.dropped() > 0 {
        parts.push(format!("(+{} dropped)", timeline.dropped()));
    }
    parts.join(" ")
}

/// The control-plane outcome of an interrupted job: what a
/// [`SolveInterrupted`] looked like at the moment the budget stopped the
/// solve, flattened to wire-friendly fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptSummary {
    /// Why the solve stopped.
    pub reason: InterruptReason,
    /// Outer iterations completed before the stop.
    pub iterations: usize,
    /// Best residual reached (infinite when no iteration finished).
    pub best_residual: f64,
    /// Wall-clock spent in the solve (milliseconds).
    pub elapsed_ms: u64,
}

impl InterruptSummary {
    /// Wire label of the reason (`cancelled` / `deadline_expired` /
    /// `stagnated`).
    pub fn label(&self) -> &'static str {
        self.reason.label()
    }
}

impl From<&SolveInterrupted> for InterruptSummary {
    fn from(i: &SolveInterrupted) -> Self {
        InterruptSummary {
            reason: i.reason,
            iterations: i.iterations,
            best_residual: i.best_residual,
            elapsed_ms: i.elapsed.as_millis() as u64,
        }
    }
}

/// Per-backend-queue service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueCounters {
    /// Jobs admitted (including coalesced and memo-served ones).
    pub submitted: usize,
    /// Jobs completed instantly from the solution store.
    pub memo_hits: usize,
    /// Jobs coalesced onto an in-flight identical execution.
    pub coalesced: usize,
    /// Unique executions dispatched to the engine.
    pub solves: usize,
    /// Re-dispatches after a transient solve failure (each retry of each
    /// execution counts once).
    pub retried: usize,
    /// Jobs completed successfully (memo hits included).
    pub completed: usize,
    /// Jobs failed.
    pub failed: usize,
    /// Jobs failed *by cancellation* specifically (a subset of
    /// `failed`): the budget's typed `cancelled` interruption, whether
    /// it landed before dispatch or mid-solve.
    pub cancelled: usize,
    /// Submits rejected by queue backpressure.
    pub rejected: usize,
}

impl QueueCounters {
    /// Adds `other`'s counts into `self` (cross-shard aggregation).
    fn absorb(&mut self, other: &QueueCounters) {
        self.submitted += other.submitted;
        self.memo_hits += other.memo_hits;
        self.coalesced += other.coalesced;
        self.solves += other.solves;
        self.retried += other.retried;
        self.completed += other.completed;
        self.failed += other.failed;
        self.cancelled += other.cancelled;
        self.rejected += other.rejected;
    }
}

/// All per-queue counters, indexed by [`BackendKind::index`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// One counter block per backend queue.
    pub queues: [QueueCounters; 3],
}

impl ServeCounters {
    /// The counter block for `kind`.
    pub fn queue(&self, kind: BackendKind) -> QueueCounters {
        self.queues[kind.index()]
    }

    fn queue_mut(&mut self, kind: BackendKind) -> &mut QueueCounters {
        &mut self.queues[kind.index()]
    }

    /// Totals across the three queues.
    pub fn total(&self) -> QueueCounters {
        let mut t = QueueCounters::default();
        for q in &self.queues {
            t.absorb(q);
        }
        t
    }

    /// Adds `other`'s queues into `self` (cross-shard aggregation).
    fn absorb(&mut self, other: &ServeCounters) {
        for (mine, theirs) in self.queues.iter_mut().zip(&other.queues) {
            mine.absorb(theirs);
        }
    }
}

/// A point-in-time view of one shard: its store, queue, counters,
/// keying cache, and engine. The same shape as the aggregate
/// [`ServeStats`] sections, plus the shard index.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// The shard's index in the pool (`0..shards`).
    pub shard: usize,
    /// Solution-store counters.
    pub store: StoreStats,
    /// Solutions currently retained.
    pub store_len: usize,
    /// Store capacity.
    pub store_capacity: usize,
    /// Jobs waiting for dispatch.
    pub queue_depth: usize,
    /// Queue backpressure bound.
    pub queue_capacity: usize,
    /// Per-backend queue counters.
    pub counters: ServeCounters,
    /// Per-family fingerprint-cache counters (build-free keying).
    pub keying: KeyingStats,
    /// The shard engine's workspace-cache counters.
    pub engine_cache: CacheSnapshot,
    /// The shard engine's linear-solver counters.
    pub solver: WorkspaceStats,
    /// Queue-wait / solve / end-to-end latency histograms (empty with
    /// telemetry off).
    pub latency: LatencySnapshot,
}

impl ShardStats {
    /// Store hit rate over all lookups so far (0 when none).
    pub fn store_hit_rate(&self) -> f64 {
        store_hit_rate(&self.store)
    }

    /// Wire encoding: the aggregate sections plus `shard`.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("shard".to_string(), Json::from(self.shard))];
        members.extend(stats_sections(
            &self.store,
            self.store_len,
            self.store_capacity,
            self.queue_depth,
            self.queue_capacity,
            &self.counters,
            &self.keying,
            &self.engine_cache,
            &self.solver,
            &self.latency,
        ));
        Json::Object(members)
    }
}

/// A point-in-time view of the whole service: every field aggregates
/// across shards; `shards` holds the per-shard breakdown.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Solution-store counters (summed across shards).
    pub store: StoreStats,
    /// Solutions currently retained (all shards).
    pub store_len: usize,
    /// Store capacity (summed across shards).
    pub store_capacity: usize,
    /// Jobs waiting for dispatch (all shards).
    pub queue_depth: usize,
    /// Queue backpressure bound (summed across shards).
    pub queue_capacity: usize,
    /// Per-backend queue counters (summed across shards).
    pub counters: ServeCounters,
    /// Per-family fingerprint-cache counters (build-free keying).
    pub keying: KeyingStats,
    /// Workspace-cache counters (summed across shard engines).
    pub engine_cache: CacheSnapshot,
    /// Aggregated linear-solver counters.
    pub solver: WorkspaceStats,
    /// Latency histograms merged across shards.
    pub latency: LatencySnapshot,
    /// Milliseconds since the service started. A scraper that sees this
    /// decrease between polls is looking at a restarted daemon.
    pub uptime_ms: u64,
    /// Snapshot sequence number (1, 2, 3, … within one service
    /// lifetime); resets on restart, like `uptime_ms`.
    pub stats_generation: u64,
    /// The per-shard breakdown the aggregates above are summed from.
    pub shards: Vec<ShardStats>,
}

impl ServeStats {
    /// Store hit rate over all lookups so far (0 when none).
    pub fn store_hit_rate(&self) -> f64 {
        store_hit_rate(&self.store)
    }

    /// Wire encoding (the `stats` verb's payload): the aggregate
    /// sections, plus `shard_count` and a `shards` array of per-shard
    /// views in the same shape.
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = stats_sections(
            &self.store,
            self.store_len,
            self.store_capacity,
            self.queue_depth,
            self.queue_capacity,
            &self.counters,
            &self.keying,
            &self.engine_cache,
            &self.solver,
            &self.latency,
        );
        members.push(("uptime_ms".to_string(), Json::from(self.uptime_ms as usize)));
        members.push((
            "stats_generation".to_string(),
            Json::from(self.stats_generation as usize),
        ));
        members.push(("shard_count".to_string(), Json::from(self.shards.len())));
        members.push((
            "shards".to_string(),
            Json::array(self.shards.iter().map(ShardStats::to_json)),
        ));
        Json::Object(members)
    }
}

fn store_hit_rate(store: &StoreStats) -> f64 {
    let total = store.hits + store.misses;
    if total == 0 {
        0.0
    } else {
        store.hits as f64 / total as f64
    }
}

/// The shared section encoding of [`ServeStats`] and [`ShardStats`]:
/// one shape for the aggregate and every per-shard view, so wire
/// consumers parse both with the same paths.
#[allow(clippy::too_many_arguments)]
fn stats_sections(
    store: &StoreStats,
    store_len: usize,
    store_capacity: usize,
    queue_depth: usize,
    queue_capacity: usize,
    counters: &ServeCounters,
    keying: &KeyingStats,
    engine_cache: &CacheSnapshot,
    solver: &WorkspaceStats,
    latency: &LatencySnapshot,
) -> Vec<(String, Json)> {
    let queue_json = |q: QueueCounters| {
        Json::object([
            ("submitted", Json::from(q.submitted)),
            ("memo_hits", Json::from(q.memo_hits)),
            ("coalesced", Json::from(q.coalesced)),
            ("solves", Json::from(q.solves)),
            ("retried", Json::from(q.retried)),
            ("completed", Json::from(q.completed)),
            ("failed", Json::from(q.failed)),
            ("cancelled", Json::from(q.cancelled)),
            ("rejected", Json::from(q.rejected)),
        ])
    };
    vec![
        (
            "store".to_string(),
            Json::object([
                ("len", Json::from(store_len)),
                ("capacity", Json::from(store_capacity)),
                ("hits", Json::from(store.hits)),
                ("misses", Json::from(store.misses)),
                ("hit_rate", Json::number(store_hit_rate(store))),
                ("insertions", Json::from(store.insertions)),
                ("evictions", Json::from(store.evictions)),
                ("explicit_evictions", Json::from(store.explicit_evictions)),
            ]),
        ),
        (
            "queue".to_string(),
            Json::object([
                ("depth", Json::from(queue_depth)),
                ("capacity", Json::from(queue_capacity)),
            ]),
        ),
        (
            "queues".to_string(),
            Json::object(
                BackendKind::ALL
                    .iter()
                    .map(|k| (k.label(), queue_json(counters.queue(*k)))),
            ),
        ),
        (
            "keying".to_string(),
            Json::object([
                ("fp_cache_hits", Json::from(keying.fp_cache_hits)),
                ("fp_cache_misses", Json::from(keying.fp_cache_misses)),
                ("invalidations", Json::from(keying.invalidations)),
                ("len", Json::from(keying.len)),
            ]),
        ),
        (
            "engine".to_string(),
            Json::object([
                ("workspace_hits", Json::from(engine_cache.hits)),
                ("workspace_misses", Json::from(engine_cache.misses)),
                ("workspaces_parked", Json::from(engine_cache.parked)),
                ("patterns", Json::from(engine_cache.patterns)),
                (
                    "full_factorizations",
                    Json::from(solver.full_factorizations),
                ),
                ("refactorizations", Json::from(solver.refactorizations)),
                ("precond_refreshes", Json::from(solver.precond_refreshes)),
                ("rung_attempts", Json::from(solver.rung_attempts)),
                ("rung_successes", Json::from(solver.rung_successes)),
            ]),
        ),
        ("latency".to_string(), latency.to_json()),
    ]
}

/// The per-family fingerprint cache behind build-free store keys.
///
/// A fingerprint is a function of the circuit's *structure*, which for a
/// registered family is a function of (builder, operating point) only —
/// so once a `(family, quantised first point)` pair has been probed, every
/// later submit for that pair computes its store key without building a
/// circuit at all. Entries live in the shared [`TaggedLru`], tagged by
/// family name; the slot identity folds the family and the quantised
/// first point through [`JobKeyBuilder`]. The operating point is part of
/// the identity because a family's topology may depend on it (an element
/// switched in above a drive threshold): a fingerprint probed at one
/// first amplitude must never be reused for a spec whose first point
/// lands in a different quantisation bucket. Like every key in this
/// stack the slot identity is a routing hash; a (vanishingly unlikely)
/// collision mislabels only the fingerprint *component* of a store key,
/// which the store key's explicit family and parameter folds keep from
/// ever serving a wrong solution.
///
/// [`SimService::register_family`] drops the replaced family's entries —
/// a new builder may produce a new topology at the same operating point —
/// and bumps the family's *generation*, which the scheduler checks before
/// storing results: a job solved by a superseded builder completes its
/// waiters but must not repopulate the store under a key the new builder
/// now owns.
struct FingerprintCache {
    entries: TaggedLru<PatternFingerprint>,
    /// Builder generation per re-registered family (absent = 0).
    generations: HashMap<String, u64>,
    invalidations: usize,
    /// Hits served by the registry-free submit fast path (a
    /// [`FingerprintCache::peek`] that short-circuited on a store hit) —
    /// counted here because the peek itself is stat-neutral.
    fast_hits: usize,
}

impl FingerprintCache {
    /// Default bound: generous for realistic family × operating-point
    /// counts while capping worst-case retention.
    const DEFAULT_CAPACITY: usize = 4096;

    fn new(capacity: usize) -> Self {
        FingerprintCache {
            entries: TaggedLru::new(capacity.max(1)),
            generations: HashMap::new(),
            invalidations: 0,
            fast_hits: 0,
        }
    }

    /// The cache-slot identity of one `(family, first point)` pair.
    fn slot(family: &str, point: &PointParams, quantizer: Quantizer) -> JobKey {
        JobKeyBuilder::unseeded(quantizer)
            .push_str(family)
            .push_f64(point.amplitude)
            .push_f64(point.f1)
            .push_f64(point.spacing)
            .push_u64(u64::from(point.two_tone))
            .finish()
    }

    fn get(&mut self, slot: JobKey) -> Option<PatternFingerprint> {
        self.entries.get(slot)
    }

    /// A stat-neutral, recency-neutral lookup for the registry-free
    /// submit fast path. The caller must either settle the submit
    /// entirely off this value (then record [`Self::note_fast_hit`]) or
    /// fall through to a counting [`Self::get`] under the registry lock
    /// — never both, so each submit counts exactly one keying event.
    fn peek(&self, slot: JobKey) -> Option<PatternFingerprint> {
        self.entries.peek(slot)
    }

    /// Counts one fast-path keying hit (see [`Self::peek`]).
    fn note_fast_hit(&mut self) {
        self.fast_hits += 1;
    }

    fn insert(&mut self, slot: JobKey, family: &str, fingerprint: PatternFingerprint) {
        self.entries.insert(slot, family, fingerprint);
    }

    /// The current builder generation of `family`.
    fn generation(&self, family: &str) -> u64 {
        self.generations.get(family).copied().unwrap_or(0)
    }

    /// Retires `family`'s builder: drops its cached fingerprints and
    /// bumps its generation, returning how many entries were dropped.
    fn invalidate_family(&mut self, family: &str) -> usize {
        *self.generations.entry(family.to_string()).or_insert(0) += 1;
        let dropped = self.entries.evict(Some(family));
        self.invalidations += dropped;
        dropped
    }

    fn stats(&self) -> KeyingStats {
        let lru = self.entries.stats();
        KeyingStats {
            fp_cache_hits: lru.hits + self.fast_hits,
            fp_cache_misses: lru.misses,
            invalidations: self.invalidations,
            len: self.entries.len(),
        }
    }
}

/// Counters for the per-family fingerprint cache — how often store keys
/// were computed without a circuit build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyingStats {
    /// Submits whose store key came straight from the cache (no circuit
    /// build, no MNA probe).
    pub fp_cache_hits: usize,
    /// Submits that paid the probe build: the first sighting of a
    /// `(family, first point)` pair, or the first after invalidation.
    pub fp_cache_misses: usize,
    /// Entries dropped because their family was re-registered.
    pub invalidations: usize,
    /// Entries currently cached.
    pub len: usize,
}

/// Scheduler-facing mutable state behind one mutex.
struct SchedState {
    queue: JobQueue,
    /// Every live job id's lifecycle state. Settled entries (done or
    /// failed) are bounded by [`ServeConfig::result_capacity`] via
    /// `settled_order`; queued/running entries live until they settle.
    jobs: HashMap<JobId, JobStatus>,
    /// Settled job ids in settle order — the FIFO that enforces the
    /// record bound.
    settled_order: std::collections::VecDeque<JobId>,
    /// In-flight executions: store key → job ids awaiting that execution.
    /// Presence in this map is what submit coalesces onto.
    waiters: HashMap<JobKey, Vec<JobId>>,
    /// Keys currently being solved by the scheduler. Queue entries whose
    /// key is here (or no longer in `waiters`) are stale duplicates from
    /// priority escalation and are dropped on pop.
    dispatched: std::collections::HashSet<JobKey>,
    /// The best priority each *queued* (not yet dispatched) key holds —
    /// lets a higher-priority coalescing submit escalate its twin.
    queued_priority: HashMap<JobKey, Priority>,
    /// Each in-flight execution's control handles (created at admit):
    /// cancel token, backend kind, progress slot.
    cancels: HashMap<JobKey, JobControl>,
    /// Live job id → execution key, so `cancel(id)` can find the
    /// execution a coalesced id rides on. Entries drop when the id
    /// settles.
    job_keys: HashMap<JobId, JobKey>,
    /// Executions parked for a retry backoff: `(due, job)`. Not in the
    /// heap — the scheduler promotes due entries back into the queue.
    deferred: Vec<(Instant, QueuedJob)>,
    /// Each live job id's admission instant (telemetry only; empty with
    /// telemetry off). Entries drop when the id settles — the e2e
    /// histogram is recorded from the removed instant, so coalesced
    /// waiters each count their own true end-to-end latency.
    admitted: HashMap<JobId, Instant>,
    counters: ServeCounters,
    next_id: u64,
    next_seq: u64,
    paused: bool,
    shutdown: bool,
}

impl SchedState {
    /// Records a settled (done/failed) status for `id`, dropping the
    /// oldest settled records past `capacity`. Returns the id's
    /// admission instant (when telemetry recorded one) so the caller
    /// can charge the e2e histogram.
    fn settle(&mut self, id: JobId, status: JobStatus, capacity: usize) -> Option<Instant> {
        self.job_keys.remove(&id);
        self.jobs.insert(id, status);
        self.settled_order.push_back(id);
        while self.settled_order.len() > capacity.max(1) {
            if let Some(old) = self.settled_order.pop_front() {
                self.jobs.remove(&old);
            }
        }
        self.admitted.remove(&id)
    }
}

/// State shared by every shard: the family registry (builders) and the
/// fault-injection table. Both are off the hot path — repeat submits
/// resolve their keys from the per-shard fingerprint cache without
/// touching either.
struct Shared {
    registry: Mutex<FamilyRegistry>,
    /// Injected faults by family name (tests and operational drills);
    /// attached to every row of a matching job at dispatch.
    faults: Mutex<HashMap<String, SolveFault>>,
    /// Families registered dynamically from wire-submitted netlists:
    /// content-addressed name → canonical text. Bounded by
    /// [`SimService::MAX_DYNAMIC_FAMILIES`]; locked after `registry`.
    dynamic: Mutex<BTreeMap<String, String>>,
}

/// One shard: a scheduler thread's whole world. Everything here is
/// private to the shard except `shared`; two shards never contend on a
/// lock while serving routed traffic.
struct Inner {
    config: ServeConfig,
    /// This shard's index in the pool (`0..stride`).
    index: usize,
    /// The pool size; job ids are allocated in strides of it so the
    /// owning shard is decodable from the id alone.
    stride: u64,
    shared: Arc<Shared>,
    engine: SweepEngine,
    store: Mutex<SolutionStore>,
    /// First-point fingerprints per (family, quantised operating point) —
    /// what makes repeat submits (memo hits above all) build-free. Locked
    /// after `registry`, never the other way round.
    fp_cache: Mutex<FingerprintCache>,
    state: Mutex<SchedState>,
    /// Wakes the scheduler (new work, resume, shutdown).
    work_cv: Condvar,
    /// Wakes pollers (a job completed or failed).
    done_cv: Condvar,
    /// Latency histograms + settled-trace retention (no-ops when
    /// telemetry is off).
    telemetry: ShardTelemetry,
}

/// The memoising simulation service: a pool of one or more shards (see
/// the module docs' sharding section). See the module docs for the
/// request lifecycle; construct with [`SimService::start`], stop with
/// [`SimService::shutdown`] (also run on drop).
pub struct SimService {
    shards: Vec<Arc<Inner>>,
    shared: Arc<Shared>,
    config: ServeConfig,
    schedulers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// When the service started — `uptime_ms` in [`ServeStats`].
    started: Instant,
    /// Bumped on every [`SimService::stats`] snapshot. Monotone within
    /// one service lifetime, so a scraper that sees it (or `uptime_ms`)
    /// go backwards knows the daemon restarted between polls.
    stats_generation: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for SimService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimService")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl SimService {
    /// Starts a service with the built-in family catalogue.
    pub fn start(config: ServeConfig) -> Arc<SimService> {
        Self::start_with_registry(config, FamilyRegistry::builtin())
    }

    /// Starts a service hosting `registry`.
    pub fn start_with_registry(config: ServeConfig, registry: FamilyRegistry) -> Arc<SimService> {
        let shard_count = config.shards.max(1);
        let shared = Arc::new(Shared {
            registry: Mutex::new(registry),
            faults: Mutex::new(HashMap::new()),
            dynamic: Mutex::new(BTreeMap::new()),
        });
        let mut shards = Vec::with_capacity(shard_count);
        let mut schedulers = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            // The engine's own solution memo stays off: this service
            // already memoises whole jobs in its store, with richer
            // (per-family, explicit-evict) invalidation than the engine's
            // token rules — two memo layers would just shadow each
            // other's eviction decisions (and hollow out the fresh-solve
            // bench baselines).
            let engine = SweepEngine::with_pool(WorkerPool::new(config.threads))
                .with_cache_capacity(config.workspace_capacity)
                .with_solution_memo(0)
                .chain_topology_groups(!config.deterministic);
            let inner = Arc::new(Inner {
                engine,
                index,
                stride: shard_count as u64,
                shared: Arc::clone(&shared),
                store: Mutex::new(SolutionStore::new(config.store_capacity)),
                fp_cache: Mutex::new(FingerprintCache::new(FingerprintCache::DEFAULT_CAPACITY)),
                state: Mutex::new(SchedState {
                    queue: JobQueue::new(config.queue_capacity),
                    jobs: HashMap::new(),
                    settled_order: std::collections::VecDeque::new(),
                    waiters: HashMap::new(),
                    dispatched: std::collections::HashSet::new(),
                    queued_priority: HashMap::new(),
                    cancels: HashMap::new(),
                    job_keys: HashMap::new(),
                    deferred: Vec::new(),
                    admitted: HashMap::new(),
                    counters: ServeCounters::default(),
                    // Stride allocation: shard `s` issues ids s+1,
                    // s+1+n, s+1+2n, … — unique across the pool, and
                    // `(id - 1) % n` recovers the owning shard.
                    next_id: index as u64 + 1,
                    next_seq: 0,
                    paused: config.paused,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                telemetry: ShardTelemetry::new(&config),
                config: config.clone(),
            });
            let sched_inner = Arc::clone(&inner);
            schedulers.push(
                std::thread::Builder::new()
                    .name(format!("rfsim-serve-scheduler-{index}"))
                    .spawn(move || scheduler_loop(&sched_inner))
                    .expect("spawn scheduler thread"),
            );
            shards.push(inner);
        }
        Arc::new(SimService {
            shards,
            shared,
            config,
            schedulers: Mutex::new(schedulers),
            started: Instant::now(),
            stats_generation: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The configuration this service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The number of shards in the pool.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns job `id` — decodable from the id alone
    /// because ids are allocated in shard strides.
    fn shard_of(&self, id: JobId) -> Result<&Arc<Inner>> {
        if id.0 == 0 {
            return Err(ServeError::UnknownJob(id.0));
        }
        let index = ((id.0 - 1) % self.shards.len() as u64) as usize;
        Ok(&self.shards[index])
    }

    /// Registers (or replaces) a hosted circuit family. Jobs already
    /// submitted keep the builder they were keyed against; *new* submits
    /// key against the replacement — a topology change re-keys them away
    /// from the old entries automatically.
    pub fn register_family(
        &self,
        name: impl Into<String>,
        build: impl Fn(&PointParams) -> rfsim_circuit::Result<rfsim_circuit::Circuit>
            + Send
            + Sync
            + 'static,
    ) {
        let name = name.into();
        let mut registry = self.shared.registry.lock().expect("registry poisoned");
        registry.register(name.clone(), build);
        // The new builder may stamp a different topology at the same
        // operating point, so its cached first-point fingerprints are
        // stale the instant the swap happens. Invalidate under the
        // registry lock: a concurrent submit resolves its fingerprint
        // under that same lock, so it sees either (old builder, old
        // cache) or (new builder, empty cache) — never a mix. Every
        // shard is swept: a family's specs route to whichever shards
        // their first points land on.
        //
        // The store key covers structure and job parameters, not element
        // *values*: a same-topology re-registration (say, a retuned
        // resistor) would otherwise keep serving the old builder's
        // solutions. Replacing a family therefore always drops its
        // stored entries — still under the registry lock, so a submit
        // keyed against the new builder can never race ahead and be
        // served one of the old builder's solutions before the eviction
        // lands (the registry-free fast path only ever *reads* the
        // store, so it observes the eviction or linearises before the
        // replacement).
        for shard in &self.shards {
            shard
                .fp_cache
                .lock()
                .expect("fingerprint cache poisoned")
                .invalidate_family(&name);
            shard
                .store
                .lock()
                .expect("store poisoned")
                .evict(Some(&name));
        }
    }

    /// Hosted family names.
    pub fn family_names(&self) -> Vec<String> {
        self.shared
            .registry
            .lock()
            .expect("registry poisoned")
            .names()
    }

    /// Submits a job. Returns immediately: with a fresh id whose status
    /// is already [`JobStatus::Done`] on a store hit, an id coalesced
    /// onto an identical in-flight execution, or an id waiting in the
    /// queue.
    ///
    /// # Errors
    ///
    /// Validation errors, [`ServeError::UnknownFamily`],
    /// [`ServeError::QueueFull`] backpressure, or
    /// [`ServeError::Shutdown`].
    pub fn submit(&self, spec: &JobSpec) -> Result<JobId> {
        let t0 = Instant::now();
        let canonical = spec.canonicalize()?;
        let quantizer = self.config.quantizer;
        let slot = FingerprintCache::slot(&canonical.family, &canonical.first_point(), quantizer);
        // Routing happens on the slot, not the store key: the slot is
        // computable with no lock and no build, and every spec sharing a
        // fingerprint-cache entry lands on the shard owning that entry.
        let inner = &self.shards[rendezvous_route(slot, self.shards.len())];
        // Registry-free fast path: when the first-point fingerprint is
        // already cached on this shard, the store key is computable
        // without the shared registry lock — and a store hit settles the
        // submit touching only this shard's locks. Repeat traffic (the
        // memo-hit regime the tier is sized for) therefore never
        // serialises across shards. The peek is stat-neutral; the hit is
        // counted only when the fast path actually serves the submit,
        // and a fall-through re-resolves (and counts) under the registry
        // lock as before.
        if let Some(fingerprint) = {
            let fp_cache = inner.fp_cache.lock().expect("fingerprint cache poisoned");
            fp_cache.peek(slot)
        } {
            let key = canonical.key_with_fingerprint(fingerprint, quantizer);
            let kind = canonical.backend;
            // One lock order everywhere: state before store.
            let mut state = inner.state.lock().expect("state poisoned");
            if state.shutdown {
                return Err(ServeError::Shutdown);
            }
            // Peek first so a fall-through counts no store event; the
            // counting `get` (which also refreshes recency) runs only
            // when the hit is actually served.
            let stored = {
                let mut store = inner.store.lock().expect("store poisoned");
                if store.peek(key).is_some() {
                    store.get(key)
                } else {
                    None
                }
            };
            if let Some(result) = stored {
                let id = JobId(state.next_id);
                state.next_id += inner.stride;
                state.settle(
                    id,
                    JobStatus::Done {
                        result,
                        memo_hit: true,
                    },
                    inner.config.result_capacity,
                );
                let q = state.counters.queue_mut(kind);
                q.submitted += 1;
                q.memo_hits += 1;
                q.completed += 1;
                drop(state);
                inner
                    .fp_cache
                    .lock()
                    .expect("fingerprint cache poisoned")
                    .note_fast_hit();
                note_memo_hit(inner, id, t0);
                inner.done_cv.notify_all();
                return Ok(id);
            }
            // Not a memo hit: admission needs the builder, whose fetch
            // must be atomic with the fingerprint/generation read (a
            // concurrent re-registration invalidates under the registry
            // lock). Fall through to the locked resolve.
        }
        // Resolve the first-point structure fingerprint: from the
        // per-family cache when this (family, first point) has been
        // probed before — no circuit build, no MNA probe — and by
        // building the probe circuit exactly once otherwise. Both the
        // resolve and the builder fetch happen under the registry lock,
        // so a concurrent `register_family` cannot hand us a new builder
        // with a stale cached fingerprint.
        let (key, builder, generation) = {
            let registry = self.shared.registry.lock().expect("registry poisoned");
            let builder = registry.builder(&canonical.family)?;
            let (cached, generation) = {
                let mut fp_cache = inner.fp_cache.lock().expect("fingerprint cache poisoned");
                (fp_cache.get(slot), fp_cache.generation(&canonical.family))
            };
            let fingerprint = match cached {
                Some(fp) => fp,
                None => {
                    // Probe with the fp_cache lock released: a family
                    // builder is arbitrary user code, and `stats()` must
                    // not stall behind it. The registry lock still
                    // serialises against `register_family`, so the insert
                    // below cannot cache a fingerprint the invalidation
                    // already swept.
                    let circuit = builder(&canonical.first_point())?;
                    let fp = circuit.jacobian_fingerprint();
                    inner
                        .fp_cache
                        .lock()
                        .expect("fingerprint cache poisoned")
                        .insert(slot, &canonical.family, fp);
                    fp
                }
            };
            (
                canonical.key_with_fingerprint(fingerprint, quantizer),
                builder,
                generation,
            )
        };
        let kind = canonical.backend;
        // One lock order everywhere: state before store.
        let mut state = inner.state.lock().expect("state poisoned");
        if state.shutdown {
            return Err(ServeError::Shutdown);
        }
        let id = JobId(state.next_id);
        let result_capacity = inner.config.result_capacity;
        // Store hit: complete instantly.
        let stored = inner.store.lock().expect("store poisoned").get(key);
        if let Some(result) = stored {
            state.next_id += inner.stride;
            state.settle(
                id,
                JobStatus::Done {
                    result,
                    memo_hit: true,
                },
                result_capacity,
            );
            let q = state.counters.queue_mut(kind);
            q.submitted += 1;
            q.memo_hits += 1;
            q.completed += 1;
            drop(state);
            note_memo_hit(inner, id, t0);
            inner.done_cv.notify_all();
            return Ok(id);
        }
        // In-flight twin: coalesce. The new id's status mirrors the
        // phase the twin execution is in (queued until the scheduler
        // picks the key up, running afterwards).
        if let Some(waiting) = state.waiters.get_mut(&key) {
            let twin = waiting.first().copied();
            waiting.push(id);
            state.next_id += inner.stride;
            let phase = twin
                .and_then(|t| state.jobs.get(&t).cloned())
                .unwrap_or(JobStatus::Queued);
            state.jobs.insert(id, phase);
            state.job_keys.insert(id, key);
            if inner.telemetry.enabled {
                state.admitted.insert(id, t0);
            }
            let q = state.counters.queue_mut(kind);
            q.submitted += 1;
            q.coalesced += 1;
            // Priority escalation: a higher-priority submit must not wait
            // at its queued twin's position. The heap cannot reprioritise
            // in place, so push an escalated duplicate entry; the
            // scheduler drops whichever entry for this key it sees after
            // the first (stale-entry check on pop). Escalation is
            // best-effort: a full queue just keeps the old position.
            let new_priority = canonical.priority;
            let queued_at = state.queued_priority.get(&key).copied();
            if let Some(current) = queued_at {
                if new_priority > current && !state.dispatched.contains(&key) {
                    let seq = state.next_seq;
                    // Supersedes the queued twin: costs no extra queue
                    // slot (so it cannot be rejected); the old entry is
                    // dropped as stale on pop.
                    state
                        .queue
                        .push(
                            QueuedJob {
                                spec: canonical,
                                key,
                                builder,
                                generation,
                                seq,
                                attempts: 0,
                            },
                            true,
                        )
                        .expect("superseding pushes bypass the capacity bound");
                    state.next_seq += 1;
                    state.queued_priority.insert(key, new_priority);
                    drop(state);
                    inner.work_cv.notify_one();
                }
            }
            return Ok(id);
        }
        // Fresh execution: admit to the queue (backpressure may reject).
        let seq = state.next_seq;
        let priority = canonical.priority;
        let family = canonical.family.clone();
        let push = state.queue.push(
            QueuedJob {
                spec: canonical,
                key,
                builder,
                generation,
                seq,
                attempts: 0,
            },
            false,
        );
        if let Err(e) = push {
            state.counters.queue_mut(kind).rejected += 1;
            return Err(e);
        }
        state.next_seq += 1;
        state.next_id += inner.stride;
        state.jobs.insert(id, JobStatus::Queued);
        state.job_keys.insert(id, key);
        state.waiters.insert(key, vec![id]);
        state.queued_priority.insert(key, priority);
        // Every fresh execution gets a cancel token at admit, so a
        // cancel landing while the job is still queued (or mid-solve)
        // always has a handle to fire.
        let trace = inner.telemetry.new_timeline();
        if let Some(trace) = &trace {
            let mut timeline = trace.lock().expect("timeline poisoned");
            timeline.record(TimelineEventKind::Admitted);
            timeline.record(TimelineEventKind::Queued);
        }
        if inner.telemetry.enabled {
            state.admitted.insert(id, t0);
        }
        state
            .cancels
            .insert(key, JobControl::new(kind, family, trace, t0));
        let q = state.counters.queue_mut(kind);
        q.submitted += 1;
        drop(state);
        inner.work_cv.notify_one();
        Ok(id)
    }

    /// Hard cap on families registered dynamically from wire-submitted
    /// netlists. Content addressing dedupes repeat submits of the same
    /// text, so this bounds *distinct* topologies, not traffic; evicting
    /// a netlist family frees its slot.
    pub const MAX_DYNAMIC_FAMILIES: usize = 256;

    /// Parses `text` as a `.rfn` netlist, registers it as a
    /// content-addressed dynamic family (`netlist:<16 hex>`) if absent,
    /// and submits the steady-state job its `.analysis` and `.sweep`
    /// directives describe.
    ///
    /// Registration is *idempotent by content*: the family name is the
    /// hash of the canonical text, so resubmitting the same netlist (in
    /// any spelling) reuses the existing registration — and therefore
    /// hits the solution store — instead of re-registering, which would
    /// evict the family's stored solutions
    /// ([`SimService::register_family`]'s replacement semantics).
    ///
    /// # Errors
    ///
    /// [`ServeError::Netlist`] for parse/validation failures,
    /// [`ServeError::InvalidSpec`] for non-steady-state analyses and the
    /// dynamic-family cap, plus everything [`SimService::submit`]
    /// returns.
    pub fn submit_netlist(
        &self,
        text: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> Result<NetlistSubmission> {
        let netlist = Netlist::parse(text)?;
        let backend = match &netlist.analysis {
            Analysis::Mpde { .. } => BackendKind::Mpde,
            Analysis::Hb2 { .. } => BackendKind::Hb2,
            Analysis::PeriodicFd { .. } => BackendKind::PeriodicFd,
            other => {
                return Err(ServeError::InvalidSpec(format!(
                    "netlist analysis '{}' is not servable over the wire; \
                     use a steady-state directive (mpde|hb2|periodic_fd)",
                    other.keyword()
                )))
            }
        };
        let (f1, n1, n2) = match &netlist.analysis {
            Analysis::Mpde { f1, n1, n2, .. } | Analysis::Hb2 { f1, n1, n2, .. } => (*f1, *n1, *n2),
            Analysis::PeriodicFd { f1, n1, .. } => (*f1, *n1, 0),
            _ => unreachable!("matched above"),
        };
        // The parser guarantees steady-state netlists carry a sweep.
        let (amplitudes, spacings) = match &netlist.sweep {
            Some(sweep) => (sweep.amplitudes.clone(), sweep.spacings.clone()),
            None => (Vec::new(), Vec::new()),
        };
        let family = netlist.family_name();
        let spec = JobSpec {
            family: family.clone(),
            backend,
            f1,
            amplitudes,
            spacings,
            n1,
            n2,
            priority,
            deadline_ms,
        };
        // Register-if-absent under the registry lock — deliberately NOT
        // `register_family`, whose replacement semantics would evict the
        // family's store entries and destroy the repeat-submit memo hit.
        // An existing entry under this name is the same circuit by
        // construction (the name is a content hash).
        let registered = {
            let mut registry = self.shared.registry.lock().expect("registry poisoned");
            if registry.builder(&family).is_ok() {
                false
            } else {
                let mut dynamic = self
                    .shared
                    .dynamic
                    .lock()
                    .expect("dynamic families poisoned");
                if dynamic.len() >= Self::MAX_DYNAMIC_FAMILIES {
                    return Err(ServeError::InvalidSpec(format!(
                        "dynamic family capacity reached ({} netlist topologies); \
                         evict one before submitting new ones",
                        Self::MAX_DYNAMIC_FAMILIES
                    )));
                }
                dynamic.insert(family.clone(), netlist.canonical());
                let build = Arc::new(netlist);
                registry.register(family.clone(), move |p: &PointParams| {
                    build.build_circuit(Some(&DrivePoint {
                        amplitude: p.amplitude,
                        f1: p.f1,
                        spacing: p.spacing,
                        two_tone: p.two_tone,
                    }))
                });
                true
            }
        };
        let job_id = self.submit(&spec)?;
        Ok(NetlistSubmission {
            job_id,
            family,
            registered,
        })
    }

    /// Canonical texts of the dynamically registered netlist families,
    /// keyed by family name.
    pub fn dynamic_families(&self) -> Vec<(String, String)> {
        self.shared
            .dynamic
            .lock()
            .expect("dynamic families poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// A snapshot of `id`'s status.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`].
    pub fn poll(&self, id: JobId) -> Result<JobStatus> {
        self.shard_of(id)?
            .state
            .lock()
            .expect("state poisoned")
            .jobs
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownJob(id.0))
    }

    /// The latest mid-solve [`JobProgress`] snapshot of a *running* job
    /// (`None` while queued, before the first Newton iteration reports,
    /// or once the job settles). Pure observability — reading it never
    /// perturbs the solve.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`].
    pub fn progress(&self, id: JobId) -> Result<Option<JobProgress>> {
        let state = self.shard_of(id)?.state.lock().expect("state poisoned");
        if !state.jobs.contains_key(&id) {
            return Err(ServeError::UnknownJob(id.0));
        }
        Ok(state
            .job_keys
            .get(&id)
            .and_then(|key| state.cancels.get(key))
            .and_then(|control| *control.progress.lock().expect("progress slot poisoned")))
    }

    /// Blocks until `id` completes or fails, up to `timeout`.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`], or [`ServeError::Protocol`] describing
    /// the timeout / failure.
    pub fn wait(&self, id: JobId, timeout: Duration) -> Result<Arc<JobResult>> {
        let deadline = Instant::now() + timeout;
        let inner = self.shard_of(id)?;
        let mut state = inner.state.lock().expect("state poisoned");
        loop {
            match state.jobs.get(&id) {
                None => return Err(ServeError::UnknownJob(id.0)),
                Some(JobStatus::Done { result, .. }) => return Ok(Arc::clone(result)),
                Some(JobStatus::Failed {
                    message,
                    interrupted,
                }) => {
                    let reason = interrupted
                        .as_ref()
                        .map(|i| format!(" [{}]", i.label()))
                        .unwrap_or_default();
                    return Err(ServeError::Protocol(format!(
                        "job {id} failed: {message}{reason}"
                    )));
                }
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::Protocol(format!(
                    "timed out waiting for job {id}"
                )));
            }
            let (next, _) = inner
                .done_cv
                .wait_timeout(state, deadline - now)
                .expect("state poisoned");
            state = next;
        }
    }

    /// Cancels a job (and, necessarily, every job coalesced onto the
    /// same execution — they share one solve). Idempotent: a settled job
    /// just returns its settled status.
    ///
    /// * **Queued** (or parked for a retry backoff): every waiter
    ///   completes immediately with a `cancelled` failure; the heap
    ///   entry is dropped as stale when the scheduler reaches it.
    /// * **Running**: the execution's [`CancelToken`] is fired; the
    ///   solve observes it at its next budget check and the scheduler
    ///   settles every waiter with the typed interruption. The returned
    ///   status is still [`JobStatus::Running`] — `poll`/`wait` observe
    ///   the settlement.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`].
    pub fn cancel(&self, id: JobId) -> Result<JobStatus> {
        let inner = self.shard_of(id)?;
        let mut state = inner.state.lock().expect("state poisoned");
        let status = state
            .jobs
            .get(&id)
            .cloned()
            .ok_or(ServeError::UnknownJob(id.0))?;
        if matches!(status, JobStatus::Done { .. } | JobStatus::Failed { .. }) {
            return Ok(status);
        }
        let key = match state.job_keys.get(&id).copied() {
            Some(key) => key,
            None => return Ok(status),
        };
        if state.dispatched.contains(&key) {
            if let Some(control) = state.cancels.get(&key) {
                control.token.cancel();
            }
            return Ok(JobStatus::Running);
        }
        // Not yet dispatched: complete all coalesced waiters right now —
        // no solve to wait out.
        let kind = match state.cancels.get(&key) {
            Some(control) => control.kind,
            None => return Ok(status),
        };
        let was_deferred = state.deferred.iter().any(|(_, job)| job.key == key);
        state.deferred.retain(|(_, job)| job.key != key);
        if !was_deferred {
            // The key's live heap entry is now stale; account for it so
            // the backpressure bound frees the slot immediately instead
            // of when the scheduler happens to pop it.
            state.queue.note_stale_enqueued();
        }
        state.queued_priority.remove(&key);
        let cancelled = JobStatus::Failed {
            message: "cancelled before dispatch".into(),
            interrupted: Some(InterruptSummary {
                reason: InterruptReason::Cancelled,
                iterations: 0,
                best_residual: f64::INFINITY,
                elapsed_ms: 0,
            }),
        };
        complete_key(inner, &mut state, key, kind, &cancelled);
        drop(state);
        inner.done_cv.notify_all();
        Ok(cancelled)
    }

    /// Installs a deterministic [`SolveFault`] on every subsequent solve
    /// of `family` (tests and operational drills — see
    /// [`rfsim_circuit::fault`]). Replaces any fault already installed
    /// for the family.
    pub fn inject_fault(&self, family: impl Into<String>, fault: SolveFault) {
        self.shared
            .faults
            .lock()
            .expect("faults poisoned")
            .insert(family.into(), fault);
    }

    /// Removes an injected fault, returning whether one was installed.
    pub fn clear_fault(&self, family: &str) -> bool {
        self.shared
            .faults
            .lock()
            .expect("faults poisoned")
            .remove(family)
            .is_some()
    }

    /// Evicts stored solutions — all, or one family's, across every
    /// shard — returning how many were dropped.
    ///
    /// Eviction mirrors [`SimService::register_family`]'s invalidation
    /// exactly, under the registry lock: stored solutions *and* cached
    /// first-point fingerprints are dropped, and the affected builder
    /// generations are retired so an in-flight solve of an evicted
    /// family cannot repopulate the store behind the operator's back.
    /// (An earlier version evicted only the store, leaving a
    /// netlist-registered family's fingerprints — and their build-free
    /// fast path — alive after the operator flushed it.)
    ///
    /// Families registered dynamically from wire-submitted netlists are
    /// additionally *unhosted*: their registration exists only because
    /// some submit carried the text, and the next identical submit
    /// re-registers from its own text — so evicting one frees its
    /// [`SimService::MAX_DYNAMIC_FAMILIES`] slot. Built-in and
    /// programmatically registered families stay registered.
    pub fn evict(&self, family: Option<&str>) -> usize {
        let mut registry = self.shared.registry.lock().expect("registry poisoned");
        let mut dynamic = self
            .shared
            .dynamic
            .lock()
            .expect("dynamic families poisoned");
        let targets: Vec<String> = match family {
            Some(name) => vec![name.to_string()],
            None => registry.names(),
        };
        for name in &targets {
            if dynamic.remove(name).is_some() {
                registry.remove(name);
            }
        }
        let mut dropped = 0;
        for shard in &self.shards {
            {
                let mut fp_cache = shard.fp_cache.lock().expect("fingerprint cache poisoned");
                for name in &targets {
                    fp_cache.invalidate_family(name);
                }
            }
            dropped += shard.store.lock().expect("store poisoned").evict(family);
        }
        dropped
    }

    /// A point-in-time stats snapshot: the aggregate view plus one
    /// [`ShardStats`] per shard.
    pub fn stats(&self) -> ServeStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|inner| {
                let (store, store_len, store_capacity) = {
                    let store = inner.store.lock().expect("store poisoned");
                    (store.stats(), store.len(), store.capacity())
                };
                let (queue_depth, queue_capacity, counters) = {
                    let state = inner.state.lock().expect("state poisoned");
                    (state.queue.len(), state.queue.capacity(), state.counters)
                };
                ShardStats {
                    shard: inner.index,
                    store,
                    store_len,
                    store_capacity,
                    queue_depth,
                    queue_capacity,
                    counters,
                    keying: inner
                        .fp_cache
                        .lock()
                        .expect("fingerprint cache poisoned")
                        .stats(),
                    engine_cache: inner.engine.cache_stats(),
                    solver: inner.engine.solver_stats(),
                    latency: inner.telemetry.snapshot(),
                }
            })
            .collect();
        let mut agg = ServeStats {
            store: StoreStats::default(),
            store_len: 0,
            store_capacity: 0,
            queue_depth: 0,
            queue_capacity: 0,
            counters: ServeCounters::default(),
            keying: KeyingStats::default(),
            engine_cache: CacheSnapshot {
                hits: 0,
                misses: 0,
                parked: 0,
                patterns: 0,
            },
            solver: WorkspaceStats::default(),
            latency: LatencySnapshot::default(),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            stats_generation: self
                .stats_generation
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                + 1,
            shards,
        };
        for s in &agg.shards {
            agg.store.hits += s.store.hits;
            agg.store.misses += s.store.misses;
            agg.store.insertions += s.store.insertions;
            agg.store.evictions += s.store.evictions;
            agg.store.explicit_evictions += s.store.explicit_evictions;
            agg.store_len += s.store_len;
            agg.store_capacity += s.store_capacity;
            agg.queue_depth += s.queue_depth;
            agg.queue_capacity += s.queue_capacity;
            agg.counters.absorb(&s.counters);
            agg.keying.fp_cache_hits += s.keying.fp_cache_hits;
            agg.keying.fp_cache_misses += s.keying.fp_cache_misses;
            agg.keying.invalidations += s.keying.invalidations;
            agg.keying.len += s.keying.len;
            agg.engine_cache.hits += s.engine_cache.hits;
            agg.engine_cache.misses += s.engine_cache.misses;
            agg.engine_cache.parked += s.engine_cache.parked;
            agg.engine_cache.patterns += s.engine_cache.patterns;
            agg.solver.absorb(&s.solver);
            agg.latency.absorb(&s.latency);
        }
        agg
    }

    /// The lifecycle timeline of job `id`: the retained trace of a
    /// settled job, or a live partial trace when the job is still in
    /// flight.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] when telemetry is disabled, and
    /// [`ServeError::UnknownJob`] when the id was never seen or its
    /// settled trace aged out of the bounded retention window.
    pub fn trace(&self, id: JobId) -> Result<TraceView> {
        if !self.config.telemetry {
            return Err(ServeError::Protocol(
                "telemetry is disabled on this service".into(),
            ));
        }
        let inner = self.shard_of(id)?;
        if let Some(timeline) = inner.telemetry.trace(id.0) {
            return Ok(TraceView {
                job_id: id.0,
                settled: timeline.is_settled(),
                events: timeline.events().to_vec(),
                dropped: timeline.dropped(),
            });
        }
        // No settled trace retained: a live in-flight job still yields
        // its partial timeline.
        let state = inner.state.lock().expect("state poisoned");
        let live = state
            .job_keys
            .get(&id)
            .and_then(|key| state.cancels.get(key))
            .and_then(|control| control.trace.as_ref())
            .map(|trace| trace.lock().expect("timeline poisoned").clone());
        match live {
            Some(timeline) => Ok(TraceView {
                job_id: id.0,
                settled: timeline.is_settled(),
                events: timeline.events().to_vec(),
                dropped: timeline.dropped(),
            }),
            None => Err(ServeError::UnknownJob(id.0)),
        }
    }

    /// Resumes schedulers started paused ([`ServeConfig::paused`]).
    pub fn resume(&self) {
        for inner in &self.shards {
            inner.state.lock().expect("state poisoned").paused = false;
            inner.work_cv.notify_all();
        }
    }

    /// Stops admitting work, drains nothing further, and joins every
    /// shard's scheduler. Queued jobs fail with a shutdown message;
    /// completed results stay pollable until the service is dropped.
    pub fn shutdown(&self) {
        for inner in &self.shards {
            let mut state = inner.state.lock().expect("state poisoned");
            if state.shutdown {
                continue;
            }
            state.shutdown = true;
            // Fail everything still waiting so pollers do not hang —
            // except keys mid-solve: their queue entries are stale
            // escalation duplicates, and the scheduler will still deliver
            // the real result when the solve finishes.
            let result_capacity = inner.config.result_capacity;
            while let Some(job) = state.queue.pop() {
                if state.dispatched.contains(&job.key) {
                    continue;
                }
                state.cancels.remove(&job.key);
                if let Some(ids) = state.waiters.remove(&job.key) {
                    for id in ids {
                        state.settle(id, JobStatus::failed("service shut down"), result_capacity);
                    }
                }
            }
            // Retry-parked executions are waiting jobs too.
            let deferred = std::mem::take(&mut state.deferred);
            for (_, job) in deferred {
                state.cancels.remove(&job.key);
                if let Some(ids) = state.waiters.remove(&job.key) {
                    for id in ids {
                        state.settle(id, JobStatus::failed("service shut down"), result_capacity);
                    }
                }
            }
            state.queued_priority.clear();
            drop(state);
            inner.work_cv.notify_all();
            inner.done_cv.notify_all();
        }
        let handles =
            std::mem::take(&mut *self.schedulers.lock().expect("scheduler handles poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Marks every waiter of `key` with `status` (bounded by the config's
/// result capacity), retires the key's in-flight bookkeeping, and (with
/// telemetry on) settles the execution's timeline, records its solve and
/// per-waiter end-to-end latencies, retains the trace under every waiter
/// id, and emits the slow-job log line when the execution ran past
/// [`ServeConfig::slow_log_ms`].
fn complete_key(
    inner: &Inner,
    state: &mut MutexGuard<'_, SchedState>,
    key: JobKey,
    kind: BackendKind,
    status: &JobStatus,
) {
    let result_capacity = inner.config.result_capacity;
    state.dispatched.remove(&key);
    let control = state.cancels.remove(&key);
    let now = Instant::now();
    // Settle the timeline and snapshot it for retention: the live
    // Arc<Mutex<_>> dies with the control entry, the settled copy is
    // what `trace` serves.
    let trace: Option<Arc<Timeline>> = control
        .as_ref()
        .and_then(|control| control.trace.as_ref())
        .map(|trace| {
            let mut timeline = trace.lock().expect("timeline poisoned");
            timeline.record(TimelineEventKind::Settled {
                outcome: settle_outcome(status),
            });
            Arc::new(timeline.clone())
        });
    if let Some(dispatched) = control.as_ref().and_then(|control| control.dispatched_at) {
        inner.telemetry.record_solve(now.duration_since(dispatched));
    }
    if let Some(ids) = state.waiters.remove(&key) {
        for id in ids {
            if let Some(t0) = state.settle(id, status.clone(), result_capacity) {
                inner.telemetry.record_e2e(now.duration_since(t0));
            }
            if let Some(trace) = &trace {
                inner.telemetry.retain_trace(id.0, Arc::clone(trace));
            }
            let q = state.counters.queue_mut(kind);
            match status {
                JobStatus::Failed { interrupted, .. } => {
                    q.failed += 1;
                    if interrupted
                        .as_ref()
                        .is_some_and(|i| matches!(i.reason, InterruptReason::Cancelled))
                    {
                        q.cancelled += 1;
                    }
                }
                _ => q.completed += 1,
            }
        }
    }
    if let (Some(threshold_ms), Some(control), Some(trace)) =
        (inner.config.slow_log_ms, control.as_ref(), trace.as_ref())
    {
        let e2e_ms = now.duration_since(control.admitted_at).as_millis() as u64;
        if e2e_ms >= threshold_ms {
            eprintln!(
                "rfsim-serve: slow job family={} shard={} e2e_ms={} outcome={}: {}",
                control.family,
                inner.index,
                e2e_ms,
                settle_outcome(status),
                format_timeline(trace),
            );
        }
    }
}

/// The scheduler: drain → batch → solve → store → complete, forever.
fn scheduler_loop(inner: &Arc<Inner>) {
    loop {
        // Phase 1: wait for work, drain a same-backend batch.
        let (batch, tokens): (Vec<QueuedJob>, Vec<DispatchHandles>) = {
            let mut state = inner.state.lock().expect("state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                // Promote retry-parked executions whose backoff elapsed.
                let now = Instant::now();
                let mut i = 0;
                while i < state.deferred.len() {
                    if state.deferred[i].0 <= now {
                        let (_, job) = state.deferred.swap_remove(i);
                        state.queued_priority.insert(job.key, job.spec.priority);
                        state.queue.requeue(job);
                    } else {
                        i += 1;
                    }
                }
                if !state.paused && !state.queue.is_empty() {
                    break;
                }
                // With retries parked, sleep only until the earliest one
                // is due; otherwise wait for a submit/resume/shutdown.
                let next_due = state.deferred.iter().map(|(due, _)| *due).min();
                state = match next_due {
                    Some(due) => {
                        let wait = due
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_millis(1));
                        inner
                            .work_cv
                            .wait_timeout(state, wait)
                            .expect("state poisoned")
                            .0
                    }
                    None => inner.work_cv.wait(state).expect("state poisoned"),
                };
            }
            let mut batch: Vec<QueuedJob> = Vec::new();
            let mut tokens: Vec<DispatchHandles> = Vec::new();
            let mut kind: Option<BackendKind> = None;
            while batch.len() < inner.config.batch_max {
                // Stale entries — keys already dispatched (priority-
                // escalation duplicates) or already completed — are
                // dropped without dispatching.
                let stale = match state.queue.peek() {
                    None => break,
                    Some(head) => {
                        if kind.is_some_and(|k| k != head.spec.backend) {
                            break;
                        }
                        !state.waiters.contains_key(&head.key)
                            || state.dispatched.contains(&head.key)
                    }
                };
                let job = state.queue.pop().expect("peeked");
                if stale {
                    state.queue.note_stale_dropped();
                    continue;
                }
                kind = Some(job.spec.backend);
                state.dispatched.insert(job.key);
                state.queued_priority.remove(&job.key);
                // Every waiter of this key is now solving.
                if let Some(ids) = state.waiters.get(&job.key) {
                    for id in ids.clone() {
                        state.jobs.insert(id, JobStatus::Running);
                    }
                }
                state.counters.queue_mut(job.spec.backend).solves += 1;
                let now = Instant::now();
                let handles = match state.cancels.get_mut(&job.key) {
                    Some(control) => {
                        // Queue wait is admission → *first* dispatch; a
                        // retry re-dispatch shows up as solve time.
                        if control.dispatched_at.is_none() {
                            inner
                                .telemetry
                                .record_queue_wait(now.duration_since(control.admitted_at));
                            control.dispatched_at = Some(now);
                        }
                        if let Some(trace) = &control.trace {
                            trace
                                .lock()
                                .expect("timeline poisoned")
                                .record(TimelineEventKind::Dispatched);
                        }
                        (
                            control.token.clone(),
                            Arc::clone(&control.progress),
                            control.trace.clone(),
                        )
                    }
                    None => (CancelToken::default(), Arc::default(), None),
                };
                tokens.push(handles);
                batch.push(job);
            }
            (batch, tokens)
        };
        if batch.is_empty() {
            // Everything drained was stale; go back to waiting.
            continue;
        }

        // Phase 2: solve the batch (no service locks held — submits and
        // polls proceed concurrently). A panicking solve (a bug, or a
        // pathological-but-validated spec) must not kill the scheduler
        // thread — it fails the batch instead.
        let kind = batch[0].spec.backend;
        let outcomes = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_batch(inner, kind, &batch, &tokens)
        }))
        .unwrap_or_else(|panic| {
            let why = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "solver panicked".into());
            batch
                .iter()
                .map(|_| Err(ServeError::Protocol(format!("solve panicked: {why}"))))
                .collect()
        });

        // Phase 3: store and complete.
        let mut state = inner.state.lock().expect("state poisoned");
        for (job, outcome) in batch.into_iter().zip(outcomes) {
            let status = match outcome {
                Ok(result) => {
                    let result = Arc::new(result);
                    // A job keyed against a builder that `register_family`
                    // has since replaced still completes its waiters (they
                    // asked under the old builder — that capture is the
                    // contract), but its result must not repopulate the
                    // store: a same-topology retune shares the old key,
                    // and the eviction that ran at re-registration would
                    // be silently undone.
                    let generation_current = inner
                        .fp_cache
                        .lock()
                        .expect("fingerprint cache poisoned")
                        .generation(&job.spec.family)
                        == job.generation;
                    if generation_current {
                        inner.store.lock().expect("store poisoned").insert(
                            job.key,
                            job.spec.family.clone(),
                            Arc::clone(&result),
                        );
                    }
                    JobStatus::Done {
                        result,
                        memo_hit: false,
                    }
                }
                Err(e) => {
                    let interrupted = match &e {
                        ServeError::Circuit(ce) => ce.interrupted().map(InterruptSummary::from),
                        _ => None,
                    };
                    // A *transient* failure — a solver error that is
                    // neither a budget interruption (the control plane
                    // asked for the stop) nor a panic (ServeError::
                    // Protocol; a bug, not weather) — may earn a retry.
                    let transient = interrupted.is_none() && matches!(e, ServeError::Circuit(_));
                    if transient
                        && job.attempts < inner.config.retry_max
                        && state.waiters.contains_key(&job.key)
                    {
                        // Hand the execution back: waiters revert to
                        // Queued, the job parks for an exponential
                        // backoff, and the deferred-promotion pass
                        // re-admits it when due.
                        state.dispatched.remove(&job.key);
                        if let Some(ids) = state.waiters.get(&job.key) {
                            for id in ids.clone() {
                                state.jobs.insert(id, JobStatus::Queued);
                            }
                        }
                        state.counters.queue_mut(kind).retried += 1;
                        let mut job = job;
                        job.attempts += 1;
                        let backoff = inner
                            .config
                            .retry_backoff_ms
                            .saturating_mul(1u64 << (job.attempts - 1).min(16));
                        if let Some(trace) =
                            state.cancels.get(&job.key).and_then(|c| c.trace.as_ref())
                        {
                            let mut timeline = trace.lock().expect("timeline poisoned");
                            timeline.record(TimelineEventKind::Retry {
                                attempt: job.attempts,
                                backoff_ms: backoff,
                            });
                            timeline.record(TimelineEventKind::Queued);
                        }
                        state
                            .deferred
                            .push((Instant::now() + Duration::from_millis(backoff), job));
                        continue;
                    }
                    JobStatus::Failed {
                        message: e.to_string(),
                        interrupted,
                    }
                }
            };
            complete_key(inner, &mut state, job.key, kind, &status);
        }
        drop(state);
        inner.done_cv.notify_all();
    }
}

/// Runs one same-backend batch through the engine and reassembles
/// per-job results (row-major: spacing outer, amplitude inner).
///
/// `tokens` pairs each batch entry with its cancel token; every row of a
/// job solves under a child of one per-job [`SolveBudget`] carrying that
/// token plus the job's deadline ([`JobSpec::deadline_ms`], falling back
/// to [`ServeConfig::default_deadline_ms`]), so one `cancel` — or one
/// expired deadline — stops all of the job's rows without touching batch
/// neighbours.
fn execute_batch(
    inner: &Arc<Inner>,
    kind: BackendKind,
    batch: &[QueuedJob],
    tokens: &[DispatchHandles],
) -> Vec<Result<JobResult>> {
    let budgets: Vec<SolveBudget> = batch
        .iter()
        .zip(tokens)
        .map(|(job, (token, slot, trace))| {
            let slot = Arc::clone(slot);
            let trace = trace.clone();
            let mut budget = SolveBudget::unlimited()
                .with_cancel(token.clone())
                // Publish mid-solve progress: the NewtonDriver stages
                // every rung's budget child with the rung label, so each
                // iteration snapshot names its ladder rung for `poll`.
                // Iteration 0 is the driver's rung announcement — a
                // timeline transition, not a poll-visible iteration.
                .observed(move |p| {
                    if p.iteration > 0 {
                        *slot.lock().expect("progress slot poisoned") = Some(JobProgress {
                            rung: p.stage.unwrap_or("plain"),
                            iteration: p.iteration,
                            best_residual: p.best_residual,
                        });
                    }
                    if let Some(trace) = &trace {
                        trace.lock().expect("timeline poisoned").note_progress(
                            p.stage,
                            p.iteration,
                            p.residual,
                        );
                    }
                });
            if let Some(ms) = job.spec.deadline_ms.or(inner.config.default_deadline_ms) {
                budget = budget.with_timeout(Duration::from_millis(ms));
            }
            budget
        })
        .collect();
    // Snapshot injected faults once per batch; a fault installed
    // mid-batch applies from the next dispatch on (shared across shards
    // — a drill targets a family wherever its jobs route).
    let faults: HashMap<String, SolveFault> =
        inner.shared.faults.lock().expect("faults poisoned").clone();
    // Flatten: one engine sub-job per (job, spacing row).
    struct Row {
        job_idx: usize,
        spacing: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (job_idx, job) in batch.iter().enumerate() {
        if job.spec.spacings.is_empty() {
            rows.push(Row {
                job_idx,
                spacing: 0.0,
            });
        } else {
            for &fd in &job.spec.spacings {
                rows.push(Row {
                    job_idx,
                    spacing: fd,
                });
            }
        }
    }
    let make = |job: &QueuedJob, fd: f64, two_tone: bool| {
        let builder = Arc::clone(&job.builder);
        let f1 = job.spec.f1;
        move |amplitude: f64| {
            builder(&PointParams {
                amplitude,
                f1,
                spacing: fd,
                two_tone,
            })
        }
    };
    // `(amplitude, flattened samples)` per traced point of one row.
    type RowPoints = Vec<(f64, Vec<f64>)>;
    let row_results: Vec<rfsim_circuit::Result<RowPoints>> = match kind {
        BackendKind::Mpde => {
            let jobs: Vec<MpdeSweepJob> = rows
                .iter()
                .map(|row| {
                    let job = &batch[row.job_idx];
                    let options = MpdeOptions {
                        n1: job.spec.n1,
                        n2: job.spec.n2,
                        ..Default::default()
                    };
                    let mut sweep = MpdeSweepJob::new(
                        format!("{}/fd={}", job.spec.family, row.spacing),
                        job.spec.amplitudes.clone(),
                        1.0 / job.spec.f1,
                        1.0 / row.spacing,
                        options,
                        make(job, row.spacing, true),
                    )
                    .with_budget(budgets[row.job_idx].child());
                    if let Some(fault) = faults.get(&job.spec.family) {
                        sweep = sweep.with_fault(fault.clone());
                    }
                    sweep
                })
                .collect();
            inner
                .engine
                .run_mpde_batch(&jobs)
                .into_iter()
                .map(|r| {
                    r.map(|points| {
                        points
                            .into_iter()
                            .map(|p| (p.value, p.solution.solution.data))
                            .collect()
                    })
                })
                .collect()
        }
        BackendKind::Hb2 => {
            let jobs: Vec<Hb2SweepJob> = rows
                .iter()
                .map(|row| {
                    let job = &batch[row.job_idx];
                    let options = Hb2Options {
                        n1: job.spec.n1,
                        n2: job.spec.n2,
                        ..Default::default()
                    };
                    let mut sweep = Hb2SweepJob::new(
                        format!("{}/fd={}", job.spec.family, row.spacing),
                        job.spec.amplitudes.clone(),
                        1.0 / job.spec.f1,
                        1.0 / row.spacing,
                        options,
                        make(job, row.spacing, true),
                    )
                    .with_budget(budgets[row.job_idx].child());
                    if let Some(fault) = faults.get(&job.spec.family) {
                        sweep = sweep.with_fault(fault.clone());
                    }
                    sweep
                })
                .collect();
            inner
                .engine
                .run_hb2_batch(&jobs)
                .into_iter()
                .map(|r| {
                    r.map(|points| {
                        points
                            .into_iter()
                            .map(|p| (p.value, p.solution.samples))
                            .collect()
                    })
                })
                .collect()
        }
        BackendKind::PeriodicFd => {
            let jobs: Vec<PeriodicFdSweepJob> = rows
                .iter()
                .map(|row| {
                    let job = &batch[row.job_idx];
                    let options = PeriodicFdOptions {
                        n_samples: job.spec.n1,
                        ..Default::default()
                    };
                    let mut sweep = PeriodicFdSweepJob::new(
                        job.spec.family.clone(),
                        job.spec.amplitudes.clone(),
                        1.0 / job.spec.f1,
                        options,
                        make(job, 0.0, false),
                    )
                    .with_budget(budgets[row.job_idx].child());
                    if let Some(fault) = faults.get(&job.spec.family) {
                        sweep = sweep.with_fault(fault.clone());
                    }
                    sweep
                })
                .collect();
            inner
                .engine
                .run_periodic_fd_batch(&jobs)
                .into_iter()
                .map(|r| {
                    r.map(|points| {
                        points
                            .into_iter()
                            .map(|p| (p.value, p.solution.samples))
                            .collect()
                    })
                })
                .collect()
        }
    };
    // Regroup rows into per-job results; a job fails on its first
    // failing row.
    let mut outcomes: Vec<Result<JobResult>> = batch
        .iter()
        .map(|_| Ok(JobResult { points: Vec::new() }))
        .collect();
    for (row, result) in rows.iter().zip(row_results) {
        let slot = &mut outcomes[row.job_idx];
        match result {
            Err(e) => {
                if slot.is_ok() {
                    *slot = Err(e.into());
                }
            }
            Ok(points) => {
                if let Ok(job_result) = slot {
                    for (amplitude, samples) in points {
                        job_result.points.push(PointSolution {
                            amplitude,
                            spacing: row.spacing,
                            samples,
                        });
                    }
                }
            }
        }
    }
    outcomes
}
