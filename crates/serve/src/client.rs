//! A blocking TCP client for the wire protocol — the library behind the
//! `rfsim-client` CLI, the round-trip example, and the CI smoke job.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use rfsim_numerics::json::Json;

use crate::error::{Result, ServeError};
use crate::spec::{JobResult, JobSpec, Priority};
use crate::wire::Request;

/// The settled outcome of a poll.
#[derive(Debug, Clone)]
pub struct PollOutcome {
    /// `queued` / `running` / `done` / `failed`.
    pub status: String,
    /// Present when `done`.
    pub result: Option<JobResult>,
    /// Whether a `done` result was served from the solution store.
    pub memo_hit: bool,
    /// The server-computed bit digest of a `done` result.
    pub digest: Option<String>,
    /// The failure message when `failed`.
    pub error: Option<String>,
    /// The typed interruption reason (`cancelled` / `deadline_expired` /
    /// `stagnated`) when a `failed` job was stopped by its budget rather
    /// than by a solver error.
    pub interrupt_reason: Option<String>,
    /// Mid-solve progress of a `running` job (absent until the first
    /// Newton iteration reports, and once the job settles).
    pub progress: Option<PollProgress>,
}

/// A running job's mid-solve snapshot from the wire `progress` object.
#[derive(Debug, Clone)]
pub struct PollProgress {
    /// Active recovery-ladder rung label.
    pub rung: String,
    /// Newton iterations completed inside the active rung.
    pub iteration: usize,
    /// Best residual so far (absent before any iteration completes —
    /// the wire omits non-finite values).
    pub best_residual: Option<f64>,
}

/// A connected protocol client (one request/response at a time).
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient").finish_non_exhaustive()
    }
}

impl ServeClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Socket connect failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        // Requests are single small lines; Nagle + delayed ACK would add
        // ~40 ms per round trip otherwise.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// I/O failures, malformed responses, or an `ok: false` reply
    /// (surfaced as [`ServeError::Protocol`] with the server's message).
    pub fn call(&mut self, request: &Request) -> Result<Json> {
        let mut line = request.dump();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        let response = Json::parse(line.trim_end()).map_err(ServeError::Protocol)?;
        match response.bool_at("ok") {
            Some(true) => Ok(response),
            Some(false) => Err(ServeError::Protocol(
                response
                    .string_at("error")
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ServeError::Protocol(format!(
                "response missing 'ok': {line}"
            ))),
        }
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// Transport or server-side submit failures (validation,
    /// backpressure).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64> {
        let response = self.call(&Request::Submit(spec.clone()))?;
        response
            .number_at("job_id")
            .map(|id| id as u64)
            .ok_or_else(|| ServeError::Protocol("submit response missing 'job_id'".into()))
    }

    /// Submits a `.rfn` netlist; returns the job id and the
    /// content-addressed family name the daemon keyed it against.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's typed refusal (parse errors
    /// arrive as `netlist error: line N: ...`).
    pub fn submit_netlist(
        &mut self,
        netlist: &str,
        priority: Priority,
        deadline_ms: Option<u64>,
    ) -> Result<(u64, String)> {
        let response = self.call(&Request::SubmitNetlist {
            netlist: netlist.to_string(),
            priority,
            deadline_ms,
        })?;
        let job_id = response
            .number_at("job_id")
            .map(|id| id as u64)
            .ok_or_else(|| {
                ServeError::Protocol("submit_netlist response missing 'job_id'".into())
            })?;
        let family = response
            .string_at("family")
            .ok_or_else(|| ServeError::Protocol("submit_netlist response missing 'family'".into()))?
            .to_string();
        Ok((job_id, family))
    }

    /// Polls a job, long-polling server-side for up to `wait_ms`.
    ///
    /// # Errors
    ///
    /// Transport failures or an unknown job id.
    pub fn poll(&mut self, job_id: u64, wait_ms: u64) -> Result<PollOutcome> {
        let response = self.call(&Request::Poll { job_id, wait_ms })?;
        let status = response
            .string_at("status")
            .ok_or_else(|| ServeError::Protocol("poll response missing 'status'".into()))?
            .to_string();
        let result = match response.path("result") {
            Some(json) => Some(JobResult::from_json(json)?),
            None => None,
        };
        let progress = response
            .string_at("progress.rung")
            .map(|rung| PollProgress {
                rung: rung.to_string(),
                iteration: response.number_at("progress.iteration").unwrap_or(0.0) as usize,
                best_residual: response.number_at("progress.best_residual"),
            });
        Ok(PollOutcome {
            status,
            result,
            memo_hit: response.bool_at("memo_hit").unwrap_or(false),
            digest: response.string_at("digest").map(str::to_string),
            error: response.string_at("error").map(str::to_string),
            interrupt_reason: response.string_at("interrupted.reason").map(str::to_string),
            progress,
        })
    }

    /// Polls until the job settles (done or failed), up to `timeout`.
    ///
    /// # Errors
    ///
    /// Transport failures, the job's failure message, or a timeout.
    pub fn wait(&mut self, job_id: u64, timeout: Duration) -> Result<PollOutcome> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServeError::Protocol(format!(
                    "timed out waiting for job {job_id}"
                )));
            }
            let chunk = remaining.min(Duration::from_millis(500)).as_millis() as u64;
            let outcome = self.poll(job_id, chunk.max(1))?;
            match outcome.status.as_str() {
                "done" => return Ok(outcome),
                "failed" => {
                    let reason = outcome
                        .interrupt_reason
                        .as_deref()
                        .map(|r| format!(" [{r}]"))
                        .unwrap_or_default();
                    return Err(ServeError::Protocol(format!(
                        "job {job_id} failed: {}{reason}",
                        outcome.error.as_deref().unwrap_or("unknown error")
                    )));
                }
                _ => continue,
            }
        }
    }

    /// Submits and waits in one call.
    ///
    /// # Errors
    ///
    /// Any submit or wait failure.
    pub fn run(&mut self, spec: &JobSpec, timeout: Duration) -> Result<(u64, PollOutcome)> {
        let id = self.submit(spec)?;
        let outcome = self.wait(id, timeout)?;
        Ok((id, outcome))
    }

    /// Cancels a job; returns the job's status label after the cancel
    /// took effect (`failed` for a queued job completed on the spot,
    /// `running` while a mid-solve interruption propagates, or the
    /// settled label of an already-finished job — cancel is idempotent).
    ///
    /// # Errors
    ///
    /// Transport failures or an unknown job id.
    pub fn cancel(&mut self, job_id: u64) -> Result<String> {
        let response = self.call(&Request::Cancel { job_id })?;
        response
            .string_at("status")
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("cancel response missing 'status'".into()))
    }

    /// Fetches the server's stats object.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn stats(&mut self) -> Result<Json> {
        let response = self.call(&Request::Stats)?;
        response
            .path("stats")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("stats response missing 'stats'".into()))
    }

    /// Fetches the Prometheus-style metrics exposition text.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics(&mut self) -> Result<String> {
        let response = self.call(&Request::Metrics { json: false })?;
        response
            .string_at("metrics")
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("metrics response missing 'metrics'".into()))
    }

    /// Fetches the metrics snapshot as the stats JSON object (the
    /// `metrics` verb with `format: "json"`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn metrics_json(&mut self) -> Result<Json> {
        let response = self.call(&Request::Metrics { json: true })?;
        response
            .path("stats")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("metrics response missing 'stats'".into()))
    }

    /// Fetches a job's lifecycle timeline (the `trace` verb): settled
    /// traces come from the server's bounded retention window, running
    /// jobs yield their partial timeline.
    ///
    /// # Errors
    ///
    /// Transport failures, an unknown/aged-out job id, or a server with
    /// telemetry disabled.
    pub fn trace(&mut self, job_id: u64) -> Result<Json> {
        let response = self.call(&Request::Trace { job_id })?;
        response
            .path("trace")
            .cloned()
            .ok_or_else(|| ServeError::Protocol("trace response missing 'trace'".into()))
    }

    /// Evicts stored solutions; returns how many were dropped.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn evict(&mut self, family: Option<&str>) -> Result<usize> {
        let response = self.call(&Request::Evict {
            family: family.map(str::to_string),
        })?;
        response
            .number_at("evicted")
            .map(|n| n as usize)
            .ok_or_else(|| ServeError::Protocol("evict response missing 'evicted'".into()))
    }

    /// Asks the daemon to shut down.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&mut self) -> Result<()> {
        self.call(&Request::Shutdown)?;
        Ok(())
    }
}
