use std::fmt;

use rfsim_numerics::SolveInterrupted;

/// Errors produced while building or analysing circuits.
#[derive(Debug, Clone)]
pub enum CircuitError {
    /// The solve was interrupted by its
    /// [`SolveBudget`](rfsim_numerics::SolveBudget) — cancellation,
    /// deadline, or stagnation guard. A control-plane outcome, not a
    /// solver failure: callers with fallback ladders (gmin stepping,
    /// continuation, step halving) must propagate it instead of
    /// retrying.
    Interrupted(SolveInterrupted),
    /// A device parameter was outside its valid range.
    InvalidParameter {
        /// Device name.
        device: String,
        /// Explanation of the problem.
        context: String,
    },
    /// Two devices share a name, or a name was not found.
    BadName {
        /// The offending name.
        name: String,
        /// Explanation.
        context: String,
    },
    /// The nonlinear solve failed to converge.
    ConvergenceFailure {
        /// Which analysis failed (e.g. `"dc operating point"`).
        analysis: String,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// The Newton iteration *diverged*: every damping trial produced a
    /// non-finite residual, so no step — however small — stays on the
    /// residual surface. Unlike [`CircuitError::ConvergenceFailure`]
    /// (which burns `max_iters` making finite-but-insufficient
    /// progress), divergence is detected the moment it happens and is
    /// the typed signal a recovery ladder
    /// ([`NewtonDriver`](crate::driver::NewtonDriver)) uses to move to
    /// its next rung instead of committing a NaN iterate.
    Diverged {
        /// Which analysis diverged.
        analysis: String,
        /// Iterations completed before divergence.
        iterations: usize,
        /// Best (finite) residual norm seen before divergence, infinite
        /// if the very first residual was already non-finite.
        best_residual: f64,
    },
    /// A source lacks the bivariate (multi-time) description required by an
    /// MPDE analysis.
    MissingBivariateSource {
        /// Device name.
        device: String,
    },
    /// Error bubbled up from the numerical kernels.
    Numerics(rfsim_numerics::NumericsError),
    /// Structural problem with the assembled system.
    Structural {
        /// Explanation.
        context: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::Interrupted(i) => write!(f, "{i}"),
            CircuitError::InvalidParameter { device, context } => {
                write!(f, "invalid parameter on device '{device}': {context}")
            }
            CircuitError::BadName { name, context } => {
                write!(f, "bad name '{name}': {context}")
            }
            CircuitError::ConvergenceFailure {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            CircuitError::Diverged {
                analysis,
                iterations,
                best_residual,
            } => write!(
                f,
                "{analysis} diverged after {iterations} iterations: every damping \
                 trial produced a non-finite residual (best finite residual \
                 {best_residual:.3e})"
            ),
            CircuitError::MissingBivariateSource { device } => write!(
                f,
                "source '{device}' has no bivariate (multi-time) waveform; \
                 attach one with SourceSpec::bi for MPDE analyses"
            ),
            CircuitError::Numerics(e) => write!(f, "numerics: {e}"),
            CircuitError::Structural { context } => write!(f, "structural error: {context}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl CircuitError {
    /// The interruption payload, when this error is a budget outcome.
    pub fn interrupted(&self) -> Option<&SolveInterrupted> {
        match self {
            CircuitError::Interrupted(i) => Some(i),
            _ => None,
        }
    }

    /// Whether this error is a budget interruption (and must be
    /// propagated, never absorbed by a retry ladder).
    pub fn is_interrupted(&self) -> bool {
        matches!(self, CircuitError::Interrupted(_))
    }

    /// Whether a recovery ladder may absorb this error and try its next
    /// rung. Solver outcomes — divergence, running out of iterations, a
    /// singular or otherwise failed numerical kernel — are recoverable:
    /// a different rung (gmin stepping, continuation, an unseeded
    /// retry) can legitimately succeed where this one failed.
    /// Interruptions (the control plane asked for the stop) and
    /// structural / parameter / naming errors (every rung would fail
    /// identically) are not.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            CircuitError::Diverged { .. }
                | CircuitError::ConvergenceFailure { .. }
                | CircuitError::Numerics(_)
        )
    }
}

impl From<rfsim_numerics::NumericsError> for CircuitError {
    fn from(e: rfsim_numerics::NumericsError) -> Self {
        // An interruption keeps its typed identity across the layer
        // boundary instead of being buried inside a Numerics wrapper.
        match e {
            rfsim_numerics::NumericsError::Interrupted(i) => CircuitError::Interrupted(i),
            other => CircuitError::Numerics(other),
        }
    }
}

impl From<SolveInterrupted> for CircuitError {
    fn from(i: SolveInterrupted) -> Self {
        CircuitError::Interrupted(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_device() {
        let e = CircuitError::InvalidParameter {
            device: "R1".into(),
            context: "resistance must be positive".into(),
        };
        assert!(e.to_string().contains("R1"));
    }

    #[test]
    fn numerics_error_wraps() {
        let inner = rfsim_numerics::NumericsError::SingularMatrix {
            index: 0,
            pivot: 0.0,
        };
        let e: CircuitError = inner.into();
        assert!(e.to_string().contains("singular"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn recoverability_splits_solver_outcomes_from_structural_faults() {
        let diverged = CircuitError::Diverged {
            analysis: "dc operating point".into(),
            iterations: 3,
            best_residual: f64::INFINITY,
        };
        assert!(diverged.is_recoverable());
        assert!(!diverged.is_interrupted());
        assert!(diverged.to_string().contains("diverged after 3"));
        let structural = CircuitError::Structural {
            context: "floating node".into(),
        };
        assert!(!structural.is_recoverable());
        let interrupted = CircuitError::Interrupted(SolveInterrupted {
            reason: rfsim_numerics::InterruptReason::Cancelled,
            iterations: 1,
            best_residual: 1.0,
            elapsed: std::time::Duration::from_millis(1),
        });
        assert!(!interrupted.is_recoverable());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
