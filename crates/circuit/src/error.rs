use std::fmt;

/// Errors produced while building or analysing circuits.
#[derive(Debug, Clone)]
pub enum CircuitError {
    /// A device parameter was outside its valid range.
    InvalidParameter {
        /// Device name.
        device: String,
        /// Explanation of the problem.
        context: String,
    },
    /// Two devices share a name, or a name was not found.
    BadName {
        /// The offending name.
        name: String,
        /// Explanation.
        context: String,
    },
    /// The nonlinear solve failed to converge.
    ConvergenceFailure {
        /// Which analysis failed (e.g. `"dc operating point"`).
        analysis: String,
        /// Iterations performed.
        iterations: usize,
        /// Final residual norm.
        residual: f64,
    },
    /// A source lacks the bivariate (multi-time) description required by an
    /// MPDE analysis.
    MissingBivariateSource {
        /// Device name.
        device: String,
    },
    /// Error bubbled up from the numerical kernels.
    Numerics(rfsim_numerics::NumericsError),
    /// Structural problem with the assembled system.
    Structural {
        /// Explanation.
        context: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::InvalidParameter { device, context } => {
                write!(f, "invalid parameter on device '{device}': {context}")
            }
            CircuitError::BadName { name, context } => {
                write!(f, "bad name '{name}': {context}")
            }
            CircuitError::ConvergenceFailure {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            CircuitError::MissingBivariateSource { device } => write!(
                f,
                "source '{device}' has no bivariate (multi-time) waveform; \
                 attach one with SourceSpec::bi for MPDE analyses"
            ),
            CircuitError::Numerics(e) => write!(f, "numerics: {e}"),
            CircuitError::Structural { context } => write!(f, "structural error: {context}"),
        }
    }
}

impl std::error::Error for CircuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CircuitError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rfsim_numerics::NumericsError> for CircuitError {
    fn from(e: rfsim_numerics::NumericsError) -> Self {
        CircuitError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_device() {
        let e = CircuitError::InvalidParameter {
            device: "R1".into(),
            context: "resistance must be positive".into(),
        };
        assert!(e.to_string().contains("R1"));
    }

    #[test]
    fn numerics_error_wraps() {
        let inner = rfsim_numerics::NumericsError::SingularMatrix {
            index: 0,
            pivot: 0.0,
        };
        let e: CircuitError = inner.into();
        assert!(e.to_string().contains("singular"));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
