//! Damped Newton–Raphson on sparse nonlinear systems.
//!
//! Shared by the DC operating point, the transient integrators, and (via
//! the same options/statistics types) the steady-state engines. Convergence
//! follows SPICE practice: the update must satisfy a mixed
//! relative/absolute tolerance per unknown *kind* (voltage vs current).
//!
//! # Linear-solver state reuse
//!
//! The Jacobian sparsity pattern of a circuit is fixed for its lifetime, so
//! all per-structure work — triplet compression order, RCM ordering, the
//! Gilbert–Peierls symbolic reach, the pivot order — is computed once and
//! cached in a [`LinearSolverWorkspace`]. Every subsequent Newton iteration
//! assembles in place through the cached slot maps and runs a numeric-only
//! [`SparseLu::refactor_in_place`]. Callers that solve many same-structure
//! systems in sequence (transient timesteps, gmin/source stepping,
//! MPDE continuation, shooting, parameter sweeps) should create one
//! workspace and pass it to [`newton_solve_with_workspace`] so the cache
//! also persists *across* Newton solves; [`newton_solve`] is the
//! convenience wrapper that scopes the workspace to a single solve.

use rfsim_numerics::krylov::{gmres_budgeted, BlockJacobiPrecond, GmresOptions, Ilu0};
use rfsim_numerics::pool::WorkerPool;
use rfsim_numerics::sparse::{
    CscAssembly, CscMatrix, CsrAssembly, CsrMatrix, PatternFingerprint, Triplets,
};
use rfsim_numerics::sparse_lu::{LuOptions, SparseLu};
use rfsim_numerics::vector::{norm2, wrms_ratio};
use rfsim_numerics::NumericsError;
use rfsim_numerics::SolveBudget;

use crate::circuit::UnknownKind;
use crate::{CircuitError, Result};

/// How a [`LinearSolverWorkspace`] runs the numeric refactorisation that
/// dominates every direct Newton iteration after the first.
///
/// Both strategies ride the same resilience ladder
/// (see [`rfsim_numerics::sparse_lu`]): numeric-only refresh of the cached
/// symbolic structure, KLU-style in-pattern pivot exchange when an
/// operating-point jump kills a recorded pivot, and a full
/// re-factorisation only when no in-pattern row qualifies.
#[derive(Debug, Clone, Default)]
pub enum RefactorStrategy {
    /// Refactor on the calling thread. The default, and the right choice
    /// on single-core hosts or for small circuit Jacobians.
    #[default]
    Sequential,
    /// Pipeline the per-column numeric refactorisation across the pool's
    /// workers ([`SparseLu::refactor_in_place_parallel`]). Worth it for
    /// the large MPDE/HB grid Jacobians (`n·N1·N2` unknowns) on
    /// multi-core hosts; pivot exchanges still run on the sequential
    /// fallback inside the same call.
    Parallel(WorkerPool),
}

/// How each Newton linear system `J·dx = −F` is solved.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LinearSolver {
    /// Sparse direct LU (Gilbert–Peierls with RCM ordering). The default.
    #[default]
    Direct,
    /// Restarted GMRES preconditioned with ILU(0); falls back to the direct
    /// solver if the preconditioner or iteration breaks down. This is the
    /// "iterative linear solution methods" configuration of the paper.
    /// Note: MNA matrices with voltage sources have structurally zero
    /// diagonals, which ILU(0) rejects — prefer
    /// [`LinearSolver::GmresBlockJacobi`] for such systems.
    GmresIlu0 {
        /// Relative residual tolerance of the inner solve.
        rtol: f64,
        /// Restart length.
        restart: usize,
        /// Matvec budget.
        max_iters: usize,
    },
    /// Restarted GMRES preconditioned with block-Jacobi over fixed-size
    /// diagonal blocks. The right choice for MPDE grid Jacobians
    /// (`block_size` = circuit unknowns per grid point): every block is a
    /// locally nonsingular circuit matrix even when individual rows have
    /// zero diagonals. Falls back to the direct solver on breakdown.
    GmresBlockJacobi {
        /// Diagonal block size (must divide the system dimension).
        block_size: usize,
        /// Relative residual tolerance of the inner solve.
        rtol: f64,
        /// Restart length.
        restart: usize,
        /// Matvec budget.
        max_iters: usize,
    },
}

impl LinearSolver {
    /// A reasonable GMRES+ILU(0) configuration.
    pub fn gmres_default() -> Self {
        LinearSolver::GmresIlu0 {
            rtol: 1e-9,
            restart: 80,
            max_iters: 2000,
        }
    }

    fn solve_with(
        &self,
        ws: &mut LinearSolverWorkspace,
        jac: &Triplets,
        rhs: &[f64],
        budget: &SolveBudget,
    ) -> Result<Vec<f64>> {
        match self {
            LinearSolver::Direct => ws.solve_direct(jac, rhs),
            LinearSolver::GmresIlu0 {
                rtol,
                restart,
                max_iters,
            } => {
                let opts = GmresOptions {
                    rtol: *rtol,
                    restart: *restart,
                    max_iters: *max_iters,
                    ..Default::default()
                };
                let x0 = vec![0.0; rhs.len()];
                let solved = match ws.ilu_ready(jac) {
                    Ok(()) => {
                        let csr = ws.csr.as_ref().expect("assembled by ilu_ready");
                        let ilu = ws.ilu.as_ref().expect("refreshed by ilu_ready");
                        // An interruption is a control-plane stop, not an
                        // iteration breakdown: it must propagate, never
                        // trigger the direct fallback.
                        match gmres_budgeted(csr, ilu, rhs, &x0, opts, budget) {
                            Ok(pair) => Some(pair),
                            Err(NumericsError::Interrupted(i)) => return Err(i.into()),
                            Err(_) => None,
                        }
                    }
                    Err(_) => None,
                };
                match solved {
                    Some((x, _)) => {
                        ws.stats.iterative_solves += 1;
                        Ok(x)
                    }
                    None => {
                        ws.stats.direct_fallbacks += 1;
                        ws.solve_direct(jac, rhs)
                    }
                }
            }
            LinearSolver::GmresBlockJacobi {
                block_size,
                rtol,
                restart,
                max_iters,
            } => {
                let opts = GmresOptions {
                    rtol: *rtol,
                    restart: *restart,
                    max_iters: *max_iters,
                    ..Default::default()
                };
                let x0 = vec![0.0; rhs.len()];
                let solved = match ws.block_jacobi_ready(jac, *block_size) {
                    Ok(()) => {
                        let csr = ws.csr.as_ref().expect("assembled by block_jacobi_ready");
                        let pre = ws
                            .block_jacobi
                            .as_ref()
                            .expect("refreshed by block_jacobi_ready");
                        match gmres_budgeted(csr, pre, rhs, &x0, opts, budget) {
                            Ok(pair) => Some(pair),
                            Err(NumericsError::Interrupted(i)) => return Err(i.into()),
                            Err(_) => None,
                        }
                    }
                    Err(_) => None,
                };
                match solved {
                    Some((x, _)) => {
                        ws.stats.iterative_solves += 1;
                        Ok(x)
                    }
                    None => {
                        ws.stats.direct_fallbacks += 1;
                        ws.solve_direct(jac, rhs)
                    }
                }
            }
        }
    }
}

/// Counters describing how much structural work a
/// [`LinearSolverWorkspace`] avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Full factorisations (ordering + symbolic reach + pivot search).
    pub full_factorizations: usize,
    /// Numeric-only refactorisations through the cached symbolic structure.
    pub refactorizations: usize,
    /// Refactorisations carried by the parallel column pipeline
    /// ([`RefactorStrategy::Parallel`]); a subset of `refactorizations`.
    pub parallel_refactorizations: usize,
    /// KLU-style in-pattern pivot exchanges performed by restricted
    /// pivoting — operating-point jumps that would previously have cost a
    /// full re-factorisation each.
    pub pivot_exchanges: usize,
    /// Refactorisations that found no admissible in-pattern pivot and fell
    /// back to a full factorisation (also counted in
    /// `full_factorizations`).
    pub full_fallbacks: usize,
    /// Times the assembly slot maps had to be (re)built because the stamp
    /// sequence changed (once per structure in the steady state).
    pub pattern_rebuilds: usize,
    /// Chord (modified-Newton) solves reusing the last factors outright.
    pub cached_solves: usize,
    /// Successful preconditioned-Krylov solves.
    pub iterative_solves: usize,
    /// Krylov breakdowns recovered by the shared direct path.
    pub direct_fallbacks: usize,
    /// In-place numeric refreshes of a cached ILU(0)/block-Jacobi
    /// preconditioner over its existing pattern (no allocation).
    pub precond_refreshes: usize,
    /// Preconditioner refreshes carried by the pooled block-parallel path
    /// ([`RefactorStrategy::Parallel`]); a subset of `precond_refreshes`.
    pub parallel_precond_refreshes: usize,
    /// Preconditioner (re)builds from scratch (first use, structural
    /// change, or recovery from a refresh breakdown).
    pub precond_rebuilds: usize,
    /// Whole sub-jobs served from the sweep engine's solution memo
    /// without running Newton at all (see `rfsim_rf::sweep::SweepEngine`).
    /// Counted here so the memo's effect rolls up through the same
    /// [`WorkspaceCache::solver_stats`] channel as every other reuse
    /// counter.
    pub engine_memo_hits: usize,
    /// Memo-eligible sub-jobs that missed the solution memo and paid a
    /// full sweep (jobs without a memo token are not counted).
    pub engine_memo_misses: usize,
    /// Recovery-ladder rungs attempted by a
    /// [`NewtonDriver`](crate::driver::NewtonDriver) solve (a one-rung
    /// solve that converges first try counts 1).
    pub rung_attempts: usize,
    /// Rungs that produced the accepted solution (one per successful
    /// driver solve; `rung_attempts − rung_successes` is the recovery
    /// work the ladder absorbed).
    pub rung_successes: usize,
}

impl WorkspaceStats {
    /// Adds `other`'s counters into `self` — the aggregation
    /// [`WorkspaceCache::solver_stats`] and the sweep engine use to roll
    /// per-workspace counters up to batch level.
    pub fn absorb(&mut self, other: &WorkspaceStats) {
        let WorkspaceStats {
            full_factorizations,
            refactorizations,
            parallel_refactorizations,
            pivot_exchanges,
            full_fallbacks,
            pattern_rebuilds,
            cached_solves,
            iterative_solves,
            direct_fallbacks,
            precond_refreshes,
            parallel_precond_refreshes,
            precond_rebuilds,
            engine_memo_hits,
            engine_memo_misses,
            rung_attempts,
            rung_successes,
        } = other;
        self.full_factorizations += full_factorizations;
        self.refactorizations += refactorizations;
        self.parallel_refactorizations += parallel_refactorizations;
        self.pivot_exchanges += pivot_exchanges;
        self.full_fallbacks += full_fallbacks;
        self.pattern_rebuilds += pattern_rebuilds;
        self.cached_solves += cached_solves;
        self.iterative_solves += iterative_solves;
        self.direct_fallbacks += direct_fallbacks;
        self.precond_refreshes += precond_refreshes;
        self.parallel_precond_refreshes += parallel_precond_refreshes;
        self.precond_rebuilds += precond_rebuilds;
        self.engine_memo_hits += engine_memo_hits;
        self.engine_memo_misses += engine_memo_misses;
        self.rung_attempts += rung_attempts;
        self.rung_successes += rung_successes;
    }
}

/// Reusable linear-solver state for Newton iterations over a fixed-pattern
/// Jacobian.
///
/// Owns the cached triplet→CSC/CSR slot maps, the in-place-assembled
/// matrices, and the sparse LU factors whose symbolic structure is reused
/// by numeric-only refactorisation. Safe for *any* sequence of systems: a
/// structural change is detected (the slot map verifies every stamp
/// position, the factor stores and compares the exact pattern) and
/// answered by a
/// transparent rebuild rather than a wrong solve.
#[derive(Debug, Default)]
pub struct LinearSolverWorkspace {
    csc_assembly: Option<CscAssembly>,
    csc: Option<CscMatrix>,
    lu: Option<SparseLu>,
    csr_assembly: Option<CsrAssembly>,
    csr: Option<CsrMatrix>,
    /// Cached ILU(0) preconditioner, refreshed in place per solve while
    /// the CSR pattern holds.
    ilu: Option<Ilu0>,
    /// Cached block-Jacobi preconditioner, refreshed in place per solve
    /// while the dimensions and block size hold.
    block_jacobi: Option<BlockJacobiPrecond>,
    /// How direct refactorisations run (sequential or pooled).
    refactor_strategy: RefactorStrategy,
    /// Reuse counters (diagnostics; cheap to read, never reset internally).
    pub stats: WorkspaceStats,
}

impl LinearSolverWorkspace {
    /// Creates an empty workspace; caches fill in on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty workspace running direct refactorisations under
    /// `strategy`.
    pub fn with_strategy(strategy: RefactorStrategy) -> Self {
        LinearSolverWorkspace {
            refactor_strategy: strategy,
            ..Default::default()
        }
    }

    /// Replaces the refactorisation strategy (cached factors and
    /// preconditioners are kept — the strategy only changes how the next
    /// numeric refresh is scheduled).
    pub fn set_refactor_strategy(&mut self, strategy: RefactorStrategy) {
        self.refactor_strategy = strategy;
    }

    /// The current refactorisation strategy.
    pub fn refactor_strategy(&self) -> &RefactorStrategy {
        &self.refactor_strategy
    }

    /// Assembles `jac` into the cached CSC matrix through the slot map,
    /// rebuilding both on structural change.
    fn assemble_csc(&mut self, jac: &Triplets) -> &CscMatrix {
        if CscAssembly::assemble_cached(&mut self.csc_assembly, &mut self.csc, jac) {
            self.stats.pattern_rebuilds += 1;
            // The factor's symbolic structure describes the old pattern.
            self.lu = None;
        }
        self.csc.as_ref().expect("assembled above")
    }

    /// Assembles `jac` into the cached CSR matrix (Krylov path: matvecs and
    /// preconditioner construction), rebuilding on structural change.
    fn assemble_csr(&mut self, jac: &Triplets) -> &CsrMatrix {
        if CsrAssembly::assemble_cached(&mut self.csr_assembly, &mut self.csr, jac) {
            self.stats.pattern_rebuilds += 1;
            // Cached preconditioners describe the old pattern.
            self.ilu = None;
            self.block_jacobi = None;
        }
        self.csr.as_ref().expect("assembled above")
    }

    /// Assembles `jac` and brings the cached ILU(0) preconditioner up to
    /// date with it: an in-place numeric refresh while the pattern holds,
    /// a rebuild otherwise.
    ///
    /// # Errors
    ///
    /// Propagates ILU(0) breakdown (structurally missing diagonal or zero
    /// pivot); the caller falls back to the direct path.
    fn ilu_ready(&mut self, jac: &Triplets) -> Result<()> {
        self.assemble_csr(jac);
        let csr = self.csr.as_ref().expect("assembled above");
        match &mut self.ilu {
            Some(ilu) if ilu.same_pattern(csr) => {
                if let Err(e) = ilu.refactor_in_place(csr) {
                    // Breakdown leaves unspecified values: drop the cache
                    // so the next attempt rebuilds.
                    self.ilu = None;
                    return Err(e.into());
                }
                self.stats.precond_refreshes += 1;
            }
            _ => {
                self.ilu = Some(Ilu0::new(csr)?);
                self.stats.precond_rebuilds += 1;
            }
        }
        Ok(())
    }

    /// Assembles `jac` and brings the cached block-Jacobi preconditioner
    /// up to date with it (in-place refresh while dimensions and block
    /// size hold, rebuild otherwise).
    ///
    /// # Errors
    ///
    /// Propagates a singular diagonal block; the caller falls back to the
    /// direct path.
    fn block_jacobi_ready(&mut self, jac: &Triplets, block_size: usize) -> Result<()> {
        self.assemble_csr(jac);
        let csr = self.csr.as_ref().expect("assembled above");
        match &mut self.block_jacobi {
            Some(bj) if bj.block_size() == block_size && bj.matches(csr) => {
                // The blocks are embarrassingly parallel, so the refresh
                // follows the workspace's refactor strategy the same way
                // the direct LU path does (bit-identical either way).
                let refreshed = match &self.refactor_strategy {
                    RefactorStrategy::Sequential => bj.refactor_in_place(csr).map(|()| false),
                    RefactorStrategy::Parallel(pool) => bj.refactor_in_place_parallel(csr, pool),
                };
                match refreshed {
                    Err(e) => {
                        self.block_jacobi = None;
                        return Err(e.into());
                    }
                    Ok(pooled) => {
                        self.stats.precond_refreshes += 1;
                        if pooled {
                            self.stats.parallel_precond_refreshes += 1;
                        }
                    }
                }
            }
            _ => {
                self.block_jacobi = Some(BlockJacobiPrecond::new(csr, block_size)?);
                self.stats.precond_rebuilds += 1;
            }
        }
        Ok(())
    }

    /// The shared direct-LU path: in-place assembly, numeric-only
    /// refactorisation when the cached symbolic structure still applies
    /// (restricted pivoting repairs vanished pivots in-pattern; the
    /// strategy decides sequential vs pooled execution), full
    /// factorisation otherwise. Used by [`LinearSolver::Direct`] and as
    /// the fallback of both Krylov configurations.
    fn solve_direct(&mut self, jac: &Triplets, rhs: &[f64]) -> Result<Vec<f64>> {
        self.assemble_csc(jac);
        let csc = self.csc.as_ref().expect("assembled above");
        match &mut self.lu {
            Some(lu) => {
                let refreshed = match &self.refactor_strategy {
                    RefactorStrategy::Sequential => lu.refactor_in_place(csc),
                    RefactorStrategy::Parallel(pool) => lu.refactor_in_place_parallel(csc, pool),
                };
                match refreshed {
                    Ok(report) => {
                        self.stats.refactorizations += 1;
                        self.stats.pivot_exchanges += report.pivot_exchanges;
                        if report.parallel {
                            self.stats.parallel_refactorizations += 1;
                        }
                    }
                    Err(_) => {
                        // No admissible in-pattern pivot (or stale
                        // structure): fall back to a full factorisation,
                        // free to repivot.
                        *lu = SparseLu::factor(csc, LuOptions::default())?;
                        self.stats.full_factorizations += 1;
                        self.stats.full_fallbacks += 1;
                    }
                }
            }
            None => {
                self.lu = Some(SparseLu::factor(csc, LuOptions::default())?);
                self.stats.full_factorizations += 1;
            }
        }
        Ok(self.lu.as_ref().expect("factored above").solve(rhs))
    }

    /// Solves against the *last* factorisation without refactoring
    /// (chord/modified-Newton steps). `None` if nothing is factored yet.
    fn solve_cached(&mut self, rhs: &[f64]) -> Option<Vec<f64>> {
        let lu = self.lu.as_ref()?;
        self.stats.cached_solves += 1;
        Some(lu.solve(rhs))
    }

    /// Whether a direct factorisation is available for chord reuse.
    pub fn has_factors(&self) -> bool {
        self.lu.is_some()
    }

    /// Fingerprint of the CSC Jacobian pattern this workspace is currently
    /// tuned to, or `None` before its first direct assembly. Equal to the
    /// fingerprint of the matrices it was fed, so a caller can verify that
    /// a workspace checked out of a [`WorkspaceCache`] really did warm up
    /// on the structure it is about to solve.
    pub fn pattern_fingerprint(&self) -> Option<PatternFingerprint> {
        self.csc_assembly
            .as_ref()
            .map(CscAssembly::pattern_fingerprint)
    }
}

/// A pool of [`LinearSolverWorkspace`]s keyed by sparsity-pattern
/// fingerprint, so batches of solves over *mixed* Jacobian structures each
/// reuse a workspace warmed on their own structure instead of thrashing a
/// single workspace through rebuild after rebuild.
///
/// The cache is a check-out / check-in pool rather than a map of borrows:
/// [`WorkspaceCache::checkout`] removes a workspace (or creates a fresh one
/// on a miss) and [`WorkspaceCache::checkin`] returns it after use, which
/// lets several workers hold same-fingerprint workspaces concurrently while
/// the cache itself sits behind one brief lock. A checked-in workspace is
/// keyed by [`LinearSolverWorkspace::pattern_fingerprint`]; callers pass
/// the key they routed by, and a workspace whose actual structure diverged
/// (e.g. its last solve re-keyed it) is simply stored under its real key.
///
/// Fingerprints are routing keys, not correctness guarantees — the
/// workspace itself still verifies every stamp position and the factor's
/// stored pattern, so a colliding key costs one transparent rebuild, never
/// a wrong solve (see [`PatternFingerprint`]).
///
/// Parked workspaces hold full LU factors, so a long-lived cache fed an
/// unbounded stream of distinct structures would grow without limit; the
/// pool therefore holds at most [`WorkspaceCache::capacity`] workspaces
/// (default [`WorkspaceCache::DEFAULT_CAPACITY`]) and a check-in beyond
/// that simply drops the incoming workspace — the next checkout of its
/// pattern rebuilds, it never solves wrong.
#[derive(Debug)]
pub struct WorkspaceCache {
    pool: std::collections::HashMap<PatternFingerprint, Vec<LinearSolverWorkspace>>,
    capacity: usize,
    /// Solver counters inherited from workspaces the cache has dropped
    /// (capacity overflow or [`WorkspaceCache::clear`]), so
    /// [`WorkspaceCache::solver_stats`] never loses history.
    absorbed: WorkspaceStats,
    /// Checkouts that found a warmed workspace.
    pub hits: usize,
    /// Checkouts that had to create a fresh workspace.
    pub misses: usize,
}

impl Default for WorkspaceCache {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl WorkspaceCache {
    /// Default bound on parked workspaces: comfortably above any realistic
    /// concurrent-topology count while capping worst-case retention.
    pub const DEFAULT_CAPACITY: usize = 64;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache parking at most `capacity` workspaces
    /// (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        WorkspaceCache {
            pool: std::collections::HashMap::new(),
            capacity: capacity.max(1),
            absorbed: WorkspaceStats::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of workspaces the pool will retain.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Takes a workspace warmed on `key`'s structure out of the pool, or
    /// returns a fresh one when none is available.
    pub fn checkout(&mut self, key: PatternFingerprint) -> LinearSolverWorkspace {
        let popped = match self.pool.get_mut(&key) {
            Some(parked) => {
                let ws = parked.pop();
                if parked.is_empty() {
                    // Keep the map from accumulating empty entries over a
                    // long-lived cache's lifetime.
                    self.pool.remove(&key);
                }
                ws
            }
            None => None,
        };
        match popped {
            Some(ws) => {
                self.hits += 1;
                ws
            }
            None => {
                self.misses += 1;
                LinearSolverWorkspace::new()
            }
        }
    }

    /// Returns a workspace to the pool under the structure it actually
    /// holds (falling back to `key` for a never-used workspace). A full
    /// pool (see [`WorkspaceCache::capacity`]) drops the workspace instead.
    pub fn checkin(&mut self, key: PatternFingerprint, ws: LinearSolverWorkspace) {
        if self.len() >= self.capacity {
            self.absorbed.absorb(&ws.stats);
            return;
        }
        let actual = ws.pattern_fingerprint().unwrap_or(key);
        self.pool.entry(actual).or_default().push(ws);
    }

    /// Number of workspaces currently parked in the pool.
    pub fn len(&self) -> usize {
        self.pool.values().map(Vec::len).sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct fingerprints with parked workspaces.
    pub fn num_patterns(&self) -> usize {
        self.pool.values().filter(|v| !v.is_empty()).count()
    }

    /// Aggregated solver counters across every workspace this cache has
    /// seen: the currently parked ones plus everything absorbed from
    /// dropped workspaces. Workspaces currently checked out report here
    /// once they are checked back in.
    pub fn solver_stats(&self) -> WorkspaceStats {
        let mut total = self.absorbed;
        for ws in self.pool.values().flatten() {
            total.absorb(&ws.stats);
        }
        total
    }

    /// Folds externally accumulated counters into this cache's history —
    /// how the sweep engine's determinism mode (which solves on private
    /// throwaway caches) still reports its solver work through
    /// [`WorkspaceCache::solver_stats`].
    pub fn absorb_stats(&mut self, stats: &WorkspaceStats) {
        self.absorbed.absorb(stats);
    }

    /// Drops all parked workspaces (counters are kept — their solver
    /// stats fold into [`WorkspaceCache::solver_stats`]).
    pub fn clear(&mut self) {
        for (_, parked) in self.pool.drain() {
            for ws in parked {
                self.absorbed.absorb(&ws.stats);
            }
        }
    }
}

/// A nonlinear algebraic system `F(x) = 0` with a sparse Jacobian.
pub trait NewtonSystem {
    /// Problem dimension.
    fn dim(&self) -> usize;

    /// Evaluates `F(x)` into `out`.
    fn residual(&self, x: &[f64], out: &mut [f64]);

    /// Evaluates `F(x)` into `out` and its Jacobian into `jac`
    /// (`jac` arrives empty).
    fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets);
}

/// Options for [`newton_solve`].
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Maximum Newton iterations.
    pub max_iters: usize,
    /// Relative tolerance on the update.
    pub reltol: f64,
    /// Absolute tolerance for voltage-like unknowns (volts).
    pub abstol_v: f64,
    /// Absolute tolerance for current-like unknowns (amperes).
    pub abstol_i: f64,
    /// Smallest damping factor tried before declaring failure of the
    /// line search (the full step is still taken if the residual grows
    /// more slowly than this guard).
    pub min_damping: f64,
    /// Residual must also drop below `residual_tol` (∞-norm guard against
    /// converging updates on a stagnated residual). Set generously.
    pub residual_tol: f64,
    /// Linear-solver strategy for the Newton updates.
    pub linear: LinearSolver,
    /// Chord (modified-Newton) steps: after each fresh Jacobian
    /// factorisation, reuse the factors for up to this many further
    /// iterations. Convergence is only declared on a fresh-Jacobian step,
    /// so accuracy is unaffected; large sparse systems (the MPDE grids)
    /// typically gain 2–3× wall clock. Only applies to
    /// [`LinearSolver::Direct`].
    pub jacobian_reuse: usize,
    /// Per-iteration clamp on voltage-unknown updates (volts). Plays the
    /// role of SPICE's junction limiting: exponential devices (diode, BJT)
    /// otherwise provoke multi-hundred-volt Newton overshoots whose
    /// backtracked steps cycle without converging. Applied per component
    /// before the line search; current unknowns are not clamped.
    pub max_voltage_step: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iters: 100,
            reltol: 1e-3,
            abstol_v: 1e-6,
            abstol_i: 1e-9,
            min_damping: 1.0 / 1024.0,
            residual_tol: 1e-6,
            linear: LinearSolver::Direct,
            jacobian_reuse: 0,
            max_voltage_step: 2.0,
        }
    }
}

/// Statistics from a Newton solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonStats {
    /// Newton iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether damping was ever engaged.
    pub damped: bool,
}

/// Solves `F(x) = 0` by damped Newton with sparse LU linear solves.
///
/// `kinds` selects the absolute tolerance per unknown; pass an empty slice
/// to treat every unknown as voltage-like.
///
/// # Errors
///
/// * [`CircuitError::ConvergenceFailure`] if the iteration budget is
///   exhausted.
/// * [`CircuitError::Diverged`] if every damping trial of some step
///   produces a non-finite residual — the iterate is left untouched and
///   the error returns immediately, never after `max_iters` of NaN.
/// * [`CircuitError::Numerics`] if the Jacobian is singular.
pub fn newton_solve<S: NewtonSystem>(
    system: &S,
    x0: &[f64],
    kinds: &[UnknownKind],
    options: NewtonOptions,
) -> Result<(Vec<f64>, NewtonStats)> {
    let mut workspace = LinearSolverWorkspace::new();
    newton_solve_with_workspace(system, x0, kinds, options, &mut workspace)
}

/// [`newton_solve`] with caller-owned linear-solver state.
///
/// Passing the same [`LinearSolverWorkspace`] to a sequence of solves over
/// the same circuit structure (transient timesteps, gmin/source-stepping
/// rungs, continuation steps, shooting sweeps) reuses the assembly slot
/// maps and the symbolic LU across *all* of them: after the very first
/// iteration of the first solve, every direct linear solve is a numeric
/// refactorisation.
///
/// # Errors
///
/// Same contract as [`newton_solve`].
pub fn newton_solve_with_workspace<S: NewtonSystem>(
    system: &S,
    x0: &[f64],
    kinds: &[UnknownKind],
    options: NewtonOptions,
    workspace: &mut LinearSolverWorkspace,
) -> Result<(Vec<f64>, NewtonStats)> {
    newton_solve_budgeted(
        system,
        x0,
        kinds,
        options,
        workspace,
        &SolveBudget::unlimited(),
    )
}

/// [`newton_solve_with_workspace`] under a [`SolveBudget`] — the solve
/// control plane's entry into the Newton core.
///
/// The budget is polled cooperatively: at the top of every iteration, at
/// every damping (line-search) trial, and — through
/// [`rfsim_numerics::krylov::gmres_budgeted`] — inside the Krylov inner
/// loops of the iterative linear solvers, so cancellation latency is
/// bounded by one residual evaluation or one matvec, not one full solve.
/// The budget's stagnation guard watches the *accepted* residual per
/// iteration (best-residual plateau), catching both flat plateaus and
/// oscillating iterates long before `max_iters` burns down; it never
/// fires once the residual is below `options.residual_tol`, where the
/// built-in stagnation-acceptance rule takes over.
///
/// Interruption is a clean exit: the workspace keeps its cached
/// structure and factors and checks back into any [`WorkspaceCache`]
/// fully reusable.
///
/// # Errors
///
/// [`CircuitError::Interrupted`] when the budget fires, plus everything
/// [`newton_solve`] returns.
pub fn newton_solve_budgeted<S: NewtonSystem>(
    system: &S,
    x0: &[f64],
    kinds: &[UnknownKind],
    options: NewtonOptions,
    workspace: &mut LinearSolverWorkspace,
    budget: &SolveBudget,
) -> Result<(Vec<f64>, NewtonStats)> {
    let mut meter = budget.meter();
    let n = system.dim();
    let mut x = x0.to_vec();
    let mut residual = vec![0.0; n];
    let mut trial = vec![0.0; n];
    let mut trial_res = vec![0.0; n];
    let mut jac = Triplets::with_capacity(n, n, 16 * n);
    let mut damped = false;
    let mut stagnant = 0usize;
    let mut prev_norm = f64::INFINITY;

    // Chord (modified-Newton) state: how many more iterations may reuse
    // the workspace's last factorisation outright.
    let chord_enabled = options.jacobian_reuse > 0 && options.linear == LinearSolver::Direct;
    let mut chord_left = 0usize;

    system.residual(&x, &mut residual);
    let mut res_norm = norm2(&residual);

    for iter in 1..=options.max_iters {
        meter.check()?;
        let fresh = !(chord_enabled && chord_left > 0 && workspace.has_factors());
        if fresh {
            jac.clear();
            system.residual_and_jacobian(&x, &mut residual, &mut jac);
            if chord_enabled {
                chord_left = options.jacobian_reuse;
            }
        } else {
            system.residual(&x, &mut residual);
            chord_left -= 1;
        }
        res_norm = norm2(&residual);

        // Newton step: J·dx = −F.
        let neg_f: Vec<f64> = residual.iter().map(|v| -v).collect();
        let mut dx = if fresh {
            match options.linear.solve_with(workspace, &jac, &neg_f, budget) {
                Ok(dx) => dx,
                // Re-stamp an inner-loop interruption with outer
                // (Newton-level) iteration context before reporting.
                Err(CircuitError::Interrupted(i)) => return Err(meter.interrupt(i.reason).into()),
                Err(e) => return Err(e),
            }
        } else {
            // The fresh-step decision above checked `has_factors()`, but a
            // missing factorisation here must degrade to a typed error,
            // not a panic: a rung transition or interrupt handler that
            // cleared the workspace between iterations would otherwise
            // take the whole scheduler thread down with it.
            chord_solve(workspace, &neg_f)?
        };
        // Voltage-update limiting (junction limiting): clamp per component
        // so one over-eager exponential cannot poison the whole step.
        if options.max_voltage_step.is_finite() && !kinds.is_empty() {
            let lim = options.max_voltage_step;
            for (d, kind) in dx.iter_mut().zip(kinds) {
                if *kind == UnknownKind::NodeVoltage {
                    *d = d.clamp(-lim, lim);
                }
            }
        }

        // Damped backtracking line search on the residual norm. We halve far
        // below `min_damping` if necessary (stiff exponentials can demand
        // microscopic first steps); `min_damping` only gates what counts as
        // an *undamped* step for the convergence test below.
        let mut alpha: f64 = 1.0;
        let mut accepted = false;
        let mut best: Option<(f64, f64)> = None; // (alpha, norm)
        while alpha >= 1e-15 {
            for i in 0..n {
                trial[i] = x[i] + alpha * dx[i];
            }
            system.residual(&trial, &mut trial_res);
            let trial_norm = norm2(&trial_res);
            if trial_norm.is_finite() {
                if trial_norm < res_norm || trial_norm < options.residual_tol {
                    accepted = true;
                    break;
                }
                if best.is_none_or(|(_, bn)| trial_norm < bn) {
                    best = Some((alpha, trial_norm));
                }
            }
            alpha *= 0.5;
            damped = true;
            // Damping trials each cost a residual evaluation — on big
            // grid systems that is where a hung solve spends its time,
            // so cancellation is polled per trial.
            meter.check()?;
        }
        if !accepted {
            if !fresh {
                // A stale-Jacobian step failed its line search: discard it
                // and refactor next iteration instead of limping forward.
                chord_left = 0;
                continue;
            }
            // No improving step found: take the least-bad *finite* trial
            // to keep moving (Newton sometimes must climb a residual
            // ridge). If every trial residual was non-finite there is no
            // such trial — committing one anyway would overwrite `x` with
            // a NaN/Inf iterate that the stagnation counter cannot see
            // (`NaN >= anything` is false, so it resets every iteration)
            // and the solve would burn the rest of `max_iters` at NaN.
            // That is divergence: report it as the typed ladder signal.
            let Some((best_alpha, _)) = best else {
                return Err(CircuitError::Diverged {
                    analysis: "newton".into(),
                    iterations: iter,
                    best_residual: if res_norm.is_finite() {
                        res_norm.min(meter.best_residual())
                    } else {
                        meter.best_residual()
                    },
                });
            };
            alpha = best_alpha;
            for i in 0..n {
                trial[i] = x[i] + alpha * dx[i];
            }
            system.residual(&trial, &mut trial_res);
            damped = true;
        }
        x.copy_from_slice(&trial);
        res_norm = norm2(&trial_res);

        // Convergence: weighted update norm ≤ 1, and either the step was
        // essentially undamped (quadratic regime) or the residual itself is
        // small. A heavily damped tiny step must not masquerade as
        // convergence.
        let scaled_dx: Vec<f64> = dx.iter().map(|d| alpha * d).collect();
        let ratio = weighted_update_ratio(&scaled_dx, &x, kinds, &options);
        // Stagnation at the linear-solver noise floor: if the residual sits
        // below `residual_tol` and stops improving, the update criterion can
        // chatter forever on ill-scaled unknowns — accept.
        if res_norm >= 0.999 * prev_norm {
            stagnant += 1;
        } else {
            stagnant = 0;
        }
        prev_norm = res_norm;
        let stagnated_converged = stagnant >= 3 && res_norm <= options.residual_tol;
        let would_converge = stagnated_converged
            || (ratio <= 1.0
                && res_norm.is_finite()
                && (alpha >= 0.99 || res_norm <= options.residual_tol));
        if would_converge {
            if fresh || res_norm <= options.residual_tol {
                return Ok((
                    x,
                    NewtonStats {
                        iterations: iter,
                        residual: res_norm,
                        damped,
                    },
                ));
            }
            // A chord step looks converged: confirm with a fresh Jacobian.
            chord_left = 0;
        }
        if let Err(i) = meter.note_iteration(res_norm) {
            // At the noise floor the built-in stagnation-acceptance rule
            // above owns the plateau; the guard only kills solves that
            // plateau *above* tolerance.
            if i.reason != rfsim_numerics::InterruptReason::Stagnated
                || res_norm > options.residual_tol
            {
                return Err(i.into());
            }
        }
    }
    Err(CircuitError::ConvergenceFailure {
        analysis: "newton".into(),
        iterations: options.max_iters,
        residual: res_norm,
    })
}

/// A chord (modified-Newton) linear solve through the workspace's cached
/// factors, as a typed error rather than a panic when the factors are
/// gone. Unreachable in today's single-threaded iteration (the fresh-step
/// decision pre-checks [`LinearSolverWorkspace::has_factors`]), but the
/// failure mode must stay an error: the serve scheduler treats a panic as
/// a bug, not weather.
fn chord_solve(workspace: &mut LinearSolverWorkspace, neg_f: &[f64]) -> Result<Vec<f64>> {
    workspace
        .solve_cached(neg_f)
        .ok_or_else(|| CircuitError::Structural {
            context: "chord step requested but the workspace holds no cached factors \
                      (cleared between the reuse decision and the solve)"
                .into(),
        })
}

/// Weighted update ratio with per-kind absolute tolerances.
///
/// Contract: `kinds` is either empty — every unknown is then judged
/// against the *voltage* tolerance `abstol_v`, which is only correct for
/// systems with no branch-current unknowns (scalar test systems, pure
/// nodal reductions) — or it names every unknown. All production
/// backends thread real kinds (`Circuit::unknown_kinds` et al.); the
/// empty-slice path exists for kind-less callers that own that
/// trade-off.
fn weighted_update_ratio(
    dx: &[f64],
    x: &[f64],
    kinds: &[UnknownKind],
    options: &NewtonOptions,
) -> f64 {
    debug_assert!(
        kinds.is_empty() || kinds.len() == dx.len(),
        "kinds must be empty (all-voltage tolerances) or cover every unknown \
         ({} kinds for {} unknowns)",
        kinds.len(),
        dx.len()
    );
    if kinds.is_empty() {
        return wrms_ratio(dx, x, options.reltol, options.abstol_v);
    }
    dx.iter()
        .zip(x)
        .zip(kinds)
        .map(|((&d, &xi), kind)| {
            let abstol = match kind {
                UnknownKind::NodeVoltage => options.abstol_v,
                UnknownKind::BranchCurrent => options.abstol_i,
            };
            d.abs() / (options.reltol * xi.abs() + abstol)
        })
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar test system: x² − 4 = 0.
    struct Quadratic;

    impl NewtonSystem for Quadratic {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] * x[0] - 4.0;
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 2.0 * x[0]);
        }
    }

    /// 2-D Rosenbrock-gradient-like system with coupling.
    struct Coupled;

    impl NewtonSystem for Coupled {
        fn dim(&self) -> usize {
            2
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[0] + x[1] - 3.0;
            out[1] = x[0] * x[1] - 2.0;
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 1.0);
            jac.push(0, 1, 1.0);
            jac.push(1, 0, x[1]);
            jac.push(1, 1, x[0]);
        }
    }

    #[test]
    fn solves_quadratic() {
        let (x, stats) =
            newton_solve(&Quadratic, &[3.0], &[], NewtonOptions::default()).expect("newton");
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!(stats.iterations < 10);
    }

    #[test]
    fn solves_coupled_system() {
        let (x, _) =
            newton_solve(&Coupled, &[2.5, 0.1], &[], NewtonOptions::default()).expect("newton");
        // Roots: (1, 2) or (2, 1). The update-based convergence criterion
        // guarantees ~reltol·|x| accuracy, not machine precision.
        let ok = (x[0] - 1.0).abs() < 1e-4 && (x[1] - 2.0).abs() < 1e-4
            || (x[0] - 2.0).abs() < 1e-4 && (x[1] - 1.0).abs() < 1e-4;
        assert!(ok, "got {x:?}");
    }

    #[test]
    fn quadratic_convergence_rate() {
        // From a good starting point, Newton on x²−4 should converge in
        // very few iterations.
        let (_, stats) =
            newton_solve(&Quadratic, &[2.1], &[], NewtonOptions::default()).expect("newton");
        assert!(stats.iterations <= 4, "iterations = {}", stats.iterations);
        assert!(!stats.damped);
    }

    #[test]
    fn iteration_budget_enforced() {
        let opts = NewtonOptions {
            max_iters: 1,
            reltol: 1e-15,
            abstol_v: 1e-18,
            ..Default::default()
        };
        assert!(matches!(
            newton_solve(&Quadratic, &[100.0], &[], opts),
            Err(CircuitError::ConvergenceFailure { .. })
        ));
    }

    /// Finite residual only at the starting point: every damping trial,
    /// however small the step, lands on NaN. The old fallback committed
    /// the `min_damping` trial anyway, poisoning `x` and burning
    /// `max_iters` at NaN (the stagnation counter cannot fire on NaN).
    struct NaNRidge;

    impl NewtonSystem for NaNRidge {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = if x[0] == 0.0 { 1.0 } else { f64::NAN };
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 1.0);
        }
    }

    #[test]
    fn non_finite_damping_trials_return_typed_divergence() {
        let err = newton_solve(&NaNRidge, &[0.0], &[], NewtonOptions::default())
            .expect_err("no finite step exists");
        match err {
            CircuitError::Diverged {
                analysis,
                iterations,
                best_residual,
            } => {
                assert_eq!(analysis, "newton");
                // Detected the moment the line search exhausts — far
                // inside the iteration budget, not after max_iters of NaN.
                assert_eq!(iterations, 1);
                assert!(
                    iterations < NewtonOptions::default().max_iters,
                    "divergence must not burn the whole budget"
                );
                // No finite residual was ever accepted.
                assert!(best_residual.is_infinite() || best_residual == 1.0);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn divergence_does_not_commit_nan_iterate() {
        // Run through the workspace wrapper too, and assert the error is
        // recoverable (ladder fuel), not an interruption.
        let mut ws = LinearSolverWorkspace::new();
        let err =
            newton_solve_with_workspace(&NaNRidge, &[0.0], &[], NewtonOptions::default(), &mut ws)
                .expect_err("diverges");
        assert!(err.is_recoverable());
        assert!(!err.is_interrupted());
    }

    #[test]
    fn chord_solve_without_factors_is_a_typed_error() {
        let mut ws = LinearSolverWorkspace::new();
        assert!(!ws.has_factors());
        let err = chord_solve(&mut ws, &[1.0]).expect_err("no factors cached");
        assert!(
            matches!(err, CircuitError::Structural { .. }),
            "got {err:?}"
        );
        assert!(
            !err.is_recoverable(),
            "a cleared workspace is a bug, not weather"
        );
    }

    #[test]
    fn damping_rescues_overshoot() {
        // Steep exponential-style system where a full Newton step overshoots.
        struct Exponential;
        impl NewtonSystem for Exponential {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].clamp(-700.0, 700.0).exp() - 1.0;
            }
            fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
                self.residual(x, out);
                jac.push(0, 0, x[0].clamp(-700.0, 700.0).exp());
            }
        }
        let (x, _) =
            newton_solve(&Exponential, &[-30.0], &[], NewtonOptions::default()).expect("newton");
        assert!(x[0].abs() < 1e-4, "root of e^x−1 is 0, got {}", x[0]);
    }

    #[test]
    fn chord_newton_matches_full_newton() {
        let full = newton_solve(&Coupled, &[2.5, 0.1], &[], NewtonOptions::default())
            .expect("full newton");
        let chord = newton_solve(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions {
                jacobian_reuse: 3,
                ..Default::default()
            },
        )
        .expect("chord newton");
        assert!((full.0[0] - chord.0[0]).abs() < 1e-4);
        assert!((full.0[1] - chord.0[1]).abs() < 1e-4);
    }

    #[test]
    fn chord_newton_solves_stiff_exponential() {
        struct Exponential;
        impl NewtonSystem for Exponential {
            fn dim(&self) -> usize {
                1
            }
            fn residual(&self, x: &[f64], out: &mut [f64]) {
                out[0] = x[0].clamp(-700.0, 700.0).exp() - 1.0;
            }
            fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
                self.residual(x, out);
                jac.push(0, 0, x[0].clamp(-700.0, 700.0).exp());
            }
        }
        let (x, _) = newton_solve(
            &Exponential,
            &[3.0],
            &[],
            NewtonOptions {
                jacobian_reuse: 4,
                ..Default::default()
            },
        )
        .expect("chord on exponential");
        assert!(x[0].abs() < 1e-4, "got {}", x[0]);
    }

    #[test]
    fn workspace_reuses_symbolic_across_solves() {
        let mut ws = LinearSolverWorkspace::new();
        let (x1, _) = newton_solve_with_workspace(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions::default(),
            &mut ws,
        )
        .expect("first solve");
        // One structural setup, then numeric-only refactorisations.
        assert_eq!(ws.stats.full_factorizations, 1);
        assert_eq!(ws.stats.pattern_rebuilds, 1);
        assert!(ws.stats.refactorizations >= 1);
        let refactors_after_first = ws.stats.refactorizations;
        let (x2, _) = newton_solve_with_workspace(
            &Coupled,
            &[2.0, 0.5],
            &[],
            NewtonOptions::default(),
            &mut ws,
        )
        .expect("second solve");
        assert_eq!(
            ws.stats.full_factorizations, 1,
            "second solve must not redo symbolic work"
        );
        assert_eq!(ws.stats.pattern_rebuilds, 1);
        assert!(ws.stats.refactorizations > refactors_after_first);
        // Both solves land on a root.
        for x in [&x1, &x2] {
            let ok = (x[0] - 1.0).abs() < 1e-3 && (x[1] - 2.0).abs() < 1e-3
                || (x[0] - 2.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3;
            assert!(ok, "got {x:?}");
        }
    }

    #[test]
    fn workspace_chord_counts_cached_solves() {
        let mut ws = LinearSolverWorkspace::new();
        let opts = NewtonOptions {
            jacobian_reuse: 3,
            ..Default::default()
        };
        let (x, _) = newton_solve_with_workspace(&Coupled, &[2.5, 0.1], &[], opts, &mut ws)
            .expect("chord newton");
        let ok = (x[0] - 1.0).abs() < 1e-3 && (x[1] - 2.0).abs() < 1e-3
            || (x[0] - 2.0).abs() < 1e-3 && (x[1] - 1.0).abs() < 1e-3;
        assert!(ok, "got {x:?}");
        assert!(
            ws.stats.cached_solves >= 1,
            "chord steps should reuse factors: {:?}",
            ws.stats
        );
    }

    #[test]
    fn workspace_survives_structural_change() {
        // Solving a different system with the same workspace must rebuild
        // the caches transparently and still converge.
        let mut ws = LinearSolverWorkspace::new();
        newton_solve_with_workspace(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions::default(),
            &mut ws,
        )
        .expect("coupled");
        let (x, _) =
            newton_solve_with_workspace(&Quadratic, &[3.0], &[], NewtonOptions::default(), &mut ws)
                .expect("quadratic after coupled");
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert_eq!(ws.stats.pattern_rebuilds, 2);
        assert_eq!(ws.stats.full_factorizations, 2);
    }

    #[test]
    fn workspace_is_send() {
        // The sweep engine moves checked-out workspaces onto pool workers.
        fn assert_send<T: Send>() {}
        assert_send::<LinearSolverWorkspace>();
        assert_send::<WorkspaceCache>();
    }

    #[test]
    fn workspace_cache_routes_by_fingerprint() {
        // Upfront keys, the way the sweep engine derives them: from the
        // structure of the system about to be solved.
        let probe = |dim: usize| {
            Triplets::new(dim, dim)
                .pattern_fingerprint()
                .mix(dim as u64)
        };
        let mut cache = WorkspaceCache::new();
        // Warm one workspace on each system.
        let mut ws_c = cache.checkout(probe(2));
        newton_solve_with_workspace(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions::default(),
            &mut ws_c,
        )
        .expect("coupled");
        let key_c = ws_c.pattern_fingerprint().expect("warmed");
        let mut ws_q = cache.checkout(probe(1));
        newton_solve_with_workspace(&Quadratic, &[3.0], &[], NewtonOptions::default(), &mut ws_q)
            .expect("quadratic");
        let key_q = ws_q.pattern_fingerprint().expect("warmed");
        assert_ne!(key_c, key_q);
        cache.checkin(key_c, ws_c);
        cache.checkin(key_q, ws_q);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.num_patterns(), 2);

        // Checking out by the right key returns the warmed workspace: the
        // next solve does no structural work at all.
        let mut ws = cache.checkout(key_c);
        assert_eq!(ws.pattern_fingerprint(), Some(key_c));
        let before = ws.stats;
        newton_solve_with_workspace(
            &Coupled,
            &[2.0, 0.5],
            &[],
            NewtonOptions::default(),
            &mut ws,
        )
        .expect("coupled again");
        assert_eq!(ws.stats.pattern_rebuilds, before.pattern_rebuilds);
        assert_eq!(ws.stats.full_factorizations, before.full_factorizations);
        assert!(ws.stats.refactorizations > before.refactorizations);
        cache.checkin(key_c, ws);
        assert_eq!(cache.hits, 1);
        let fresh = cache.checkout(probe(7));
        assert!(fresh.pattern_fingerprint().is_none());
        assert_eq!(cache.misses, 3); // two warmups + the fresh probe
    }

    #[test]
    fn workspace_cache_respects_capacity() {
        let probe = |n: u64| Triplets::new(1, 1).pattern_fingerprint().mix(n);
        let mut cache = WorkspaceCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        for n in 0..5 {
            cache.checkin(probe(n), LinearSolverWorkspace::new());
        }
        // Check-ins beyond the bound are dropped, not parked.
        assert_eq!(cache.len(), 2);
        // Draining a key removes its (now empty) pool entry entirely.
        let _ = cache.checkout(probe(0));
        assert_eq!(cache.num_patterns(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn parallel_strategy_matches_sequential_and_counts() {
        // Width-2 pool: even on a single-core host the pipeline threads
        // run (timeshared), so correctness and counters are testable
        // everywhere; the speedup itself is covered by the multi-core CI
        // job.
        let mut seq_ws = LinearSolverWorkspace::new();
        let (x_seq, _) = newton_solve_with_workspace(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions::default(),
            &mut seq_ws,
        )
        .expect("sequential");
        let mut par_ws =
            LinearSolverWorkspace::with_strategy(RefactorStrategy::Parallel(WorkerPool::new(2)));
        assert!(matches!(
            par_ws.refactor_strategy(),
            RefactorStrategy::Parallel(_)
        ));
        let (x_par, _) = newton_solve_with_workspace(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions::default(),
            &mut par_ws,
        )
        .expect("parallel");
        assert_eq!(x_seq, x_par, "pipeline must be bit-identical");
        assert!(par_ws.stats.refactorizations >= 1);
        assert_eq!(
            par_ws.stats.parallel_refactorizations, par_ws.stats.refactorizations,
            "every refresh of this solve should ride the pipeline"
        );
        assert_eq!(seq_ws.stats.parallel_refactorizations, 0);
        // Strategy can be swapped mid-life without losing the caches.
        par_ws.set_refactor_strategy(RefactorStrategy::Sequential);
        let before = par_ws.stats;
        newton_solve_with_workspace(
            &Coupled,
            &[2.0, 0.5],
            &[],
            NewtonOptions::default(),
            &mut par_ws,
        )
        .expect("after strategy swap");
        assert_eq!(par_ws.stats.full_factorizations, before.full_factorizations);
        assert_eq!(
            par_ws.stats.parallel_refactorizations,
            before.parallel_refactorizations
        );
    }

    #[test]
    fn gmres_ilu0_refreshes_cached_preconditioner() {
        // Two solves over one structure: the first builds the ILU(0)
        // preconditioner, every later iteration refreshes it in place.
        let opts = NewtonOptions {
            linear: LinearSolver::gmres_default(),
            ..Default::default()
        };
        let mut ws = LinearSolverWorkspace::new();
        newton_solve_with_workspace(&Coupled, &[2.5, 0.1], &[], opts, &mut ws).expect("first");
        newton_solve_with_workspace(&Coupled, &[2.0, 0.5], &[], opts, &mut ws).expect("second");
        assert!(ws.stats.iterative_solves >= 2);
        assert_eq!(
            ws.stats.precond_rebuilds, 1,
            "one build, then in-place refreshes: {:?}",
            ws.stats
        );
        assert!(
            ws.stats.precond_refreshes >= 1,
            "later iterations must refresh, not rebuild: {:?}",
            ws.stats
        );
        // A structural change rebuilds the preconditioner transparently.
        newton_solve_with_workspace(&Quadratic, &[3.0], &[], opts, &mut ws)
            .expect("different structure");
        assert_eq!(ws.stats.precond_rebuilds, 2);
    }

    #[test]
    fn gmres_block_jacobi_parallel_refresh_matches_sequential() {
        // block_size 1 on the 2-unknown system gives two independent
        // blocks — enough for the pooled refresh to actually chunk.
        let opts = NewtonOptions {
            linear: LinearSolver::GmresBlockJacobi {
                block_size: 1,
                rtol: 1e-10,
                restart: 20,
                max_iters: 200,
            },
            ..Default::default()
        };
        let mut seq = LinearSolverWorkspace::new();
        let (x_seq, _) = newton_solve_with_workspace(&Coupled, &[2.5, 0.1], &[], opts, &mut seq)
            .expect("sequential");
        newton_solve_with_workspace(&Coupled, &[2.0, 0.5], &[], opts, &mut seq).expect("seq 2");
        let mut par =
            LinearSolverWorkspace::with_strategy(RefactorStrategy::Parallel(WorkerPool::new(2)));
        let (x_par, _) = newton_solve_with_workspace(&Coupled, &[2.5, 0.1], &[], opts, &mut par)
            .expect("parallel");
        newton_solve_with_workspace(&Coupled, &[2.0, 0.5], &[], opts, &mut par).expect("par 2");
        assert_eq!(x_seq, x_par, "block-parallel refresh must be bit-identical");
        assert!(par.stats.precond_refreshes >= 1, "{:?}", par.stats);
        assert_eq!(
            par.stats.parallel_precond_refreshes, par.stats.precond_refreshes,
            "every refresh under the Parallel strategy rides the pool: {:?}",
            par.stats
        );
        assert_eq!(seq.stats.parallel_precond_refreshes, 0);
    }

    #[test]
    fn cache_aggregates_solver_stats_across_workspaces() {
        let probe = |dim: usize| {
            Triplets::new(dim, dim)
                .pattern_fingerprint()
                .mix(dim as u64)
        };
        let mut cache = WorkspaceCache::with_capacity(1);
        let mut ws_a = cache.checkout(probe(2));
        newton_solve_with_workspace(
            &Coupled,
            &[2.5, 0.1],
            &[],
            NewtonOptions::default(),
            &mut ws_a,
        )
        .expect("a");
        let mut ws_b = cache.checkout(probe(1));
        newton_solve_with_workspace(&Quadratic, &[3.0], &[], NewtonOptions::default(), &mut ws_b)
            .expect("b");
        let expect_refactors = ws_a.stats.refactorizations + ws_b.stats.refactorizations;
        let key_a = ws_a.pattern_fingerprint().expect("warmed");
        let key_b = ws_b.pattern_fingerprint().expect("warmed");
        cache.checkin(key_a, ws_a);
        // Capacity 1: the second check-in is dropped, but its counters are
        // absorbed rather than lost.
        cache.checkin(key_b, ws_b);
        assert_eq!(cache.len(), 1);
        let stats = cache.solver_stats();
        assert_eq!(stats.refactorizations, expect_refactors);
        assert_eq!(stats.full_factorizations, 2);
        // Clear folds the parked workspace's counters into the absorbed
        // total as well.
        cache.clear();
        assert_eq!(cache.solver_stats().refactorizations, expect_refactors);
    }

    #[test]
    fn kinds_affect_tolerances() {
        let kinds = [UnknownKind::BranchCurrent];
        let opts = NewtonOptions::default();
        // A 1 µA update on a current unknown is not converged
        // (abstol_i = 1 nA), though it would be for a voltage unknown.
        let ratio_i = weighted_update_ratio(&[1e-6], &[0.0], &kinds, &opts);
        assert!(ratio_i > 1.0);
        let ratio_v = weighted_update_ratio(&[1e-6], &[0.0], &[UnknownKind::NodeVoltage], &opts);
        assert!(ratio_v <= 1.0);
    }

    /// `F(x) = 1` with a unit Jacobian: a perfectly flat residual
    /// plateau far above tolerance. No step helps, no damping trial
    /// helps — only the stagnation guard can end it early.
    struct Plateau;

    impl NewtonSystem for Plateau {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, _x: &[f64], out: &mut [f64]) {
            out[0] = 1.0;
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, 1.0);
        }
    }

    /// A residual that *oscillates* with the iterate instead of sitting
    /// flat: the reported Jacobian flips sign across x = 0.5, so Newton
    /// bounces between the two lobes, the per-iteration residual wobbles
    /// between ~1.0 and ~1.1, and the *best* residual never improves —
    /// the failure shape the guard's best-residual window exists for.
    struct Oscillator;

    impl NewtonSystem for Oscillator {
        fn dim(&self) -> usize {
            1
        }
        fn residual(&self, x: &[f64], out: &mut [f64]) {
            out[0] = 1.0 + 0.1 * x[0] * x[0];
        }
        fn residual_and_jacobian(&self, x: &[f64], out: &mut [f64], jac: &mut Triplets) {
            self.residual(x, out);
            jac.push(0, 0, if x[0] < 0.5 { -1.0 } else { 1.1 });
        }
    }

    #[test]
    fn stagnation_guard_ends_residual_plateau_early() {
        let options = NewtonOptions {
            max_iters: 500,
            ..Default::default()
        };
        let budget = rfsim_numerics::SolveBudget::unlimited().with_stagnation_guard(4, 1e-2);
        let err = newton_solve_budgeted(
            &Plateau,
            &[0.0],
            &[],
            options,
            &mut LinearSolverWorkspace::new(),
            &budget,
        )
        .expect_err("a flat plateau above tolerance must be interrupted");
        let i = err.interrupted().expect("typed interruption");
        assert_eq!(i.reason, rfsim_numerics::InterruptReason::Stagnated);
        assert!(
            i.iterations < 50,
            "guard must fire long before max_iters: {} iterations",
            i.iterations
        );
        assert!((i.best_residual - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stagnation_guard_ends_oscillating_iterates_early() {
        let options = NewtonOptions {
            max_iters: 500,
            ..Default::default()
        };
        let budget = rfsim_numerics::SolveBudget::unlimited().with_stagnation_guard(4, 1e-2);
        let err = newton_solve_budgeted(
            &Oscillator,
            &[0.0],
            &[],
            options,
            &mut LinearSolverWorkspace::new(),
            &budget,
        )
        .expect_err("an oscillating iterate must be interrupted");
        let i = err.interrupted().expect("typed interruption");
        assert_eq!(i.reason, rfsim_numerics::InterruptReason::Stagnated);
        assert!(
            i.iterations < 50,
            "guard must fire long before max_iters: {} iterations",
            i.iterations
        );
        assert!(i.best_residual >= 1.0, "the residual never improved");
    }

    #[test]
    fn stagnation_guard_never_kills_a_converging_solve() {
        // The same tight guard on a healthy quadratic: convergence wins,
        // and the sub-tolerance plateau exemption keeps the guard quiet
        // at the noise floor.
        let budget = rfsim_numerics::SolveBudget::unlimited().with_stagnation_guard(4, 1e-2);
        let (x, _) = newton_solve_budgeted(
            &Quadratic,
            &[3.0],
            &[],
            NewtonOptions::default(),
            &mut LinearSolverWorkspace::new(),
            &budget,
        )
        .expect("healthy solves pass through the guard");
        assert!((x[0] - 2.0).abs() < 1e-9);
    }
}
