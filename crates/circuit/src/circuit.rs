//! The assembled circuit: residual/Jacobian/source evaluation.

use std::collections::HashMap;

use rfsim_numerics::sparse::Triplets;

use crate::devices::Device;
use crate::node::NodeId;
use crate::stamp::StampContext;
use crate::Result;

/// What an MNA unknown represents, for tolerance selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownKind {
    /// A node voltage (volts).
    NodeVoltage,
    /// A branch current (amperes).
    BranchCurrent,
}

/// An immutable circuit ready for analysis.
///
/// The circuit exposes the pieces of the DAE `d/dt q(x) + f(x) + b(t) = 0`:
/// residuals, Jacobians and excitation vectors, in both single-time and
/// bivariate (multi-time) form.
pub struct Circuit {
    devices: Vec<Box<dyn Device>>,
    unknown_names: Vec<String>,
    unknown_kinds: Vec<UnknownKind>,
    node_by_name: HashMap<String, NodeId>,
}

impl std::fmt::Debug for Circuit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("devices", &self.devices.len())
            .field("unknowns", &self.unknown_names.len())
            .finish()
    }
}

impl Circuit {
    pub(crate) fn new(
        devices: Vec<Box<dyn Device>>,
        unknown_names: Vec<String>,
        unknown_kinds: Vec<UnknownKind>,
        node_by_name: HashMap<String, NodeId>,
    ) -> Self {
        Circuit {
            devices,
            unknown_names,
            unknown_kinds,
            node_by_name,
        }
    }

    /// Number of MNA unknowns (node voltages + branch currents).
    pub fn num_unknowns(&self) -> usize {
        self.unknown_names.len()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Human-readable unknown names (node names, then `i(<device>)`).
    pub fn unknown_names(&self) -> &[String] {
        &self.unknown_names
    }

    /// Kind of each unknown, for voltage/current tolerance selection.
    pub fn unknown_kinds(&self) -> &[UnknownKind] {
        &self.unknown_kinds
    }

    /// Index of the unknown carrying the given node's voltage
    /// (`None` for ground).
    pub fn unknown_index_of_node(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Looks up a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_by_name.get(name).copied()
    }

    /// Evaluates the conductive residual `f(x)` and optionally
    /// `G = ∂f/∂x` (entries are *added* into the supplied builders).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()`/`f.len()` differ from [`Circuit::num_unknowns`].
    pub fn eval_f(&self, x: &[f64], f: &mut [f64], jacobian: Option<&mut Triplets>) {
        let n = self.num_unknowns();
        assert_eq!(x.len(), n, "eval_f: x length");
        assert_eq!(f.len(), n, "eval_f: f length");
        f.fill(0.0);
        let mut ctx = StampContext::new(f, jacobian);
        for dev in &self.devices {
            dev.stamp_resistive(x, &mut ctx);
        }
    }

    /// Evaluates the charge residual `q(x)` and optionally `C = ∂q/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from [`Circuit::num_unknowns`].
    pub fn eval_q(&self, x: &[f64], q: &mut [f64], jacobian: Option<&mut Triplets>) {
        let n = self.num_unknowns();
        assert_eq!(x.len(), n, "eval_q: x length");
        assert_eq!(q.len(), n, "eval_q: q length");
        q.fill(0.0);
        let mut ctx = StampContext::new(q, jacobian);
        for dev in &self.devices {
            dev.stamp_reactive(x, &mut ctx);
        }
    }

    /// Evaluates the excitation `b(t)`.
    pub fn eval_b(&self, t: f64, b: &mut [f64]) {
        b.fill(0.0);
        for dev in &self.devices {
            dev.stamp_source(t, b);
        }
    }

    /// Evaluates the DC component of the excitation (homotopy endpoint).
    pub fn eval_b_dc(&self, b: &mut [f64]) {
        b.fill(0.0);
        for dev in &self.devices {
            dev.stamp_source_dc(b);
        }
    }

    /// Evaluates the bivariate excitation `b̂(t1, t2)`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::MissingBivariateSource`] if any
    /// time-varying source lacks a multi-time description.
    pub fn eval_b_bi(&self, t1: f64, t2: f64, b: &mut [f64]) -> Result<()> {
        b.fill(0.0);
        for dev in &self.devices {
            dev.stamp_source_bi(t1, t2, b)?;
        }
        Ok(())
    }

    /// Whether all sources support bivariate evaluation.
    pub fn supports_bivariate(&self) -> bool {
        let mut b = vec![0.0; self.num_unknowns()];
        self.eval_b_bi(0.0, 0.0, &mut b).is_ok()
    }

    /// Full DAE residual for time-independent analysis:
    /// `F(x) = f(x) + b(t)` (no charge term).
    pub fn eval_static_residual(&self, x: &[f64], t: f64, out: &mut [f64]) {
        self.eval_f(x, out, None);
        let mut b = vec![0.0; out.len()];
        self.eval_b(t, &mut b);
        for (o, bv) in out.iter_mut().zip(&b) {
            *o += bv;
        }
    }

    /// Convenience accessor: sparse `G` and `C` patterns at a given point.
    pub fn jacobians_at(&self, x: &[f64]) -> (Triplets, Triplets) {
        let n = self.num_unknowns();
        let mut g = Triplets::new(n, n);
        let mut c = Triplets::new(n, n);
        let mut scratch = vec![0.0; n];
        self.eval_f(x, &mut scratch, Some(&mut g));
        self.eval_q(x, &mut scratch, Some(&mut c));
        (g, c)
    }

    /// Fingerprint of this circuit's MNA Jacobian structure: the CSC
    /// pattern of `G + C` (conductive plus charge stamps), which is what
    /// every Newton linear system over this circuit — DC, transient,
    /// collocation, MPDE — draws its per-grid-point blocks from.
    ///
    /// Device stamps push their full pattern with exact zeros kept, so the
    /// fingerprint is independent of device *values* and of the evaluation
    /// point: two circuits with identical element connectivity fingerprint
    /// identically, while a topology change (an added element coupling new
    /// node pairs, an added unknown) changes it. Used by the sweep engine
    /// to group operating-point families that can share cached
    /// linear-solver workspaces; it is a routing key, not a correctness
    /// check (see [`rfsim_numerics::sparse::PatternFingerprint`]).
    pub fn jacobian_fingerprint(&self) -> rfsim_numerics::sparse::PatternFingerprint {
        let zeros = vec![0.0; self.num_unknowns()];
        let (mut g, c) = self.jacobians_at(&zeros);
        // Union of both stamp patterns, in one compressed structure.
        merge_triplets(&mut g, &c);
        g.pattern_fingerprint()
    }
}

/// Appends `src`'s entries onto `dst` (the duplicate-summing conversion
/// folds shared positions, so this is the pattern union).
fn merge_triplets(dst: &mut Triplets, src: &Triplets) {
    let csr = src.to_csr();
    for i in 0..src.rows() {
        let (cols, vals) = csr.row(i);
        for (c, v) in cols.iter().zip(vals) {
            dst.push(i, *c, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::node::GROUND;
    use crate::waveform::{BiWaveform, Waveform};
    use proptest::prelude::*;

    /// Voltage divider: V1 = 10 V across R1 (1k) + R2 (1k).
    fn divider() -> Circuit {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let mid = b.node("mid");
        b.vsource("V1", inp, GROUND, Waveform::Dc(10.0)).expect("v");
        b.resistor("R1", inp, mid, 1e3).expect("r1");
        b.resistor("R2", mid, GROUND, 1e3).expect("r2");
        b.build().expect("build")
    }

    #[test]
    fn residual_zero_at_exact_solution() {
        let ckt = divider();
        // unknowns: v(in), v(mid), i(V1)
        // At solution: v(in)=10, v(mid)=5, branch current = −(10−5)/1k = −5 mA
        // (current through source flows from ground into 'in').
        let x = vec![10.0, 5.0, -5e-3];
        let mut r = vec![0.0; 3];
        ckt.eval_static_residual(&x, 0.0, &mut r);
        for (i, v) in r.iter().enumerate() {
            assert!(v.abs() < 1e-12, "residual[{i}] = {v}");
        }
    }

    #[test]
    fn jacobian_matches_finite_difference() {
        let ckt = divider();
        let x = vec![1.0, 2.0, 3.0];
        let n = 3;
        let mut g = Triplets::new(n, n);
        let mut f0 = vec![0.0; n];
        ckt.eval_f(&x, &mut f0, Some(&mut g));
        let gm = g.to_csr();
        let h = 1e-6;
        for col in 0..n {
            let mut xp = x.clone();
            xp[col] += h;
            let mut fp = vec![0.0; n];
            ckt.eval_f(&xp, &mut fp, None);
            for row in 0..n {
                let fd = (fp[row] - f0[row]) / h;
                assert!(
                    (gm.get(row, col) - fd).abs() < 1e-4,
                    "G[{row}][{col}] {} vs {}",
                    gm.get(row, col),
                    fd
                );
            }
        }
    }

    #[test]
    fn bivariate_rejected_for_plain_sine() {
        let mut b = CircuitBuilder::new();
        let n = b.node("a");
        b.vsource("V1", n, GROUND, Waveform::sine(1.0, 1e6))
            .expect("v");
        b.resistor("R1", n, GROUND, 1e3).expect("r");
        let ckt = b.build().expect("build");
        assert!(!ckt.supports_bivariate());
    }

    #[test]
    fn bivariate_supported_with_bi_sources() {
        let mut b = CircuitBuilder::new();
        let n = b.node("a");
        b.vsource("V1", n, GROUND, BiWaveform::Axis1(Waveform::sine(1.0, 1e6)))
            .expect("v");
        b.resistor("R1", n, GROUND, 1e3).expect("r");
        let ckt = b.build().expect("build");
        assert!(ckt.supports_bivariate());
        let mut bvec = vec![0.0; ckt.num_unknowns()];
        ckt.eval_b_bi(0.25e-6, 0.0, &mut bvec).expect("bi eval");
        // sin(2π·0.25) = 1, stamped as −V on the branch row (index 1).
        assert!((bvec[1] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_bookkeeping() {
        let ckt = divider();
        assert_eq!(ckt.num_unknowns(), 3);
        assert_eq!(ckt.num_devices(), 3);
        let node = ckt.node_by_name("mid").expect("mid exists");
        assert_eq!(ckt.unknown_index_of_node(node), Some(1));
        assert_eq!(ckt.unknown_index_of_node(GROUND), None);
        assert!(ckt.node_by_name("nope").is_none());
        assert_eq!(ckt.unknown_names()[2], "i(V1)");
    }

    /// The mixer-shaped fixture used by the fingerprint property tests:
    /// source → R → diode → RC tank, with every element value drawn from
    /// the property's random stream.
    fn diode_filter(amp: f64, r1: f64, r2: f64, c: f64, extra_cap: Option<f64>) -> Circuit {
        let mut b = CircuitBuilder::new();
        let inp = b.node("in");
        let mid = b.node("mid");
        let out = b.node("out");
        b.vsource("V1", inp, GROUND, Waveform::sine(amp, 1e6))
            .expect("v");
        b.resistor("R1", inp, mid, r1).expect("r1");
        b.diode("D1", mid, out, crate::DiodeParams::default())
            .expect("d1");
        b.resistor("R2", out, GROUND, r2).expect("r2");
        b.capacitor("C1", out, GROUND, c).expect("c1");
        if let Some(ce) = extra_cap {
            // Perturbed topology: a feedthrough capacitor couples the
            // previously unconnected (in, out) node pair.
            b.capacitor("CX", inp, out, ce).expect("cx");
        }
        b.build().expect("build")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_fingerprint_keys_topology_not_values(
            amp in 0.1f64..10.0,
            r1 in 10.0f64..1e6,
            r2 in 10.0f64..1e6,
            c in 1e-12f64..1e-6,
            ce in 1e-12f64..1e-6,
        ) {
            // Satellite property: two circuits built from the same topology
            // produce identical CSC Jacobian fingerprints regardless of
            // element values…
            let a = diode_filter(amp, r1, r2, c, None);
            let b = diode_filter(1.0, 1e3, 2e3, 1e-9, None);
            prop_assert_eq!(a.jacobian_fingerprint(), b.jacobian_fingerprint());
            // …and a perturbed topology (one extra element) produces a
            // different one.
            let p = diode_filter(amp, r1, r2, c, Some(ce));
            prop_assert_ne!(a.jacobian_fingerprint(), p.jacobian_fingerprint());
            // Perturbed circuits again agree among themselves.
            let q = diode_filter(2.0 * amp, r1, 0.5 * r2, c, Some(1e-9));
            prop_assert_eq!(p.jacobian_fingerprint(), q.jacobian_fingerprint());
        }
    }
}
